/// @file
/// The effective-performance model of Section III-D — the paper's central
/// quantitative statement:
///
///            T_seq * (N_lookup + N_train)
///   S = --------------------------------------------
///       T_lookup * N_lookup + (T_train + T_learn) * N_train
///
/// with the stated limits S -> T_seq / T_train when there is no ML
/// (N_lookup = 0) and S -> T_seq / T_lookup when N_lookup >> N_train,
/// "which can be huge!".
#pragma once

#include <cstddef>
#include <vector>

namespace le::core {

/// The four times of the model.  All in the same unit (seconds per unit of
/// work).  T_seq: sequential simulation; T_train: (parallel) simulation
/// per training sample; T_learn: training cost per sample; T_lookup:
/// surrogate inference per query.
struct SpeedupTimes {
  double t_seq = 1.0;
  double t_train = 1.0;
  double t_learn = 0.0;
  double t_lookup = 1e-5;
};

/// The effective speedup S for a campaign of N_train training simulations
/// followed by N_lookup surrogate inferences.
[[nodiscard]] double effective_speedup(const SpeedupTimes& times,
                                       std::size_t n_lookup,
                                       std::size_t n_train);

/// The no-ML limit T_seq / T_train.
[[nodiscard]] double no_ml_limit(const SpeedupTimes& times);

/// The infinite-lookup limit T_seq / T_lookup.
[[nodiscard]] double lookup_limit(const SpeedupTimes& times);

/// One row of the S(N_lookup) sweep that bench_effective_speedup prints.
struct SpeedupRow {
  std::size_t n_lookup = 0;
  std::size_t n_train = 0;
  double speedup = 0.0;
  double fraction_of_limit = 0.0;  ///< speedup / lookup_limit
};

/// Sweeps N_lookup over the given values at fixed N_train.
[[nodiscard]] std::vector<SpeedupRow> sweep_lookups(
    const SpeedupTimes& times, std::size_t n_train,
    const std::vector<std::size_t>& n_lookups);

/// Smallest N_lookup / N_train ratio for which S reaches the given
/// fraction of the lookup limit (found by doubling; caps at max_ratio).
[[nodiscard]] double ratio_to_reach_fraction(const SpeedupTimes& times,
                                             double fraction,
                                             double max_ratio = 1e12);

}  // namespace le::core
