/// @file
/// Adapter: an nn::Network regression task as a runtime::SgdProblem, so the
/// Section III-A sync engines (Locking/Rotation/Allreduce/Asynchronous) can
/// train real neural networks, not just the convex testbed.
///
/// Networks cache activations and are not thread-safe, so each calling
/// thread gets its own clone (thread_local storage keyed by this object).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "le/data/dataset.hpp"
#include "le/nn/loss.hpp"
#include "le/nn/network.hpp"
#include "le/runtime/sync_engine.hpp"

namespace le::core {

class NetworkSgdProblem final : public runtime::SgdProblem {
 public:
  /// The prototype defines architecture and initial weights; `dataset`
  /// supplies the samples.
  NetworkSgdProblem(nn::Network prototype, data::Dataset dataset);

  [[nodiscard]] std::size_t dim() const override { return dim_; }
  [[nodiscard]] std::size_t sample_count() const override {
    return dataset_.size();
  }
  double loss_and_grad(std::span<const double> w,
                       std::span<const std::size_t> batch,
                       std::span<double> grad) const override;
  [[nodiscard]] double full_loss(std::span<const double> w) const override;

  /// Initial flat weights of the prototype (engines start from these when
  /// seeded explicitly; run_parallel_sgd starts from zeros by default, so
  /// callers typically run a short warm start or accept zero init).
  [[nodiscard]] std::vector<double> initial_weights() const {
    return initial_weights_;
  }

 private:
  /// Grabs a per-thread clone of the prototype.  The cache is keyed by a
  /// process-unique instance id, NOT by `this`: a later problem object
  /// can reuse a dead object's address and must not inherit its clones.
  [[nodiscard]] nn::Network& local_network() const;

  std::uint64_t instance_id_;
  nn::Network prototype_;
  std::vector<double> initial_weights_;
  std::size_t dim_;
  data::Dataset dataset_;
  nn::MseLoss loss_;
};

}  // namespace le::core
