/// @file
/// Simulation-campaign runner: the horizontal (many-task) parallelism of
/// the paper's Conclusions ("multiple, concurrent heterogeneous units of
/// work replace single large units of works").
///
/// A campaign is the N_train phase of the effective-speedup model: many
/// independent simulations over a set of state points.  run_campaign fans
/// them out over a ThreadPool and collects a labelled Dataset ready for
/// surrogate training.
#pragma once

#include <vector>

#include "le/core/surrogate.hpp"
#include "le/data/dataset.hpp"
#include "le/runtime/thread_pool.hpp"

namespace le::core {

struct CampaignRunStats {
  double wall_seconds = 0.0;
  /// Sum of per-run wall times (== wall_seconds on one worker; larger on
  /// many workers: their ratio is the campaign's parallel efficiency).
  double cpu_seconds = 0.0;
  std::size_t runs = 0;
};

/// Runs `simulation` at every state point, in submission order, fanning
/// out over `pool` when given (the simulation must be thread-safe in that
/// case).  Results arrive in the dataset in the same order as `points`
/// regardless of completion order.
[[nodiscard]] data::Dataset run_campaign(
    const std::vector<std::vector<double>>& points,
    const SimulationFn& simulation, std::size_t output_dim,
    runtime::ThreadPool* pool = nullptr, CampaignRunStats* stats = nullptr);

}  // namespace le::core
