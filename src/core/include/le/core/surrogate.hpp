// The MLaroundHPC runtime: a UQ-gated dispatcher that answers queries from
// the learned surrogate when the prediction is trustworthy and falls back
// to the real simulation otherwise.
//
// This is the paper's "ML wrapper" around an HPC simulation made concrete:
// "one must learn not just the result of a simulation but also the
// uncertainty of the prediction e.g. if the learned result is valid enough
// to be used" (Section III-B).  Fallback runs are fed back into a training
// buffer ("No run is wasted", Section II-C1), so the wrapper exhibits the
// auto-tunability outcome 3 of that section: with new simulation runs the
// ML layer gets better at making predictions.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "le/data/dataset.hpp"
#include "le/uq/uq_model.hpp"

namespace le::core {

/// The real simulation: maps an input state point to the output features.
/// Implementations may be arbitrarily expensive — that is the point.
using SimulationFn =
    std::function<std::vector<double>(std::span<const double>)>;

/// How a query was answered.
enum class AnswerSource { kSurrogate, kSimulation };

struct Answer {
  std::vector<double> values;
  AnswerSource source = AnswerSource::kSurrogate;
  double uncertainty = 0.0;    ///< surrogate uncertainty score at the query
  double seconds = 0.0;        ///< wall time to produce this answer
};

struct DispatcherStats {
  std::size_t surrogate_answers = 0;
  std::size_t simulation_answers = 0;
  double surrogate_seconds = 0.0;
  double simulation_seconds = 0.0;
  /// Mean surrogate uncertainty over accepted (surrogate) answers.
  double mean_accepted_uncertainty = 0.0;

  [[nodiscard]] std::size_t total() const noexcept {
    return surrogate_answers + simulation_answers;
  }
  /// Fraction of queries served by the surrogate.
  [[nodiscard]] double surrogate_fraction() const noexcept {
    return total() == 0 ? 0.0
                        : static_cast<double>(surrogate_answers) /
                              static_cast<double>(total());
  }
};

class SurrogateDispatcher {
 public:
  /// `threshold` is the maximum acceptable uncertainty score; queries whose
  /// surrogate spread exceeds it are routed to the simulation.
  SurrogateDispatcher(std::shared_ptr<uq::UqModel> surrogate,
                      SimulationFn simulation, double threshold);

  /// Answers one query through the gate.
  [[nodiscard]] Answer query(std::span<const double> input);

  /// Fallback runs accumulate here as fresh labelled samples for retraining.
  [[nodiscard]] const data::Dataset& training_buffer() const noexcept {
    return buffer_;
  }
  /// Takes the buffer, leaving it empty (retraining consumes it).
  [[nodiscard]] data::Dataset drain_training_buffer();

  [[nodiscard]] const DispatcherStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }
  void set_threshold(double threshold);

  /// Swaps in a retrained surrogate (auto-tunability outcome 3).
  void replace_surrogate(std::shared_ptr<uq::UqModel> surrogate);

 private:
  std::shared_ptr<uq::UqModel> surrogate_;
  SimulationFn simulation_;
  double threshold_;
  data::Dataset buffer_;
  DispatcherStats stats_;
  double accepted_uncertainty_sum_ = 0.0;
};

}  // namespace le::core
