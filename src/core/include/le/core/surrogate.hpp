/// @file
/// The MLaroundHPC runtime: a UQ-gated dispatcher that answers queries from
/// the learned surrogate when the prediction is trustworthy and falls back
/// to the real simulation otherwise.
///
/// This is the paper's "ML wrapper" around an HPC simulation made concrete:
/// "one must learn not just the result of a simulation but also the
/// uncertainty of the prediction e.g. if the learned result is valid enough
/// to be used" (Section III-B).  Fallback runs are fed back into a training
/// buffer ("No run is wasted", Section II-C1), so the wrapper exhibits the
/// auto-tunability outcome 3 of that section: with new simulation runs the
/// ML layer gets better at making predictions.
///
/// Robustness: surrogate outputs are validated (finite, dimension-correct)
/// before they can be accepted, and an optional CircuitBreaker (resilient.hpp)
/// trips the surrogate path to simulation-only mode after a run of invalid
/// predictions, half-opening later to probe for recovery.
///
/// Serving throughput (Section III-D: T_lookup is an infrastructure number,
/// not an arithmetic one): an optional serve::LookupCache remembers
/// gate-accepted answers keyed by quantized input so repeated queries are
/// O(1), and query_batch() answers many queries through one batched
/// surrogate forward instead of per-query dispatch.  bench_serving (E13)
/// quantifies both levers.
///
/// Health: enable_health_monitoring() attaches an obs::SurrogateHealthMonitor
/// that watches input drift, shadow-sampled residuals and UQ calibration,
/// and trips the circuit breaker when the surrogate becomes untrusted
/// (bench_health, E14).
///
/// Overload (DESIGN.md section 14, bench_overload E17): query()/query_batch()
/// accept per-request deadlines — an expired request is shed before any
/// model work (never inside a GEMM) with AnswerSource::kShed, which is an
/// explicit outcome distinct from model failure: it feeds neither the
/// breaker nor the speedup meter.  attach_degradation() wires a
/// serve::DegradationLadder brownout policy over the serving tiers: under
/// rising pressure the dispatcher serves the registered quantized surrogate
/// (set_degraded_surrogate), then cache hits only, then sheds — and at any
/// degraded level the simulation fallback is disabled, because running the
/// most expensive path under overload is exactly the collapse mode the
/// ladder exists to prevent.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "le/data/dataset.hpp"
#include "le/serve/overload.hpp"
#include "le/uq/uq_model.hpp"

namespace le::serve {
class DegradationLadder;
class LookupCache;
struct LookupCacheConfig;
}  // namespace le::serve

namespace le::obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
class EffectiveSpeedupMeter;
class SurrogateHealthMonitor;
struct SurrogateHealthConfig;
}  // namespace le::obs

namespace le::core {

class CircuitBreaker;
struct CircuitBreakerConfig;

/// The real simulation: maps an input state point to the output features.
/// Implementations may be arbitrarily expensive — that is the point.
using SimulationFn =
    std::function<std::vector<double>(std::span<const double>)>;

/// Observer of every ground-truth (input, simulation output) pair the
/// dispatcher produces — fallback runs and shadow samples alike.  The
/// retraining service taps this to shadow-evaluate candidate models
/// against live traffic without ever letting them answer queries.  Runs
/// on the serving thread; implementations must be cheap and thread-safe.
using GroundTruthTap =
    std::function<void(std::span<const double> input,
                       std::span<const double> truth)>;

/// How a query was answered — or, for kShed, deliberately refused.  kShed
/// is NOT a model failure: no prediction was attempted, `values` is empty,
/// and `shed_reason` says why (deadline expired, overload brownout).
enum class AnswerSource { kSurrogate, kSimulation, kShed };

struct Answer {
  std::vector<double> values;
  AnswerSource source = AnswerSource::kSurrogate;
  double uncertainty = 0.0;    ///< surrogate uncertainty score at the query
  double seconds = 0.0;        ///< wall time to produce this answer
  /// True when the answer came from the learned-lookup cache (a previously
  /// gate-accepted surrogate answer) rather than a fresh forward pass.
  bool from_cache = false;
  /// True when the answer came from the registered degraded (quantized)
  /// surrogate because the degradation ladder held kQuantized or worse.
  bool degraded = false;
  /// Why the request was shed; kNone unless source == kShed.
  serve::ShedReason shed_reason = serve::ShedReason::kNone;
};

struct DispatcherStats {
  std::size_t surrogate_answers = 0;
  std::size_t simulation_answers = 0;
  double surrogate_seconds = 0.0;
  double simulation_seconds = 0.0;
  /// Mean surrogate uncertainty over accepted (surrogate) answers; 0 until
  /// the first acceptance.
  double mean_accepted_uncertainty = 0.0;
  /// Surrogate predictions rejected as invalid (NaN/Inf mean, non-finite
  /// score, wrong output length) before the uncertainty gate was consulted.
  std::size_t invalid_predictions = 0;
  /// Queries routed straight to the simulation because the circuit breaker
  /// held the surrogate path open.
  std::size_t breaker_short_circuits = 0;
  /// Surrogate answers served from the learned-lookup cache (a subset of
  /// surrogate_answers); 0 until enable_lookup_cache().
  std::size_t cache_hits = 0;
  /// Accepted surrogate answers re-run through the real simulation for the
  /// health monitor's residual/coverage tracking; 0 until
  /// enable_health_monitoring().
  std::size_t shadow_samples = 0;
  /// Wall time spent inside those shadow simulations.  Billed to the meter
  /// as training-path time (the samples land in the training buffer), NOT
  /// as lookup time — monitoring cost must not inflate S_eff.
  double shadow_seconds = 0.0;
  /// Requests shed because their deadline had expired (before any model
  /// work).  Not counted in total(): nothing was answered.
  std::size_t shed_deadline = 0;
  /// Requests shed by the degradation ladder (kShedAll, a cache miss at
  /// kCacheOnly, or a gate rejection at a degraded level).
  std::size_t shed_overload = 0;
  /// Surrogate answers produced by the registered degraded (quantized)
  /// surrogate rather than the full model (a subset of surrogate_answers).
  std::size_t degraded_answers = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return surrogate_answers + simulation_answers;
  }
  [[nodiscard]] std::size_t shed_total() const noexcept {
    return shed_deadline + shed_overload;
  }
  /// Fraction of queries served by the surrogate.
  [[nodiscard]] double surrogate_fraction() const noexcept {
    return total() == 0 ? 0.0
                        : static_cast<double>(surrogate_answers) /
                              static_cast<double>(total());
  }
};

class SurrogateDispatcher {
 public:
  /// `threshold` is the maximum acceptable uncertainty score; queries whose
  /// surrogate spread exceeds it are routed to the simulation.
  SurrogateDispatcher(std::shared_ptr<uq::UqModel> surrogate,
                      SimulationFn simulation, double threshold);
  ~SurrogateDispatcher();
  /// Immovable: serving threads, ground-truth taps and the retraining
  /// service all hold references to a live dispatcher (and the internal
  /// locks pin its address anyway).
  SurrogateDispatcher(SurrogateDispatcher&&) = delete;
  SurrogateDispatcher& operator=(SurrogateDispatcher&&) = delete;

  /// Answers one query through the gate.
  [[nodiscard]] Answer query(std::span<const double> input) {
    return query(input, std::nullopt);
  }

  /// Deadline-carrying variant: when `deadline` has already passed the
  /// query is shed (AnswerSource::kShed, ShedReason::kDeadline) before any
  /// model work — a dead request never costs a forward pass or a
  /// simulation.  The degradation ladder (attach_degradation) is consulted
  /// here too.
  [[nodiscard]] Answer query(std::span<const double> input,
                             serve::Deadline deadline);

  /// Answers one query per row of `inputs` through the same
  /// cache -> breaker -> UQ gate -> fallback pipeline as query(), except
  /// that every cache miss shares ONE batched surrogate forward
  /// (UqModel::predict_batch), so layer dispatch amortizes over the batch.
  /// The breaker is consulted once per batch (a half-open probe admits the
  /// whole batch); fallback simulations still run per query.  Answers are
  /// returned in row order, and the shared forward's wall time is split
  /// evenly over the rows it served.
  [[nodiscard]] std::vector<Answer> query_batch(const tensor::Matrix& inputs) {
    return query_batch(inputs, {});
  }

  /// Deadline-carrying batch variant: `deadlines` is empty (no deadlines)
  /// or one entry per row.  Rows whose deadline expired are shed BEFORE
  /// the batched forward — they are excluded from the miss matrix, so the
  /// shared GEMM never includes a dead row — and come back as
  /// AnswerSource::kShed in row order with everything else.
  [[nodiscard]] std::vector<Answer> query_batch(
      const tensor::Matrix& inputs, std::span<const serve::Deadline> deadlines);

  /// Arms the learned-lookup cache (the paper's "learned lookup table"
  /// made literal): every answer the UQ gate accepts is remembered keyed
  /// by quantized input, and a repeated query is answered in O(1) with no
  /// forward pass.  A hit is re-checked against the *current* threshold
  /// (tightening the gate invalidates looser cached answers), and
  /// replace_surrogate() clears the cache, so a hit always reflects an
  /// answer the current surrogate produced and the current gate accepts.
  void enable_lookup_cache(const serve::LookupCacheConfig& config);

  /// The armed cache, or nullptr when none was enabled.
  [[nodiscard]] const serve::LookupCache* lookup_cache() const noexcept;

  /// Fallback runs accumulate here as fresh labelled samples for retraining.
  /// Single-threaded inspection only: the reference is not protected
  /// against a concurrent serving thread appending.  Concurrent consumers
  /// (the retraining service) must use take_retraining() instead.
  [[nodiscard]] const data::Dataset& training_buffer() const noexcept {
    return buffer_;
  }
  /// Takes the banked shadow/fallback corpus, leaving the buffer empty
  /// (retraining consumes it); resets the per-buffer aggregates alongside
  /// it.  Thread-safe against the serving path: the buffer is handed off
  /// under the same lock the fallback/shadow appends take, so a retraining
  /// service may call this from its own thread while queries are in
  /// flight (tests/test_retrain.cpp proves the handoff under TSan).
  [[nodiscard]] data::Dataset take_retraining();
  /// Alias of take_retraining(), kept for existing callers.
  [[nodiscard]] data::Dataset drain_training_buffer() {
    return take_retraining();
  }

  /// Mean uncertainty score of the fallback runs currently buffered — a
  /// gauge of how far outside the surrogate's competence the buffered
  /// region lies; 0 when the buffer is empty.
  [[nodiscard]] double mean_buffered_uncertainty() const noexcept;

  [[nodiscard]] const DispatcherStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }
  void set_threshold(double threshold);

  /// Swaps in a retrained surrogate (auto-tunability outcome 3).
  /// Thread-safe against in-flight queries: the swap happens under the
  /// model lock the query paths copy the surrogate through, so a
  /// retraining service can hot-promote (and roll back) while the
  /// serving thread keeps answering.
  void replace_surrogate(std::shared_ptr<uq::UqModel> surrogate);

  /// The surrogate currently answering queries.  The returned shared_ptr
  /// keeps the model alive across a concurrent replace_surrogate(), so
  /// the retraining service can retain the incumbent for one-call
  /// rollback.
  [[nodiscard]] std::shared_ptr<uq::UqModel> current_surrogate() const;

  /// Switches serving to an int8 quantized snapshot (uq::QuantizedSurrogate
  /// over an nn::QuantizedNetwork calibrated on the retraining corpus).
  /// Admission is bounded by the existing UQ gate: `added_error` — the
  /// quantization residual the model reports as its spread — must fit
  /// inside the current threshold, otherwise the quantized model could
  /// never answer a query and the call throws std::invalid_argument
  /// instead of silently serving 100% fallback.  The incumbent fp
  /// surrogate is retained for disable_quantized_serving(); the swap
  /// behaves like replace_surrogate() (model lock, cache clear, breaker
  /// reset), so stale-era cache inserts from in-flight fp queries are
  /// dropped by the epoch check.
  void enable_quantized_serving(std::shared_ptr<uq::UqModel> quantized,
                                double added_error);

  /// Restores the fp surrogate retained by enable_quantized_serving();
  /// no-op when quantized serving is not active.
  void disable_quantized_serving();

  /// True while a quantized surrogate is answering queries.
  [[nodiscard]] bool quantized_serving() const noexcept;

  /// Attaches the graceful-degradation ladder (serve/degradation.hpp).
  /// The ladder is shared: a serve::BatchQueue in front of this dispatcher
  /// typically feeds it queue waits (BatchQueue::set_degradation) while the
  /// dispatcher enforces its level.  When `feed_answer_latency` is true the
  /// dispatcher also records every served answer's wall time as pressure —
  /// for direct-dispatch deployments with no queue in front (leave it off
  /// behind a BatchQueue, where queue wait is the honest overload signal
  /// and sub-microsecond cache hits would dilute the window).  Wire-up
  /// time only; pass nullptr to detach.
  void attach_degradation(std::shared_ptr<serve::DegradationLadder> ladder,
                          bool feed_answer_latency = false);

  /// The attached ladder, or nullptr.
  [[nodiscard]] serve::DegradationLadder* degradation_ladder() const noexcept {
    return ladder_.get();
  }

  /// Registers the cheaper surrogate (typically an int8
  /// uq::QuantizedSurrogate of the incumbent) the ladder serves at
  /// ServiceLevel::kQuantized.  Same admission rule as
  /// enable_quantized_serving: `added_error` must fit inside the current
  /// UQ-gate threshold.  Degraded answers are flagged (Answer::degraded),
  /// counted in stats().degraded_answers, never inserted into the lookup
  /// cache (the cache stores full-fidelity answers only) and never shadow
  /// sampled.  replace_surrogate() clears the registration — a quantized
  /// snapshot of a retired model must not serve the new era.  Pass nullptr
  /// to deregister.
  void set_degraded_surrogate(std::shared_ptr<uq::UqModel> degraded,
                              double added_error);

  /// Runs the current surrogate's startup kernel autotuner
  /// (UqModel::autotune_inference) sized for `batch_hint`-row forwards —
  /// the ATLAS-style per-layer (kernel, blocking) search of DESIGN.md
  /// section 13.  Call at serving startup and after every promotion;
  /// returns the per-layer decisions for logging.
  std::vector<nn::LayerPlanChoice> autotune_serving(std::size_t batch_hint);

  /// Registers an observer of every ground-truth pair the dispatcher
  /// produces (fallback simulations and shadow samples).  Must be set
  /// before serving starts; pass nullptr to detach.  The retraining
  /// service uses this to feed its candidate shadow evaluation.
  void set_ground_truth_tap(GroundTruthTap tap);

  /// Arms a circuit breaker over the surrogate path: after
  /// `config.failure_threshold` consecutive invalid predictions the
  /// dispatcher answers from the simulation alone until the breaker
  /// half-opens and a probe prediction validates.
  void enable_circuit_breaker(const CircuitBreakerConfig& config);

  /// The armed breaker, or nullptr when none was enabled.
  [[nodiscard]] const CircuitBreaker* circuit_breaker() const noexcept;

  /// Arms surrogate health monitoring (obs/health.hpp): every query input
  /// feeds the input-drift detector (cache hits included — drift is a
  /// property of the demand stream), and a deterministic
  /// `config.shadow_fraction` of freshly accepted surrogate answers is
  /// re-run through the real simulation as a shadow sample for residual
  /// RMSE and UQ-calibration coverage.  Shadow runs land in the training
  /// buffer and are billed as training-path time.  When the monitor
  /// reaches UNTRUSTED and a circuit breaker is armed, the breaker is
  /// tripped, so queries fall back to the simulation until retraining
  /// (see AdaptiveLoopConfig::health_monitor) restores trust.
  /// `reference_inputs` seeds the drift reference (training-corpus inputs).
  void enable_health_monitoring(const obs::SurrogateHealthConfig& config,
                                const tensor::Matrix& reference_inputs);

  /// The armed health monitor, or nullptr when none was enabled.
  [[nodiscard]] obs::SurrogateHealthMonitor* health_monitor() noexcept;
  [[nodiscard]] const obs::SurrogateHealthMonitor* health_monitor()
      const noexcept;

  /// Publishes per-query observability to `registry` under
  /// "<prefix>.*": answer counters, per-source latency histograms, the
  /// surrogate acceptance fraction and the breaker state gauge
  /// (0 closed / 1 open / 2 half-open).  Handles are acquired once here;
  /// the query path then updates them lock-free.
  void enable_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "dispatcher");

  /// Attaches a live Section III-D meter: surrogate answers are recorded
  /// as lookups, fallback simulations as training runs (they land in the
  /// training buffer — "no run is wasted").  Pass nullptr to detach.
  void set_speedup_meter(obs::EffectiveSpeedupMeter* meter) noexcept {
    meter_ = meter;
  }

 private:
  /// Books one surrogate-served answer (fresh or cached; seconds already
  /// set) into stats, the speedup meter and the metric handles.
  void account_surrogate_answer(const Answer& answer);

  /// Builds and books one shed outcome.  Shed answers are excluded from
  /// the speedup meter (nothing was looked up, nothing was trained) and
  /// never feed the breaker — being refused is not a model failure.
  [[nodiscard]] Answer make_shed_answer(serve::ShedReason reason,
                                        double seconds);

  /// Re-runs one accepted answer through the real simulation and feeds the
  /// health monitor's residual/coverage tracker; the sample joins the
  /// training buffer and its wall time is billed as training-path time.
  void shadow_sample(std::span<const double> input,
                     const std::vector<double>& predicted_mean,
                     const std::vector<double>& predicted_stddev,
                     double uncertainty);

  /// Trips the armed breaker while the health monitor holds UNTRUSTED.
  void sync_health_breaker();

  /// Guards surrogate_ only: query paths copy the shared_ptr once per
  /// call; replace_surrogate() swaps under the same lock.  Everything
  /// else the service thread touches (breaker, cache, health monitor)
  /// is internally synchronized.
  mutable std::mutex model_mutex_;
  std::shared_ptr<uq::UqModel> surrogate_;
  /// The fp surrogate displaced by enable_quantized_serving(); null while
  /// serving fp.  Guarded by model_mutex_.
  std::shared_ptr<uq::UqModel> quantized_fp_backup_;
  SimulationFn simulation_;
  double threshold_;
  /// Guards buffer_ and buffered_uncertainty_sum_: the serving path
  /// appends (fallback + shadow runs) while take_retraining() hands the
  /// corpus to the retraining service's thread.
  mutable std::mutex buffer_mutex_;
  data::Dataset buffer_;
  DispatcherStats stats_;
  double accepted_uncertainty_sum_ = 0.0;
  double buffered_uncertainty_sum_ = 0.0;  ///< per-buffer; reset on drain
  GroundTruthTap ground_truth_tap_;
  std::unique_ptr<CircuitBreaker> breaker_;
  std::unique_ptr<serve::LookupCache> cache_;
  std::unique_ptr<obs::SurrogateHealthMonitor> health_;
  /// Brownout policy (shared with the queue edge); null when detached.
  std::shared_ptr<serve::DegradationLadder> ladder_;
  bool ladder_feed_latency_ = false;
  /// The ladder's kQuantized tier; guarded by model_mutex_.
  std::shared_ptr<uq::UqModel> degraded_surrogate_;

  /// Refreshes the acceptance and breaker gauges (metrics enabled only).
  void publish_gauges();

  /// Metric handles; all null until enable_metrics().
  struct MetricHandles {
    obs::Counter* surrogate_answers = nullptr;
    obs::Counter* simulation_answers = nullptr;
    obs::Counter* invalid_predictions = nullptr;
    obs::Counter* breaker_short_circuits = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* shadow_samples = nullptr;
    obs::Counter* shed_deadline = nullptr;
    obs::Counter* shed_overload = nullptr;
    obs::Counter* degraded_answers = nullptr;
    obs::Histogram* surrogate_seconds = nullptr;
    obs::Histogram* simulation_seconds = nullptr;
    obs::Histogram* shadow_seconds = nullptr;
    obs::Gauge* surrogate_fraction = nullptr;
    obs::Gauge* breaker_state = nullptr;
  };
  MetricHandles metrics_;
  obs::EffectiveSpeedupMeter* meter_ = nullptr;
  /// Remembered so a cache armed after enable_metrics() (or vice versa)
  /// still gets its "<prefix>.cache.*" metrics wired.
  obs::MetricsRegistry* metrics_registry_ = nullptr;
  std::string metrics_prefix_;
};

}  // namespace le::core
