/// @file
/// MLControl: objective-driven computational campaigns (paper Section I,
/// ref [12]): "Using simulations (with HPC) in control of experiments and
/// in objective driven computational campaigns.  Here the simulation
/// surrogates are very valuable to allow real-time predictions."
///
/// The campaign searches for the input state point whose simulated output
/// optimizes a user objective, under a hard budget of real simulation runs.
/// Strategy: every real run enriches a surrogate; between runs the
/// optimizer sweeps a large candidate pool through the (cheap) surrogate
/// and spends the next real run on the surrogate's best suggestion.
/// run_direct_campaign is the no-ML control arm with the same budget.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "le/core/resilient.hpp"
#include "le/core/surrogate.hpp"
#include "le/data/dataset.hpp"
#include "le/data/sampler.hpp"
#include "le/nn/train.hpp"

namespace le::obs {
class EffectiveSpeedupMeter;
}  // namespace le::obs

namespace le::ckpt {
class CampaignCheckpointer;
}  // namespace le::ckpt

namespace le::core {

/// Scalar objective over the simulation's output vector — MINIMIZED.
using OutputObjective = std::function<double(std::span<const double>)>;

struct CampaignConfig {
  /// Hard budget of real simulation runs.
  std::size_t simulation_budget = 30;
  /// Random (Latin hypercube) runs before the surrogate takes over.
  std::size_t warmup = 8;
  /// Candidate pool swept through the surrogate per acquisition.
  std::size_t pool = 400;
  /// Fraction of post-warmup runs spent exploring randomly.
  double exploration = 0.15;
  std::vector<std::size_t> hidden = {24, 24};
  nn::TrainConfig train;
  std::uint64_t seed = 61;
  /// Fault handling for real runs; a state point that fails permanently
  /// consumes budget (the compute was spent) but is skipped, not fatal.
  RetryPolicy retry;
  /// Optional live Section III-D accounting: real runs are N_train units,
  /// surrogate training is T_learn, candidate-pool sweeps are bulk
  /// lookups.  run_direct_campaign records its runs as the sequential
  /// baseline (T_seq) instead.  Null disables.
  obs::EffectiveSpeedupMeter* speedup_meter = nullptr;
  /// Optional crash-consistent checkpointing: progress (evaluated dataset,
  /// best point, trace, RNG stream, latest surrogate + scalers, speedup
  /// counters) is snapshotted every checkpointer->config().interval
  /// consumed budget units, and a restarted campaign resumes from the
  /// newest valid snapshot with at most interval units of lost work.
  /// FaultStats are per-process and restart at zero.  Null disables.
  ckpt::CampaignCheckpointer* checkpointer = nullptr;
};

struct CampaignResult {
  std::vector<double> best_input;
  std::vector<double> best_output;
  double best_objective = 0.0;
  std::size_t simulations_run = 0;
  /// State points abandoned after exhausting the retry policy.
  std::size_t simulations_failed = 0;
  /// Attempt/retry/backoff accounting for the whole campaign.
  FaultStats fault_stats;
  /// Best objective after each *successful* real simulation.
  std::vector<double> trace;
  data::Dataset evaluated;
};

/// Surrogate-guided campaign.
[[nodiscard]] CampaignResult run_ml_campaign(const data::ParamSpace& space,
                                             const SimulationFn& simulation,
                                             std::size_t output_dim,
                                             const OutputObjective& objective,
                                             const CampaignConfig& config);

/// Control arm: spend the same budget on Latin-hypercube sampling alone.
[[nodiscard]] CampaignResult run_direct_campaign(
    const data::ParamSpace& space, const SimulationFn& simulation,
    std::size_t output_dim, const OutputObjective& objective,
    const CampaignConfig& config);

}  // namespace le::core
