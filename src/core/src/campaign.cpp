#include "le/core/campaign.hpp"

#include <chrono>
#include <future>
#include <stdexcept>

namespace le::core {

data::Dataset run_campaign(const std::vector<std::vector<double>>& points,
                           const SimulationFn& simulation,
                           std::size_t output_dim, runtime::ThreadPool* pool,
                           CampaignRunStats* stats) {
  if (points.empty()) throw std::invalid_argument("run_campaign: no points");
  const std::size_t input_dim = points.front().size();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<double>> outputs(points.size());
  std::vector<double> run_seconds(points.size(), 0.0);

  const auto run_one = [&](std::size_t i) {
    const auto r0 = std::chrono::steady_clock::now();
    outputs[i] = simulation(points[i]);
    run_seconds[i] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - r0)
            .count();
    if (outputs[i].size() != output_dim) {
      throw std::runtime_error("run_campaign: simulation output dim mismatch");
    }
  };

  if (pool) {
    std::vector<std::future<void>> futures;
    futures.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      futures.push_back(pool->submit([&, i] { run_one(i); }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) run_one(i);
  }

  data::Dataset dataset(input_dim, output_dim);
  for (std::size_t i = 0; i < points.size(); ++i) {
    dataset.add(points[i], outputs[i]);
  }

  if (stats) {
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    stats->cpu_seconds = 0.0;
    for (double s : run_seconds) stats->cpu_seconds += s;
    stats->runs = points.size();
  }
  return dataset;
}

}  // namespace le::core
