#include "le/core/surrogate.hpp"

#include <stdexcept>

#include "le/uq/acquisition.hpp"

namespace le::core {

SurrogateDispatcher::SurrogateDispatcher(std::shared_ptr<uq::UqModel> surrogate,
                                         SimulationFn simulation,
                                         double threshold)
    : surrogate_(std::move(surrogate)), simulation_(std::move(simulation)),
      threshold_(threshold) {
  if (!surrogate_) throw std::invalid_argument("SurrogateDispatcher: null surrogate");
  if (!simulation_) throw std::invalid_argument("SurrogateDispatcher: null simulation");
  if (threshold < 0.0) throw std::invalid_argument("SurrogateDispatcher: threshold < 0");
  buffer_ = data::Dataset(surrogate_->input_dim(), surrogate_->output_dim());
}

Answer SurrogateDispatcher::query(std::span<const double> input) {
  const auto t0 = std::chrono::steady_clock::now();
  const uq::Prediction prediction = surrogate_->predict(input);
  const double score = uq::uncertainty_score(prediction);

  Answer answer;
  answer.uncertainty = score;
  if (score <= threshold_) {
    answer.values = prediction.mean;
    answer.source = AnswerSource::kSurrogate;
    const auto t1 = std::chrono::steady_clock::now();
    answer.seconds = std::chrono::duration<double>(t1 - t0).count();
    ++stats_.surrogate_answers;
    stats_.surrogate_seconds += answer.seconds;
    accepted_uncertainty_sum_ += score;
    stats_.mean_accepted_uncertainty =
        accepted_uncertainty_sum_ / static_cast<double>(stats_.surrogate_answers);
    return answer;
  }

  answer.values = simulation_(input);
  answer.source = AnswerSource::kSimulation;
  const auto t1 = std::chrono::steady_clock::now();
  answer.seconds = std::chrono::duration<double>(t1 - t0).count();
  ++stats_.simulation_answers;
  stats_.simulation_seconds += answer.seconds;
  buffer_.add(input, answer.values);  // no run is wasted
  return answer;
}

data::Dataset SurrogateDispatcher::drain_training_buffer() {
  data::Dataset drained = std::move(buffer_);
  buffer_ = data::Dataset(surrogate_->input_dim(), surrogate_->output_dim());
  return drained;
}

void SurrogateDispatcher::set_threshold(double threshold) {
  if (threshold < 0.0) throw std::invalid_argument("set_threshold: threshold < 0");
  threshold_ = threshold;
}

void SurrogateDispatcher::replace_surrogate(
    std::shared_ptr<uq::UqModel> surrogate) {
  if (!surrogate) throw std::invalid_argument("replace_surrogate: null");
  if (surrogate->input_dim() != surrogate_->input_dim() ||
      surrogate->output_dim() != surrogate_->output_dim()) {
    throw std::invalid_argument("replace_surrogate: shape mismatch");
  }
  surrogate_ = std::move(surrogate);
}

}  // namespace le::core
