#include "le/core/surrogate.hpp"

#include <cmath>
#include <stdexcept>

#include "le/core/resilient.hpp"
#include "le/obs/metrics.hpp"
#include "le/obs/speedup_meter.hpp"
#include "le/uq/acquisition.hpp"

namespace le::core {

SurrogateDispatcher::SurrogateDispatcher(std::shared_ptr<uq::UqModel> surrogate,
                                         SimulationFn simulation,
                                         double threshold)
    : surrogate_(std::move(surrogate)), simulation_(std::move(simulation)),
      threshold_(threshold) {
  if (!surrogate_) throw std::invalid_argument("SurrogateDispatcher: null surrogate");
  if (!simulation_) throw std::invalid_argument("SurrogateDispatcher: null simulation");
  if (threshold < 0.0) throw std::invalid_argument("SurrogateDispatcher: threshold < 0");
  buffer_ = data::Dataset(surrogate_->input_dim(), surrogate_->output_dim());
}

SurrogateDispatcher::~SurrogateDispatcher() = default;
SurrogateDispatcher::SurrogateDispatcher(SurrogateDispatcher&&) noexcept = default;
SurrogateDispatcher& SurrogateDispatcher::operator=(SurrogateDispatcher&&) noexcept =
    default;

Answer SurrogateDispatcher::query(std::span<const double> input) {
  const auto t0 = std::chrono::steady_clock::now();

  Answer answer;
  const bool surrogate_allowed = !breaker_ || breaker_->allow();
  if (!surrogate_allowed) {
    ++stats_.breaker_short_circuits;
    if (metrics_.breaker_short_circuits) metrics_.breaker_short_circuits->add();
  }

  if (surrogate_allowed) {
    const uq::Prediction prediction = surrogate_->predict(input);
    const double score = uq::uncertainty_score(prediction);

    // An unusable prediction (corrupted mean, non-finite score, wrong
    // length) is a surrogate *failure*, distinct from an honest "too
    // uncertain" answer: it feeds the breaker instead of the gate.
    ValidationSpec spec;
    spec.expected_dim = surrogate_->output_dim();
    const bool usable =
        std::isfinite(score) &&
        validate_output(prediction.mean, spec) == OutputVerdict::kValid;
    if (!usable) {
      ++stats_.invalid_predictions;
      if (metrics_.invalid_predictions) metrics_.invalid_predictions->add();
      if (breaker_) breaker_->record_failure();
    } else {
      if (breaker_) breaker_->record_success();
      answer.uncertainty = score;
      if (score <= threshold_) {
        answer.values = prediction.mean;
        answer.source = AnswerSource::kSurrogate;
        const auto t1 = std::chrono::steady_clock::now();
        answer.seconds = std::chrono::duration<double>(t1 - t0).count();
        ++stats_.surrogate_answers;
        stats_.surrogate_seconds += answer.seconds;
        accepted_uncertainty_sum_ += score;
        stats_.mean_accepted_uncertainty =
            stats_.surrogate_answers == 0
                ? 0.0
                : accepted_uncertainty_sum_ /
                      static_cast<double>(stats_.surrogate_answers);
        if (meter_) meter_->record_lookup(answer.seconds);
        if (metrics_.surrogate_answers) {
          metrics_.surrogate_answers->add();
          metrics_.surrogate_seconds->record(answer.seconds);
          publish_gauges();
        }
        return answer;
      }
    }
  }

  answer.values = simulation_(input);
  answer.source = AnswerSource::kSimulation;
  const auto t1 = std::chrono::steady_clock::now();
  answer.seconds = std::chrono::duration<double>(t1 - t0).count();
  ++stats_.simulation_answers;
  stats_.simulation_seconds += answer.seconds;
  buffer_.add(input, answer.values);  // no run is wasted
  buffered_uncertainty_sum_ += answer.uncertainty;
  // A fallback run is an N_train unit of the speedup model: its sample
  // just joined the training buffer.
  if (meter_) meter_->record_train(answer.seconds);
  if (metrics_.simulation_answers) {
    metrics_.simulation_answers->add();
    metrics_.simulation_seconds->record(answer.seconds);
    publish_gauges();
  }
  return answer;
}

void SurrogateDispatcher::publish_gauges() {
  metrics_.surrogate_fraction->set(stats_.surrogate_fraction());
  metrics_.breaker_state->set(
      breaker_ ? static_cast<double>(breaker_->state()) : 0.0);
}

void SurrogateDispatcher::enable_metrics(obs::MetricsRegistry& registry,
                                         const std::string& prefix) {
  metrics_.surrogate_answers = &registry.counter(prefix + ".surrogate_answers");
  metrics_.simulation_answers =
      &registry.counter(prefix + ".simulation_answers");
  metrics_.invalid_predictions =
      &registry.counter(prefix + ".invalid_predictions");
  metrics_.breaker_short_circuits =
      &registry.counter(prefix + ".breaker_short_circuits");
  metrics_.surrogate_seconds =
      &registry.histogram(prefix + ".surrogate_seconds");
  metrics_.simulation_seconds =
      &registry.histogram(prefix + ".simulation_seconds");
  metrics_.surrogate_fraction = &registry.gauge(prefix + ".surrogate_fraction");
  metrics_.breaker_state = &registry.gauge(prefix + ".breaker_state");
}

data::Dataset SurrogateDispatcher::drain_training_buffer() {
  data::Dataset drained = std::move(buffer_);
  buffer_ = data::Dataset(surrogate_->input_dim(), surrogate_->output_dim());
  buffered_uncertainty_sum_ = 0.0;  // per-buffer aggregate follows the buffer
  return drained;
}

double SurrogateDispatcher::mean_buffered_uncertainty() const noexcept {
  return buffer_.size() == 0
             ? 0.0
             : buffered_uncertainty_sum_ / static_cast<double>(buffer_.size());
}

void SurrogateDispatcher::set_threshold(double threshold) {
  if (threshold < 0.0) throw std::invalid_argument("set_threshold: threshold < 0");
  threshold_ = threshold;
}

void SurrogateDispatcher::replace_surrogate(
    std::shared_ptr<uq::UqModel> surrogate) {
  if (!surrogate) throw std::invalid_argument("replace_surrogate: null");
  if (surrogate->input_dim() != surrogate_->input_dim() ||
      surrogate->output_dim() != surrogate_->output_dim()) {
    throw std::invalid_argument("replace_surrogate: shape mismatch");
  }
  surrogate_ = std::move(surrogate);
}

void SurrogateDispatcher::enable_circuit_breaker(
    const CircuitBreakerConfig& config) {
  breaker_ = std::make_unique<CircuitBreaker>(config);
}

const CircuitBreaker* SurrogateDispatcher::circuit_breaker() const noexcept {
  return breaker_.get();
}

}  // namespace le::core
