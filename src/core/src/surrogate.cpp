#include "le/core/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "le/core/resilient.hpp"
#include "le/obs/health.hpp"
#include "le/obs/metrics.hpp"
#include "le/serve/degradation.hpp"
#include "le/serve/lookup_cache.hpp"
#include "le/obs/speedup_meter.hpp"
#include "le/uq/acquisition.hpp"

namespace le::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

SurrogateDispatcher::SurrogateDispatcher(std::shared_ptr<uq::UqModel> surrogate,
                                         SimulationFn simulation,
                                         double threshold)
    : surrogate_(std::move(surrogate)), simulation_(std::move(simulation)),
      threshold_(threshold) {
  if (!surrogate_) throw std::invalid_argument("SurrogateDispatcher: null surrogate");
  if (!simulation_) throw std::invalid_argument("SurrogateDispatcher: null simulation");
  if (threshold < 0.0) throw std::invalid_argument("SurrogateDispatcher: threshold < 0");
  buffer_ = data::Dataset(surrogate_->input_dim(), surrogate_->output_dim());
}

SurrogateDispatcher::~SurrogateDispatcher() = default;

std::shared_ptr<uq::UqModel> SurrogateDispatcher::current_surrogate() const {
  std::lock_guard lock(model_mutex_);
  return surrogate_;
}

void SurrogateDispatcher::set_ground_truth_tap(GroundTruthTap tap) {
  ground_truth_tap_ = std::move(tap);
}

Answer SurrogateDispatcher::query(std::span<const double> input,
                                  serve::Deadline deadline) {
  const auto t0 = std::chrono::steady_clock::now();
  // A dead-on-arrival request is shed before ANY model work: no forward
  // pass, no simulation, not even a drift observation.
  if (deadline && *deadline <= t0) {
    return make_shed_answer(serve::ShedReason::kDeadline, 0.0);
  }
  // One ladder level per query; enforcement below never re-reads it, so a
  // query is answered consistently at the level it entered under.
  const serve::ServiceLevel level =
      ladder_ ? ladder_->level() : serve::ServiceLevel::kFull;
  if (level == serve::ServiceLevel::kShedAll) {
    return make_shed_answer(serve::ShedReason::kOverload, seconds_since(t0));
  }
  // Cache epoch FIRST, then the model: if a replace_surrogate() lands in
  // between, the stale epoch makes this query's eventual insert drop — a
  // retired model's answer can never be cached into the new model's era.
  const std::uint64_t cache_epoch = cache_ ? cache_->epoch() : 0;
  // One consistent model per query: a concurrent replace_surrogate()
  // affects the next query, never a half-answered one.  At kQuantized the
  // registered degraded surrogate serves instead of the incumbent.
  std::shared_ptr<uq::UqModel> surrogate;
  bool degraded = false;
  {
    std::lock_guard lock(model_mutex_);
    if (level == serve::ServiceLevel::kQuantized && degraded_surrogate_) {
      surrogate = degraded_surrogate_;
      degraded = true;
    } else {
      surrogate = surrogate_;
    }
  }

  // Health monitoring sees every query input — cache hits included, since
  // drift is a property of the demand stream, not of the route taken.  A
  // completed drift window can flip the monitor to UNTRUSTED right here,
  // in which case the breaker opens before this query consults it.
  if (health_) {
    health_->observe_query(input);
    sync_health_breaker();
  }

  // Learned-lookup fast path: a remembered gate-accepted answer, re-checked
  // against the *current* threshold, is served with no forward pass at all.
  // The thread-local scratch keeps the hit path allocation-free up to the
  // Answer itself.
  if (cache_) {
    static thread_local serve::CachedAnswer cached;
    if (cache_->find(input, cached) && cached.uncertainty <= threshold_) {
      Answer answer;
      answer.values = cached.values;
      answer.uncertainty = cached.uncertainty;
      answer.source = AnswerSource::kSurrogate;
      answer.from_cache = true;
      const auto t1 = std::chrono::steady_clock::now();
      answer.seconds = std::chrono::duration<double>(t1 - t0).count();
      account_surrogate_answer(answer);
      if (ladder_ && ladder_feed_latency_) ladder_->record(answer.seconds);
      return answer;
    }
  }

  // Brownout tier 2: under kCacheOnly a miss is refused outright — no
  // forward, no fallback.  Cached answers above stay honest lookups.
  if (level == serve::ServiceLevel::kCacheOnly) {
    return make_shed_answer(serve::ShedReason::kOverload, seconds_since(t0));
  }

  Answer answer;
  const bool surrogate_allowed = !breaker_ || breaker_->allow();
  if (!surrogate_allowed) {
    ++stats_.breaker_short_circuits;
    if (metrics_.breaker_short_circuits) metrics_.breaker_short_circuits->add();
  }

  if (surrogate_allowed) {
    const uq::Prediction prediction = surrogate->predict(input);
    const double score = uq::uncertainty_score(prediction);

    // An unusable prediction (corrupted mean, non-finite score, wrong
    // length) is a surrogate *failure*, distinct from an honest "too
    // uncertain" answer: it feeds the breaker instead of the gate.
    ValidationSpec spec;
    spec.expected_dim = surrogate->output_dim();
    const bool usable =
        std::isfinite(score) &&
        validate_output(prediction.mean, spec) == OutputVerdict::kValid;
    if (!usable) {
      ++stats_.invalid_predictions;
      if (metrics_.invalid_predictions) metrics_.invalid_predictions->add();
      if (breaker_) breaker_->record_failure();
    } else {
      if (breaker_) breaker_->record_success();
      answer.uncertainty = score;
      if (score <= threshold_) {
        answer.values = prediction.mean;
        answer.source = AnswerSource::kSurrogate;
        answer.degraded = degraded;
        const auto t1 = std::chrono::steady_clock::now();
        answer.seconds = std::chrono::duration<double>(t1 - t0).count();
        // Only gate-accepted answers are remembered, so a later hit
        // inherits this acceptance.  The epoch check drops the insert if
        // the model this answer came from has been retired meanwhile.
        // Degraded answers are never cached: the cache stores
        // full-fidelity answers only, and a quantized answer must not
        // keep serving after the brownout lifts.
        if (cache_ && !degraded) {
          (void)cache_->try_insert(input, {answer.values, score}, cache_epoch);
        }
        account_surrogate_answer(answer);
        // Shadow sampling happens after the answer's latency is clocked:
        // the caller still gets the surrogate answer; the ground-truth run
        // is monitoring overhead billed to the training path.  Never under
        // brownout: a shadow run is a full simulation — exactly the cost
        // the ladder is shedding.
        if (!degraded && health_ && health_->should_shadow_sample()) {
          shadow_sample(input, prediction.mean, prediction.stddev, score);
        }
        if (ladder_ && ladder_feed_latency_) ladder_->record(answer.seconds);
        return answer;
      }
    }
  }

  // At any degraded level the simulation fallback is disabled: running the
  // most expensive path under overload is the collapse mode the ladder
  // exists to prevent.  A gate rejection (or breaker short-circuit, or
  // invalid prediction) under brownout is therefore a shed, not a sim run.
  if (level != serve::ServiceLevel::kFull) {
    return make_shed_answer(serve::ShedReason::kOverload, seconds_since(t0));
  }
  // The forward above took time; never burn a simulation — the most
  // expensive path there is — on a request that died while we predicted.
  if (deadline && *deadline <= std::chrono::steady_clock::now()) {
    return make_shed_answer(serve::ShedReason::kDeadline, seconds_since(t0));
  }

  answer.values = simulation_(input);
  answer.source = AnswerSource::kSimulation;
  const auto t1 = std::chrono::steady_clock::now();
  answer.seconds = std::chrono::duration<double>(t1 - t0).count();
  ++stats_.simulation_answers;
  stats_.simulation_seconds += answer.seconds;
  {
    std::lock_guard lock(buffer_mutex_);
    buffer_.add(input, answer.values);  // no run is wasted
    buffered_uncertainty_sum_ += answer.uncertainty;
  }
  if (ground_truth_tap_) ground_truth_tap_(input, answer.values);
  // A fallback run is an N_train unit of the speedup model: its sample
  // just joined the training buffer.
  if (meter_) meter_->record_train(answer.seconds);
  if (metrics_.simulation_answers) {
    metrics_.simulation_answers->add();
    metrics_.simulation_seconds->record(answer.seconds);
    publish_gauges();
  }
  if (ladder_ && ladder_feed_latency_) ladder_->record(answer.seconds);
  return answer;
}

std::vector<Answer> SurrogateDispatcher::query_batch(
    const tensor::Matrix& inputs, std::span<const serve::Deadline> deadlines) {
  if (!deadlines.empty() && deadlines.size() != inputs.rows()) {
    throw std::invalid_argument(
        "query_batch: deadlines must be empty or one per row");
  }
  // One ladder level per batch, same as query().
  const serve::ServiceLevel level =
      ladder_ ? ladder_->level() : serve::ServiceLevel::kFull;
  // Epoch before model snapshot — same stale-era insert protection as
  // query().
  const std::uint64_t cache_epoch = cache_ ? cache_->epoch() : 0;
  std::shared_ptr<uq::UqModel> surrogate;
  bool degraded = false;
  {
    std::lock_guard lock(model_mutex_);
    if (level == serve::ServiceLevel::kQuantized && degraded_surrogate_) {
      surrogate = degraded_surrogate_;
      degraded = true;
    } else {
      surrogate = surrogate_;
    }
  }
  if (inputs.cols() != surrogate->input_dim()) {
    throw std::invalid_argument("query_batch: input dim mismatch");
  }
  const std::size_t n = inputs.rows();
  std::vector<Answer> answers(n);
  if (n == 0) return answers;

  const auto deadline_of = [&](std::size_t r) -> serve::Deadline {
    return deadlines.empty() ? serve::Deadline{} : deadlines[r];
  };

  // Pass 0 — shed.  Rows dead on arrival (and, under kShedAll, every row)
  // are resolved here and excluded from everything below: a shed row never
  // reaches the miss matrix, so the shared GEMM never includes a dead row.
  // A resolved row is recognisable by answers[r].source == kShed.
  const auto entry = std::chrono::steady_clock::now();
  std::size_t n_live = 0;
  for (std::size_t r = 0; r < n; ++r) {
    if (const serve::Deadline d = deadline_of(r); d && *d <= entry) {
      answers[r] = make_shed_answer(serve::ShedReason::kDeadline, 0.0);
    } else if (level == serve::ServiceLevel::kShedAll) {
      answers[r] = make_shed_answer(serve::ShedReason::kOverload, 0.0);
    } else {
      ++n_live;
    }
  }
  if (n_live == 0) return answers;
  const auto is_live = [&](std::size_t r) {
    return answers[r].source != AnswerSource::kShed;
  };

  if (health_) {
    for (std::size_t r = 0; r < n; ++r) {
      if (is_live(r)) health_->observe_query(inputs.row(r));
    }
    sync_health_breaker();
  }

  // Pass 1 — learned-lookup cache over the live rows.  Shared work is
  // billed evenly: every live row owes an equal slice of the cache pass,
  // and below, every forwarded miss owes an equal slice of the one batched
  // forward that served it.
  std::vector<std::size_t> misses;
  misses.reserve(n_live);
  const auto cache_t0 = std::chrono::steady_clock::now();
  if (cache_) {
    serve::CachedAnswer cached;  // reused across rows: one alloc per batch
    for (std::size_t r = 0; r < n; ++r) {
      if (!is_live(r)) continue;
      if (cache_->find(inputs.row(r), cached) &&
          cached.uncertainty <= threshold_) {
        answers[r].values = cached.values;
        answers[r].uncertainty = cached.uncertainty;
        answers[r].from_cache = true;
      } else {
        misses.push_back(r);
      }
    }
  } else {
    for (std::size_t r = 0; r < n; ++r) {
      if (is_live(r)) misses.push_back(r);
    }
  }
  std::vector<double> owed(n, 0.0);
  {
    const double cache_share =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      cache_t0)
            .count() /
        static_cast<double>(n_live);
    for (std::size_t r = 0; r < n; ++r) {
      if (is_live(r)) owed[r] = cache_share;
    }
  }

  // Brownout tier 2: kCacheOnly refuses every miss — the batch's forward
  // never happens; the cache hits above still resolve normally.
  if (level == serve::ServiceLevel::kCacheOnly) {
    for (const std::size_t r : misses) {
      answers[r] = make_shed_answer(serve::ShedReason::kOverload, owed[r]);
    }
    misses.clear();
  }

  // Pass 2 — one batched surrogate forward over the misses, gated by one
  // breaker consultation for the whole batch.  Deadlines are re-checked at
  // matrix-packing time: a row that expired during the cache pass is shed
  // here, pre-GEMM, instead of riding along dead.
  if (!misses.empty()) {
    const bool surrogate_allowed = !breaker_ || breaker_->allow();
    if (!surrogate_allowed) {
      stats_.breaker_short_circuits += misses.size();
      if (metrics_.breaker_short_circuits) {
        metrics_.breaker_short_circuits->add(misses.size());
      }
    } else {
      const auto pack_now = std::chrono::steady_clock::now();
      std::vector<std::size_t> forwarded;
      forwarded.reserve(misses.size());
      for (const std::size_t r : misses) {
        if (const serve::Deadline d = deadline_of(r); d && *d <= pack_now) {
          answers[r] = make_shed_answer(serve::ShedReason::kDeadline, owed[r]);
        } else {
          forwarded.push_back(r);
        }
      }
      misses = std::move(forwarded);
    }
    if (surrogate_allowed && !misses.empty()) {
      tensor::Matrix miss_inputs(misses.size(), inputs.cols());
      for (std::size_t i = 0; i < misses.size(); ++i) {
        const auto src = inputs.row(misses[i]);
        auto dst = miss_inputs.row(i);
        std::copy(src.begin(), src.end(), dst.begin());
      }
      const auto fwd_t0 = std::chrono::steady_clock::now();
      const std::vector<uq::Prediction> predictions =
          surrogate->predict_batch(miss_inputs);
      const double fwd_share =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        fwd_t0)
              .count() /
          static_cast<double>(misses.size());

      ValidationSpec spec;
      spec.expected_dim = surrogate->output_dim();
      std::vector<std::size_t> unanswered;
      for (std::size_t i = 0; i < misses.size(); ++i) {
        const std::size_t r = misses[i];
        owed[r] += fwd_share;
        const uq::Prediction& prediction = predictions[i];
        const double score = uq::uncertainty_score(prediction);
        const bool usable =
            std::isfinite(score) &&
            validate_output(prediction.mean, spec) == OutputVerdict::kValid;
        if (!usable) {
          ++stats_.invalid_predictions;
          if (metrics_.invalid_predictions) metrics_.invalid_predictions->add();
          if (breaker_) breaker_->record_failure();
          unanswered.push_back(r);
          continue;
        }
        if (breaker_) breaker_->record_success();
        answers[r].uncertainty = score;
        if (score <= threshold_) {
          answers[r].values = prediction.mean;
          answers[r].degraded = degraded;
          // Degraded answers are never cached and never shadow sampled —
          // see query() for why.
          if (cache_ && !degraded) {
            (void)cache_->try_insert(inputs.row(r), {prediction.mean, score},
                                     cache_epoch);
          }
          if (!degraded && health_ && health_->should_shadow_sample()) {
            shadow_sample(inputs.row(r), prediction.mean, prediction.stddev,
                          score);
          }
        } else {
          unanswered.push_back(r);
        }
      }
      misses = std::move(unanswered);
    }
  }

  // Pass 3 — book the surrogate answers; whatever the cache, the breaker
  // and the gate all declined either falls back to the simulation (kFull)
  // or is shed (degraded levels disable the fallback — see query()).
  std::vector<bool> needs_sim(n, false);
  for (const std::size_t r : misses) needs_sim[r] = true;
  for (std::size_t r = 0; r < n; ++r) {
    Answer& answer = answers[r];
    if (answer.source == AnswerSource::kShed) continue;  // resolved in shed passes
    if (!needs_sim[r]) {
      answer.source = AnswerSource::kSurrogate;
      answer.seconds = owed[r];
      account_surrogate_answer(answer);
      if (ladder_ && ladder_feed_latency_) ladder_->record(answer.seconds);
      continue;
    }
    if (level != serve::ServiceLevel::kFull) {
      answer = make_shed_answer(serve::ShedReason::kOverload, owed[r]);
      continue;
    }
    // Never burn a simulation on a request that died while the batch was
    // being predicted.
    const auto sim_t0 = std::chrono::steady_clock::now();
    if (const serve::Deadline d = deadline_of(r); d && *d <= sim_t0) {
      answer = make_shed_answer(serve::ShedReason::kDeadline, owed[r]);
      continue;
    }
    answer.values = simulation_(inputs.row(r));
    answer.source = AnswerSource::kSimulation;
    answer.seconds =
        owed[r] + std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - sim_t0)
                      .count();
    ++stats_.simulation_answers;
    stats_.simulation_seconds += answer.seconds;
    {
      std::lock_guard lock(buffer_mutex_);
      buffer_.add(inputs.row(r), answer.values);  // no run is wasted
      buffered_uncertainty_sum_ += answer.uncertainty;
    }
    if (ground_truth_tap_) ground_truth_tap_(inputs.row(r), answer.values);
    if (meter_) meter_->record_train(answer.seconds);
    if (metrics_.simulation_answers) {
      metrics_.simulation_answers->add();
      metrics_.simulation_seconds->record(answer.seconds);
      publish_gauges();
    }
    if (ladder_ && ladder_feed_latency_) ladder_->record(answer.seconds);
  }
  return answers;
}

Answer SurrogateDispatcher::make_shed_answer(serve::ShedReason reason,
                                             double seconds) {
  Answer answer;
  answer.source = AnswerSource::kShed;
  answer.shed_reason = reason;
  answer.seconds = seconds;
  // Deliberately NOT booked into the speedup meter (nothing was looked up,
  // nothing was trained) and never fed to the breaker: a refusal is not a
  // model failure, and letting sheds trip the breaker would turn overload
  // into a simulation stampede.
  if (reason == serve::ShedReason::kDeadline) {
    ++stats_.shed_deadline;
    if (metrics_.shed_deadline) metrics_.shed_deadline->add();
  } else {
    ++stats_.shed_overload;
    if (metrics_.shed_overload) metrics_.shed_overload->add();
  }
  return answer;
}

void SurrogateDispatcher::account_surrogate_answer(const Answer& answer) {
  ++stats_.surrogate_answers;
  stats_.surrogate_seconds += answer.seconds;
  accepted_uncertainty_sum_ += answer.uncertainty;
  stats_.mean_accepted_uncertainty =
      accepted_uncertainty_sum_ /
      static_cast<double>(stats_.surrogate_answers);
  if (answer.from_cache) {
    ++stats_.cache_hits;
    if (metrics_.cache_hits) metrics_.cache_hits->add();
  }
  if (answer.degraded) {
    ++stats_.degraded_answers;
    if (metrics_.degraded_answers) metrics_.degraded_answers->add();
  }
  if (meter_) meter_->record_lookup(answer.seconds);
  if (metrics_.surrogate_answers) {
    metrics_.surrogate_answers->add();
    metrics_.surrogate_seconds->record(answer.seconds);
    publish_gauges();
  }
}

void SurrogateDispatcher::shadow_sample(
    std::span<const double> input, const std::vector<double>& predicted_mean,
    const std::vector<double>& predicted_stddev, double uncertainty) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<double> truth = simulation_(input);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ++stats_.shadow_samples;
  stats_.shadow_seconds += seconds;
  health_->record_shadow(predicted_mean, predicted_stddev, truth);
  // The shadow run produced a fresh labelled sample — no run is wasted —
  // and its cost is an N_train unit of the speedup model, NOT a lookup:
  // billing it as lookup time would let monitoring inflate S_eff.
  {
    std::lock_guard lock(buffer_mutex_);
    buffer_.add(input, truth);
    buffered_uncertainty_sum_ += uncertainty;
  }
  if (ground_truth_tap_) ground_truth_tap_(input, truth);
  if (meter_) meter_->record_train(seconds);
  if (metrics_.shadow_samples) {
    metrics_.shadow_samples->add();
    metrics_.shadow_seconds->record(seconds);
  }
  sync_health_breaker();
}

void SurrogateDispatcher::sync_health_breaker() {
  if (!health_ || !breaker_) return;
  if (health_->retrain_requested()) {
    breaker_->trip();
    if (metrics_.breaker_state) publish_gauges();
  }
}

void SurrogateDispatcher::enable_health_monitoring(
    const obs::SurrogateHealthConfig& config,
    const tensor::Matrix& reference_inputs) {
  if (reference_inputs.cols() != surrogate_->input_dim()) {
    throw std::invalid_argument(
        "enable_health_monitoring: reference input dim mismatch");
  }
  health_ =
      std::make_unique<obs::SurrogateHealthMonitor>(config, reference_inputs);
  if (metrics_registry_) {
    health_->enable_metrics(*metrics_registry_, metrics_prefix_ + ".health");
  }
}

obs::SurrogateHealthMonitor* SurrogateDispatcher::health_monitor() noexcept {
  return health_.get();
}

const obs::SurrogateHealthMonitor* SurrogateDispatcher::health_monitor()
    const noexcept {
  return health_.get();
}

void SurrogateDispatcher::enable_lookup_cache(
    const serve::LookupCacheConfig& config) {
  cache_ = std::make_unique<serve::LookupCache>(config);
  if (metrics_registry_) {
    cache_->enable_metrics(*metrics_registry_, metrics_prefix_ + ".cache");
  }
}

void SurrogateDispatcher::publish_gauges() {
  metrics_.surrogate_fraction->set(stats_.surrogate_fraction());
  metrics_.breaker_state->set(
      breaker_ ? static_cast<double>(breaker_->state()) : 0.0);
}

void SurrogateDispatcher::enable_metrics(obs::MetricsRegistry& registry,
                                         const std::string& prefix) {
  metrics_.surrogate_answers = &registry.counter(prefix + ".surrogate_answers");
  metrics_.simulation_answers =
      &registry.counter(prefix + ".simulation_answers");
  metrics_.invalid_predictions =
      &registry.counter(prefix + ".invalid_predictions");
  metrics_.breaker_short_circuits =
      &registry.counter(prefix + ".breaker_short_circuits");
  metrics_.cache_hits = &registry.counter(prefix + ".cache_hits");
  metrics_.shadow_samples = &registry.counter(prefix + ".shadow_samples");
  metrics_.shed_deadline = &registry.counter(prefix + ".shed_deadline");
  metrics_.shed_overload = &registry.counter(prefix + ".shed_overload");
  metrics_.degraded_answers = &registry.counter(prefix + ".degraded_answers");
  metrics_.surrogate_seconds =
      &registry.histogram(prefix + ".surrogate_seconds");
  metrics_.simulation_seconds =
      &registry.histogram(prefix + ".simulation_seconds");
  metrics_.shadow_seconds = &registry.histogram(prefix + ".shadow_seconds");
  metrics_.surrogate_fraction = &registry.gauge(prefix + ".surrogate_fraction");
  metrics_.breaker_state = &registry.gauge(prefix + ".breaker_state");
  metrics_registry_ = &registry;
  metrics_prefix_ = prefix;
  if (cache_) cache_->enable_metrics(registry, prefix + ".cache");
  if (health_) health_->enable_metrics(registry, prefix + ".health");
}

data::Dataset SurrogateDispatcher::take_retraining() {
  // Dims are invariant across replace_surrogate() (it rejects shape
  // changes), so reading them from the current model needs no extra
  // coordination with the handoff.
  const std::shared_ptr<uq::UqModel> surrogate = current_surrogate();
  std::lock_guard lock(buffer_mutex_);
  data::Dataset drained = std::move(buffer_);
  buffer_ = data::Dataset(surrogate->input_dim(), surrogate->output_dim());
  buffered_uncertainty_sum_ = 0.0;  // per-buffer aggregate follows the buffer
  return drained;
}

double SurrogateDispatcher::mean_buffered_uncertainty() const noexcept {
  std::lock_guard lock(buffer_mutex_);
  return buffer_.size() == 0
             ? 0.0
             : buffered_uncertainty_sum_ / static_cast<double>(buffer_.size());
}

void SurrogateDispatcher::set_threshold(double threshold) {
  if (threshold < 0.0) throw std::invalid_argument("set_threshold: threshold < 0");
  threshold_ = threshold;
}

void SurrogateDispatcher::replace_surrogate(
    std::shared_ptr<uq::UqModel> surrogate) {
  if (!surrogate) throw std::invalid_argument("replace_surrogate: null");
  {
    std::lock_guard lock(model_mutex_);
    if (surrogate->input_dim() != surrogate_->input_dim() ||
        surrogate->output_dim() != surrogate_->output_dim()) {
      throw std::invalid_argument("replace_surrogate: shape mismatch");
    }
    surrogate_ = std::move(surrogate);
    // A promotion (or rollback) supersedes any quantized snapshot of the
    // previous model; quantized serving must be re-enabled against the new
    // incumbent explicitly — and likewise the ladder's degraded tier: a
    // quantized snapshot of a retired model must not serve the new era.
    quantized_fp_backup_.reset();
    degraded_surrogate_.reset();
  }
  // Cached answers came from the old surrogate; a hit must always reflect
  // what the current model would (approximately) say.  Likewise any open
  // breaker recorded the old model's failures (or a health trip): the
  // replacement starts trusted until it earns otherwise.
  if (cache_) cache_->clear();
  if (breaker_) breaker_->reset();
}

void SurrogateDispatcher::enable_quantized_serving(
    std::shared_ptr<uq::UqModel> quantized, double added_error) {
  if (!quantized) {
    throw std::invalid_argument("enable_quantized_serving: null model");
  }
  if (!std::isfinite(added_error) || added_error < 0.0) {
    throw std::invalid_argument("enable_quantized_serving: bad added_error");
  }
  // The existing UQ gate bounds quantization error: a residual wider than
  // the threshold means the quantized model could never answer, so refuse
  // loudly instead of serving 100% fallback.
  if (added_error > threshold_) {
    throw std::invalid_argument(
        "enable_quantized_serving: quantization residual exceeds the UQ "
        "gate threshold");
  }
  {
    std::lock_guard lock(model_mutex_);
    if (quantized->input_dim() != surrogate_->input_dim() ||
        quantized->output_dim() != surrogate_->output_dim()) {
      throw std::invalid_argument("enable_quantized_serving: shape mismatch");
    }
    if (!quantized_fp_backup_) quantized_fp_backup_ = surrogate_;
    surrogate_ = std::move(quantized);
  }
  // Same invalidation discipline as replace_surrogate(): cached fp answers
  // must not survive into the quantized era (and vice versa on disable).
  if (cache_) cache_->clear();
  if (breaker_) breaker_->reset();
}

void SurrogateDispatcher::disable_quantized_serving() {
  {
    std::lock_guard lock(model_mutex_);
    if (!quantized_fp_backup_) return;
    surrogate_ = std::move(quantized_fp_backup_);
    quantized_fp_backup_.reset();
  }
  if (cache_) cache_->clear();
  if (breaker_) breaker_->reset();
}

bool SurrogateDispatcher::quantized_serving() const noexcept {
  std::lock_guard lock(model_mutex_);
  return quantized_fp_backup_ != nullptr;
}

void SurrogateDispatcher::attach_degradation(
    std::shared_ptr<serve::DegradationLadder> ladder,
    bool feed_answer_latency) {
  ladder_ = std::move(ladder);
  ladder_feed_latency_ = ladder_ ? feed_answer_latency : false;
}

void SurrogateDispatcher::set_degraded_surrogate(
    std::shared_ptr<uq::UqModel> degraded, double added_error) {
  if (!degraded) {
    std::lock_guard lock(model_mutex_);
    degraded_surrogate_.reset();
    return;
  }
  if (!std::isfinite(added_error) || added_error < 0.0) {
    throw std::invalid_argument("set_degraded_surrogate: bad added_error");
  }
  // Same admission rule as enable_quantized_serving: a degraded tier whose
  // residual exceeds the UQ gate could never answer a query, so at
  // kQuantized every miss would shed — refuse loudly instead.
  if (added_error > threshold_) {
    throw std::invalid_argument(
        "set_degraded_surrogate: quantization residual exceeds the UQ gate "
        "threshold");
  }
  std::lock_guard lock(model_mutex_);
  if (degraded->input_dim() != surrogate_->input_dim() ||
      degraded->output_dim() != surrogate_->output_dim()) {
    throw std::invalid_argument("set_degraded_surrogate: shape mismatch");
  }
  degraded_surrogate_ = std::move(degraded);
}

std::vector<nn::LayerPlanChoice> SurrogateDispatcher::autotune_serving(
    std::size_t batch_hint) {
  // Tune through the snapshot: the plans land on the layers of the live
  // model (shared_ptr), and a model swapped in later is tuned by the next
  // autotune_serving() call (the retraining service re-tunes on promote).
  return current_surrogate()->autotune_inference(batch_hint);
}

void SurrogateDispatcher::enable_circuit_breaker(
    const CircuitBreakerConfig& config) {
  breaker_ = std::make_unique<CircuitBreaker>(config);
}

const CircuitBreaker* SurrogateDispatcher::circuit_breaker() const noexcept {
  return breaker_.get();
}

const serve::LookupCache* SurrogateDispatcher::lookup_cache() const noexcept {
  return cache_.get();
}

}  // namespace le::core
