#include "le/core/resilient.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace le::core {

// ---------------------------------------------------------------------------
// RetryPolicy

double RetryPolicy::base_backoff(std::size_t retry) const {
  if (retry == 0) return 0.0;
  const double raw = initial_backoff_seconds *
                     std::pow(backoff_multiplier,
                              static_cast<double>(retry - 1));
  return std::min(raw, max_backoff_seconds);
}

void RetryPolicy::validate() const {
  if (max_attempts == 0) {
    throw std::invalid_argument("RetryPolicy: max_attempts == 0");
  }
  if (initial_backoff_seconds < 0.0 || max_backoff_seconds < 0.0) {
    throw std::invalid_argument("RetryPolicy: negative backoff");
  }
  if (backoff_multiplier < 1.0) {
    throw std::invalid_argument("RetryPolicy: backoff_multiplier < 1");
  }
  if (jitter_fraction < 0.0 || jitter_fraction > 1.0) {
    throw std::invalid_argument("RetryPolicy: jitter_fraction not in [0, 1]");
  }
  if (deadline_seconds < 0.0) {
    throw std::invalid_argument("RetryPolicy: deadline_seconds < 0");
  }
}

// ---------------------------------------------------------------------------
// Output validation

void ValidationSpec::validate() const {
  if (!lower_bounds.empty() && lower_bounds.size() != expected_dim) {
    throw std::invalid_argument("ValidationSpec: lower_bounds size mismatch");
  }
  if (!upper_bounds.empty() && upper_bounds.size() != expected_dim) {
    throw std::invalid_argument("ValidationSpec: upper_bounds size mismatch");
  }
}

std::string to_string(OutputVerdict v) {
  switch (v) {
    case OutputVerdict::kValid: return "valid";
    case OutputVerdict::kWrongDimension: return "wrong_dimension";
    case OutputVerdict::kNonFinite: return "non_finite";
    case OutputVerdict::kOutOfBounds: return "out_of_bounds";
  }
  return "unknown";
}

OutputVerdict validate_output(std::span<const double> output,
                              const ValidationSpec& spec) {
  if (spec.expected_dim != 0 && output.size() != spec.expected_dim) {
    return OutputVerdict::kWrongDimension;
  }
  for (double v : output) {
    if (!std::isfinite(v)) return OutputVerdict::kNonFinite;
  }
  if (!spec.lower_bounds.empty() || !spec.upper_bounds.empty()) {
    for (std::size_t i = 0; i < output.size(); ++i) {
      if (!spec.lower_bounds.empty() && output[i] < spec.lower_bounds[i]) {
        return OutputVerdict::kOutOfBounds;
      }
      if (!spec.upper_bounds.empty() && output[i] > spec.upper_bounds[i]) {
        return OutputVerdict::kOutOfBounds;
      }
    }
  }
  return OutputVerdict::kValid;
}

// ---------------------------------------------------------------------------
// ResilientSimulation

ResilientSimulation::ResilientSimulation(SimulationFn inner,
                                         RetryPolicy policy,
                                         ValidationSpec validation)
    : inner_(std::move(inner)), policy_(policy),
      validation_(std::move(validation)), rng_(policy.seed) {
  if (!inner_) {
    throw std::invalid_argument("ResilientSimulation: null simulation");
  }
  policy_.validate();
  validation_.validate();
}

std::optional<std::vector<double>> ResilientSimulation::try_run(
    std::span<const double> input) {
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  {
    std::lock_guard lock(mutex_);
    ++stats_.calls;
  }
  for (std::size_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (attempt > 1) {
      double backoff = policy_.base_backoff(attempt - 1);
      {
        std::lock_guard lock(mutex_);
        backoff *= 1.0 + policy_.jitter_fraction * rng_.uniform(-1.0, 1.0);
        ++stats_.retries;
        stats_.total_backoff_seconds += backoff;
      }
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
    }
    if (policy_.deadline_seconds > 0.0 && elapsed() > policy_.deadline_seconds) {
      break;  // per-call deadline exhausted; give up on this state point
    }
    {
      std::lock_guard lock(mutex_);
      ++stats_.attempts;
    }
    try {
      std::vector<double> output(inner_(input));
      if (validate_output(output, validation_) == OutputVerdict::kValid) {
        return output;
      }
      std::lock_guard lock(mutex_);
      ++stats_.rejections;
    } catch (const std::exception&) {
      // Transient failure: fall through to the next attempt.
    }
  }
  std::lock_guard lock(mutex_);
  ++stats_.failures;
  return std::nullopt;
}

std::vector<double> ResilientSimulation::run(std::span<const double> input) {
  if (auto output = try_run(input)) return std::move(*output);
  throw SimulationFailed("ResilientSimulation: state point failed after " +
                         std::to_string(policy_.max_attempts) + " attempts");
}

SimulationFn ResilientSimulation::as_simulation_fn() {
  return [this](std::span<const double> input) { return run(input); };
}

FaultStats ResilientSimulation::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

// ---------------------------------------------------------------------------
// CircuitBreaker

void CircuitBreakerConfig::validate() const {
  if (failure_threshold == 0) {
    throw std::invalid_argument("CircuitBreaker: failure_threshold == 0");
  }
}

std::string to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerConfig& config)
    : config_(config) {
  config_.validate();
}

bool CircuitBreaker::allow() {
  std::lock_guard lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (cooldown_remaining_ > 0) {
        --cooldown_remaining_;
        return false;
      }
      state_ = BreakerState::kHalfOpen;
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      // Exactly one probe at a time; concurrent callers are denied until
      // the probe reports back.
      if (probe_outstanding_) return false;
      probe_outstanding_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() {
  std::lock_guard lock(mutex_);
  consecutive_failures_ = 0;
  probe_outstanding_ = false;
  state_ = BreakerState::kClosed;
}

void CircuitBreaker::record_failure() {
  std::lock_guard lock(mutex_);
  if (state_ == BreakerState::kHalfOpen) {
    // Failed probe: straight back to open for a full cooldown.
    probe_outstanding_ = false;
    trip_locked();
    return;
  }
  ++consecutive_failures_;
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= config_.failure_threshold) {
    trip_locked();
  }
}

void CircuitBreaker::trip() {
  std::lock_guard lock(mutex_);
  probe_outstanding_ = false;
  if (state_ == BreakerState::kOpen) {
    // Re-asserted distrust restarts the cooldown, so a caller that trips
    // on every request keeps the breaker open indefinitely — no half-open
    // probe ever reaches the dependency while the signal persists.
    cooldown_remaining_ = config_.cooldown_calls;
    consecutive_failures_ = config_.failure_threshold;
    return;
  }
  trip_locked();
}

void CircuitBreaker::reset() {
  std::lock_guard lock(mutex_);
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  cooldown_remaining_ = 0;
  probe_outstanding_ = false;
}

void CircuitBreaker::trip_locked() {
  state_ = BreakerState::kOpen;
  cooldown_remaining_ = config_.cooldown_calls;
  consecutive_failures_ = config_.failure_threshold;
  ++trips_;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

std::size_t CircuitBreaker::trips() const {
  std::lock_guard lock(mutex_);
  return trips_;
}

std::size_t CircuitBreaker::consecutive_failures() const {
  std::lock_guard lock(mutex_);
  return consecutive_failures_;
}

}  // namespace le::core
