#include "le/core/adaptive_loop.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "le/ckpt/campaign_checkpoint.hpp"
#include "le/nn/loss.hpp"
#include "le/nn/optimizer.hpp"
#include "le/nn/serialize.hpp"
#include "le/obs/health.hpp"
#include "le/obs/metrics.hpp"
#include "le/obs/speedup_meter.hpp"
#include "le/uq/acquisition.hpp"

namespace le::core {

namespace {

/// CampaignState::kind written by run_adaptive_loop snapshots.
constexpr const char* kAdaptiveLoopKind = "adaptive_loop";

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Trains a fresh dropout MLP on the corpus and wraps it for MC-dropout.
std::shared_ptr<uq::McDropoutEnsemble> train_surrogate(
    const data::Dataset& corpus, std::size_t input_dim, std::size_t output_dim,
    const AdaptiveLoopConfig& config, stats::Rng& rng) {
  nn::MlpConfig mlp;
  mlp.input_dim = input_dim;
  mlp.hidden = config.hidden;
  mlp.output_dim = output_dim;
  mlp.activation = nn::Activation::kRelu;
  mlp.dropout_rate = config.dropout_rate;
  stats::Rng net_rng = rng.split(corpus.size());
  nn::Network net = nn::make_mlp(mlp, net_rng);
  nn::AdamOptimizer opt(1e-2);
  const nn::MseLoss loss;
  stats::Rng fit_rng = rng.split(corpus.size() + 100000);
  nn::fit(net, corpus, loss, opt, config.train, fit_rng);
  return std::make_shared<uq::McDropoutEnsemble>(std::move(net),
                                                 config.mc_passes);
}

}  // namespace

AdaptiveLoopResult run_adaptive_loop(const data::ParamSpace& space,
                                     const SimulationFn& simulation,
                                     std::size_t output_dim,
                                     const AdaptiveLoopConfig& config) {
  if (config.initial_samples == 0) {
    throw std::invalid_argument("run_adaptive_loop: need initial samples");
  }
  stats::Rng rng(config.seed);
  AdaptiveLoopResult result;
  result.corpus = data::Dataset(space.dims(), output_dim);

  // All real runs go through the resilient wrapper: transient throws and
  // corrupted outputs are retried, permanent failures skip the point.
  ValidationSpec validation;
  validation.expected_dim = output_dim;
  ResilientSimulation resilient(simulation, config.retry, validation);

  // Observability: per-simulation latency and run counters go to the
  // global registry; training-set wall time feeds the live speedup meter.
  obs::Histogram* sim_seconds = nullptr;
  obs::Histogram* learn_seconds = nullptr;
  obs::Counter* sims_run = nullptr;
  obs::Counter* sims_failed = nullptr;
  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    sim_seconds = &registry.histogram("adaptive_loop.sim_seconds");
    learn_seconds = &registry.histogram("adaptive_loop.learn_seconds");
    sims_run = &registry.counter("adaptive_loop.simulations_run");
    sims_failed = &registry.counter("adaptive_loop.simulations_failed");
  }

  const auto run_point = [&](std::span<const double> point) {
    const auto t0 = std::chrono::steady_clock::now();
    if (auto output = resilient.try_run(point)) {
      const double seconds = seconds_since(t0);
      result.corpus.add(point, *output);
      ++result.simulations_run;
      if (config.speedup_meter) config.speedup_meter->record_train(seconds);
      if (sim_seconds) sim_seconds->record(seconds);
      if (sims_run) sims_run->add();
    } else {
      ++result.simulations_failed;
      if (sims_failed) sims_failed->add();
    }
  };

  const auto train_timed = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    auto surrogate = train_surrogate(result.corpus, space.dims(), output_dim,
                                     config, rng);
    const double seconds = seconds_since(t0);
    if (config.speedup_meter) config.speedup_meter->record_learn(seconds);
    if (learn_seconds) learn_seconds->record(seconds);
    return surrogate;
  };

  // ---- Resume from the newest valid checkpoint, when one exists -------
  std::unordered_set<std::uint64_t> initial_done;
  std::size_t start_round = 0;
  if (config.checkpointer) {
    if (auto snap = config.checkpointer->load_latest()) {
      if (snap->kind != kAdaptiveLoopKind) {
        throw std::runtime_error(
            "run_adaptive_loop: checkpoint kind '" + snap->kind +
            "' belongs to a different campaign driver");
      }
      if (snap->dataset.input_dim() != space.dims() ||
          snap->dataset.target_dim() != output_dim) {
        throw std::runtime_error(
            "run_adaptive_loop: checkpoint dimensions do not match this "
            "loop");
      }
      result.corpus = std::move(snap->dataset);
      result.simulations_run = snap->simulations_run;
      result.simulations_failed = snap->simulations_failed;
      result.converged = !snap->scalars.empty() && snap->scalars[0] != 0.0;
      if (snap->series.size() % 4 != 0) {
        throw std::runtime_error(
            "run_adaptive_loop: checkpoint round history malformed");
      }
      for (std::size_t i = 0; i < snap->series.size(); i += 4) {
        AdaptiveRound record;
        record.round = static_cast<std::size_t>(snap->series[i]);
        record.corpus_size = static_cast<std::size_t>(snap->series[i + 1]);
        record.mean_uncertainty = snap->series[i + 2];
        record.max_uncertainty = snap->series[i + 3];
        result.rounds.push_back(record);
      }
      initial_done.insert(snap->completed_tasks.begin(),
                          snap->completed_tasks.end());
      start_round = static_cast<std::size_t>(snap->progress);
      if (config.speedup_meter) config.speedup_meter->restore(snap->meter);
    }
  }

  const auto snapshot_now = [&](std::uint64_t rounds_completed) {
    ckpt::CampaignState state;
    state.kind = kAdaptiveLoopKind;
    state.progress = rounds_completed;
    state.simulations_run = result.simulations_run;
    state.simulations_failed = result.simulations_failed;
    state.completed_tasks.assign(initial_done.begin(), initial_done.end());
    std::sort(state.completed_tasks.begin(), state.completed_tasks.end());
    state.dataset = result.corpus;
    state.rng_state = ckpt::encode_rng(rng);
    if (result.surrogate) {
      std::ostringstream net;
      nn::save_network(net, result.surrogate->network());
      state.network_text = std::move(net).str();
    }
    state.scalars = {result.converged ? 1.0 : 0.0};
    state.series.reserve(result.rounds.size() * 4);
    for (const AdaptiveRound& record : result.rounds) {
      state.series.push_back(static_cast<double>(record.round));
      state.series.push_back(static_cast<double>(record.corpus_size));
      state.series.push_back(record.mean_uncertainty);
      state.series.push_back(record.max_uncertainty);
    }
    if (config.speedup_meter) state.meter = config.speedup_meter->snapshot();
    (void)config.checkpointer->save(state);
  };

  // Round 0: Latin-hypercube corpus.  The point set is a deterministic
  // function of the seed, so a restart regenerates it and runs only the
  // ids not yet attempted.
  stats::Rng lhs_rng = rng.split(1);
  const auto initial_points =
      data::latin_hypercube_sample(space, config.initial_samples, lhs_rng);
  for (std::size_t i = 0; i < initial_points.size(); ++i) {
    if (initial_done.count(i) != 0) continue;
    run_point(initial_points[i]);
    initial_done.insert(i);
    if (config.checkpointer &&
        config.checkpointer->due(result.simulations_run +
                                 result.simulations_failed)) {
      snapshot_now(0);
    }
  }
  if (result.corpus.size() == 0) {
    throw std::runtime_error(
        "run_adaptive_loop: every initial simulation failed permanently");
  }

  for (std::size_t round = start_round;
       !result.converged && round < config.max_rounds; ++round) {
    result.surrogate = train_timed();

    // Survey uncertainty over a fresh candidate pool.
    stats::Rng pool_rng = rng.split(100 + round);
    const auto pool =
        data::uniform_sample(space, config.candidate_pool, pool_rng);
    const uq::UncertaintySurvey survey =
        uq::survey_uncertainty(*result.surrogate, pool);

    AdaptiveRound record;
    record.round = round;
    record.corpus_size = result.corpus.size();
    record.mean_uncertainty = survey.mean_score;
    record.max_uncertainty = survey.max_score;
    result.rounds.push_back(record);

    if (survey.mean_score <= config.uncertainty_threshold) {
      result.converged = true;
      if (config.checkpointer) snapshot_now(round + 1);
      break;
    }

    // Acquire the most uncertain candidates and simulate them.
    const auto picks = uq::select_most_uncertain(*result.surrogate, pool,
                                                 config.samples_per_round);
    for (std::size_t idx : picks) {
      run_point(pool[idx]);
    }
    // A round is the natural consistency boundary: corpus and history
    // agree here, and resume retrains rather than replaying the round.
    if (config.checkpointer) snapshot_now(round + 1);
  }

  if (!result.surrogate) {
    result.surrogate = train_timed();
  }
  result.fault_stats = resilient.stats();
  // Retraining restores trust: rebase the health monitor's drift reference
  // on what the new surrogate was actually trained on.
  if (config.health_monitor) {
    config.health_monitor->on_retrained(result.corpus.input_matrix());
  }
  return result;
}

}  // namespace le::core
