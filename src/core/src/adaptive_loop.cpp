#include "le/core/adaptive_loop.hpp"

#include <chrono>
#include <stdexcept>

#include "le/nn/loss.hpp"
#include "le/nn/optimizer.hpp"
#include "le/obs/metrics.hpp"
#include "le/obs/speedup_meter.hpp"
#include "le/uq/acquisition.hpp"

namespace le::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Trains a fresh dropout MLP on the corpus and wraps it for MC-dropout.
std::shared_ptr<uq::McDropoutEnsemble> train_surrogate(
    const data::Dataset& corpus, std::size_t input_dim, std::size_t output_dim,
    const AdaptiveLoopConfig& config, stats::Rng& rng) {
  nn::MlpConfig mlp;
  mlp.input_dim = input_dim;
  mlp.hidden = config.hidden;
  mlp.output_dim = output_dim;
  mlp.activation = nn::Activation::kRelu;
  mlp.dropout_rate = config.dropout_rate;
  stats::Rng net_rng = rng.split(corpus.size());
  nn::Network net = nn::make_mlp(mlp, net_rng);
  nn::AdamOptimizer opt(1e-2);
  const nn::MseLoss loss;
  stats::Rng fit_rng = rng.split(corpus.size() + 100000);
  nn::fit(net, corpus, loss, opt, config.train, fit_rng);
  return std::make_shared<uq::McDropoutEnsemble>(std::move(net),
                                                 config.mc_passes);
}

}  // namespace

AdaptiveLoopResult run_adaptive_loop(const data::ParamSpace& space,
                                     const SimulationFn& simulation,
                                     std::size_t output_dim,
                                     const AdaptiveLoopConfig& config) {
  if (config.initial_samples == 0) {
    throw std::invalid_argument("run_adaptive_loop: need initial samples");
  }
  stats::Rng rng(config.seed);
  AdaptiveLoopResult result;
  result.corpus = data::Dataset(space.dims(), output_dim);

  // All real runs go through the resilient wrapper: transient throws and
  // corrupted outputs are retried, permanent failures skip the point.
  ValidationSpec validation;
  validation.expected_dim = output_dim;
  ResilientSimulation resilient(simulation, config.retry, validation);

  // Observability: per-simulation latency and run counters go to the
  // global registry; training-set wall time feeds the live speedup meter.
  obs::Histogram* sim_seconds = nullptr;
  obs::Histogram* learn_seconds = nullptr;
  obs::Counter* sims_run = nullptr;
  obs::Counter* sims_failed = nullptr;
  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    sim_seconds = &registry.histogram("adaptive_loop.sim_seconds");
    learn_seconds = &registry.histogram("adaptive_loop.learn_seconds");
    sims_run = &registry.counter("adaptive_loop.simulations_run");
    sims_failed = &registry.counter("adaptive_loop.simulations_failed");
  }

  const auto run_point = [&](std::span<const double> point) {
    const auto t0 = std::chrono::steady_clock::now();
    if (auto output = resilient.try_run(point)) {
      const double seconds = seconds_since(t0);
      result.corpus.add(point, *output);
      ++result.simulations_run;
      if (config.speedup_meter) config.speedup_meter->record_train(seconds);
      if (sim_seconds) sim_seconds->record(seconds);
      if (sims_run) sims_run->add();
    } else {
      ++result.simulations_failed;
      if (sims_failed) sims_failed->add();
    }
  };

  const auto train_timed = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    auto surrogate = train_surrogate(result.corpus, space.dims(), output_dim,
                                     config, rng);
    const double seconds = seconds_since(t0);
    if (config.speedup_meter) config.speedup_meter->record_learn(seconds);
    if (learn_seconds) learn_seconds->record(seconds);
    return surrogate;
  };

  // Round 0: Latin-hypercube corpus.
  stats::Rng lhs_rng = rng.split(1);
  for (const auto& point :
       data::latin_hypercube_sample(space, config.initial_samples, lhs_rng)) {
    run_point(point);
  }
  if (result.corpus.size() == 0) {
    throw std::runtime_error(
        "run_adaptive_loop: every initial simulation failed permanently");
  }

  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    result.surrogate = train_timed();

    // Survey uncertainty over a fresh candidate pool.
    stats::Rng pool_rng = rng.split(100 + round);
    const auto pool =
        data::uniform_sample(space, config.candidate_pool, pool_rng);
    const uq::UncertaintySurvey survey =
        uq::survey_uncertainty(*result.surrogate, pool);

    AdaptiveRound record;
    record.round = round;
    record.corpus_size = result.corpus.size();
    record.mean_uncertainty = survey.mean_score;
    record.max_uncertainty = survey.max_score;
    result.rounds.push_back(record);

    if (survey.mean_score <= config.uncertainty_threshold) {
      result.converged = true;
      break;
    }

    // Acquire the most uncertain candidates and simulate them.
    const auto picks = uq::select_most_uncertain(*result.surrogate, pool,
                                                 config.samples_per_round);
    for (std::size_t idx : picks) {
      run_point(pool[idx]);
    }
  }

  if (!result.surrogate) {
    result.surrogate = train_timed();
  }
  result.fault_stats = resilient.stats();
  return result;
}

}  // namespace le::core
