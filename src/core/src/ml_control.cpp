#include "le/core/ml_control.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "le/ckpt/campaign_checkpoint.hpp"
#include "le/data/normalizer.hpp"
#include "le/nn/loss.hpp"
#include "le/nn/network.hpp"
#include "le/nn/optimizer.hpp"
#include "le/nn/serialize.hpp"
#include "le/obs/speedup_meter.hpp"

namespace le::core {

namespace {

/// CampaignState::kind written by run_ml_campaign snapshots; a restart
/// refuses to resume a checkpoint of a different driver.
constexpr const char* kMlCampaignKind = "ml_campaign";

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void record_run(CampaignResult& result, const std::vector<double>& input,
                const std::vector<double>& output, double objective_value) {
  ++result.simulations_run;
  if (result.trace.empty() || objective_value < result.best_objective) {
    result.best_objective = objective_value;
    result.best_input = input;
    result.best_output = output;
  }
  result.trace.push_back(result.best_objective);
}

}  // namespace

CampaignResult run_ml_campaign(const data::ParamSpace& space,
                               const SimulationFn& simulation,
                               std::size_t output_dim,
                               const OutputObjective& objective,
                               const CampaignConfig& config) {
  if (config.warmup == 0 || config.warmup > config.simulation_budget) {
    throw std::invalid_argument("run_ml_campaign: bad warmup/budget");
  }
  stats::Rng rng(config.seed);
  CampaignResult result;
  result.evaluated = data::Dataset(space.dims(), output_dim);

  ValidationSpec validation;
  validation.expected_dim = output_dim;
  ResilientSimulation resilient(simulation, config.retry, validation);
  // A permanently failed point still consumed its simulation slot; count
  // it against the budget so faults cannot stall the campaign forever.
  const auto budget_spent = [&] {
    return result.simulations_run + result.simulations_failed;
  };
  const auto run_real = [&](const std::vector<double>& input) {
    const auto t0 = std::chrono::steady_clock::now();
    if (auto output = resilient.try_run(input)) {
      if (config.speedup_meter) {
        config.speedup_meter->record_train(seconds_since(t0));
      }
      result.evaluated.add(input, *output);
      record_run(result, input, *output, objective(*output));
    } else {
      ++result.simulations_failed;
    }
  };

  // Scalers and surrogate outlive the acquisition loop so checkpoints can
  // capture the latest trained model alongside its normalization.
  data::MinMaxNormalizer in_scaler, out_scaler;
  std::optional<nn::Network> surrogate;
  std::unordered_set<std::uint64_t> warmup_done;

  // ---- Resume from the newest valid checkpoint, when one exists -------
  if (config.checkpointer) {
    if (auto snap = config.checkpointer->load_latest()) {
      if (snap->kind != kMlCampaignKind) {
        throw std::runtime_error(
            "run_ml_campaign: checkpoint kind '" + snap->kind +
            "' belongs to a different campaign driver");
      }
      if (snap->dataset.input_dim() != space.dims() ||
          snap->dataset.target_dim() != output_dim) {
        throw std::runtime_error(
            "run_ml_campaign: checkpoint dimensions do not match this "
            "campaign");
      }
      result.evaluated = std::move(snap->dataset);
      result.simulations_run = snap->simulations_run;
      result.simulations_failed = snap->simulations_failed;
      result.trace = snap->series;
      // scalars layout: best_objective, best_input, best_output (present
      // only once a successful run was recorded).
      if (!result.trace.empty()) {
        const std::size_t expected = 1 + space.dims() + output_dim;
        if (snap->scalars.size() != expected) {
          throw std::runtime_error(
              "run_ml_campaign: checkpoint best-point record malformed");
        }
        auto it = snap->scalars.begin();
        result.best_objective = *it++;
        result.best_input.assign(it, it + space.dims());
        it += static_cast<std::ptrdiff_t>(space.dims());
        result.best_output.assign(it, it + output_dim);
      }
      warmup_done.insert(snap->completed_tasks.begin(),
                         snap->completed_tasks.end());
      if (!snap->rng_state.empty()) rng = ckpt::decode_rng(snap->rng_state);
      if (config.speedup_meter) config.speedup_meter->restore(snap->meter);
    }
  }

  const auto snapshot_now = [&] {
    ckpt::CampaignState state;
    state.kind = kMlCampaignKind;
    state.progress = budget_spent();
    state.simulations_run = result.simulations_run;
    state.simulations_failed = result.simulations_failed;
    state.completed_tasks.assign(warmup_done.begin(), warmup_done.end());
    std::sort(state.completed_tasks.begin(), state.completed_tasks.end());
    state.dataset = result.evaluated;
    state.rng_state = ckpt::encode_rng(rng);
    if (surrogate) {
      std::ostringstream net;
      nn::save_network(net, *surrogate);
      state.network_text = std::move(net).str();
      state.input_scale_lo.assign(in_scaler.lo().begin(),
                                  in_scaler.lo().end());
      state.input_scale_hi.assign(in_scaler.hi().begin(),
                                  in_scaler.hi().end());
      state.output_scale_lo.assign(out_scaler.lo().begin(),
                                   out_scaler.lo().end());
      state.output_scale_hi.assign(out_scaler.hi().begin(),
                                   out_scaler.hi().end());
    }
    if (!result.trace.empty()) {
      state.scalars.reserve(1 + result.best_input.size() +
                            result.best_output.size());
      state.scalars.push_back(result.best_objective);
      state.scalars.insert(state.scalars.end(), result.best_input.begin(),
                           result.best_input.end());
      state.scalars.insert(state.scalars.end(), result.best_output.begin(),
                           result.best_output.end());
    }
    state.series = result.trace;
    if (config.speedup_meter) state.meter = config.speedup_meter->snapshot();
    (void)config.checkpointer->save(state);
  };

  // Warmup points are a deterministic function of the seed, so a resumed
  // campaign regenerates the same set and skips the ids already attempted.
  stats::Rng lhs_rng = rng.split(1);
  const auto warmup_points =
      data::latin_hypercube_sample(space, config.warmup, lhs_rng);
  for (std::size_t i = 0; i < warmup_points.size(); ++i) {
    if (warmup_done.count(i) != 0) continue;
    run_real(warmup_points[i]);
    warmup_done.insert(i);
    if (config.checkpointer && config.checkpointer->due(budget_spent())) {
      snapshot_now();
    }
  }

  while (budget_spent() < config.simulation_budget) {
    // Snapshot at the iteration boundary: dataset, best point and RNG are
    // mutually consistent here, so a resumed process replays the exact
    // draw sequence an uninterrupted one would have made.
    if (config.checkpointer && config.checkpointer->due(budget_spent())) {
      snapshot_now();
    }
    // With no successful runs yet there is nothing to train on; explore.
    if (result.evaluated.size() == 0 || rng.uniform() < config.exploration) {
      run_real(data::uniform_sample(space, 1, rng).front());
      continue;
    }
    // Train the surrogate on all runs so far (normalized).
    in_scaler.fit(result.evaluated.input_matrix());
    out_scaler.fit(result.evaluated.target_matrix());
    data::Dataset scaled(space.dims(), output_dim);
    {
      std::vector<double> in(space.dims()), tg(output_dim);
      for (std::size_t i = 0; i < result.evaluated.size(); ++i) {
        auto is = result.evaluated.input(i);
        auto ts = result.evaluated.target(i);
        in.assign(is.begin(), is.end());
        tg.assign(ts.begin(), ts.end());
        in_scaler.transform(in);
        out_scaler.transform(tg);
        scaled.add(in, tg);
      }
    }
    nn::MlpConfig mlp;
    mlp.input_dim = space.dims();
    mlp.hidden = config.hidden;
    mlp.output_dim = output_dim;
    mlp.activation = nn::Activation::kTanh;
    stats::Rng net_rng = rng.split(1000 + result.simulations_run);
    surrogate = nn::make_mlp(mlp, net_rng);
    nn::AdamOptimizer opt(1e-2);
    const nn::MseLoss loss;
    stats::Rng fit_rng = rng.split(2000 + result.simulations_run);
    const auto fit_t0 = std::chrono::steady_clock::now();
    nn::fit(*surrogate, scaled, loss, opt, config.train, fit_rng);
    if (config.speedup_meter) {
      config.speedup_meter->record_learn(seconds_since(fit_t0));
    }
    surrogate->set_training(false);

    // Sweep the pool through the surrogate; run the predicted best.
    // Every candidate prediction is one N_lookup unit of the speedup
    // model; the sweep is metered in bulk (one clock read for the pool).
    std::vector<double> best_candidate;
    double best_pred = std::numeric_limits<double>::infinity();
    std::vector<double> scaled_in(space.dims());
    const auto sweep_t0 = std::chrono::steady_clock::now();
    std::size_t swept = 0;
    for (auto& candidate : data::uniform_sample(space, config.pool, rng)) {
      scaled_in.assign(candidate.begin(), candidate.end());
      in_scaler.transform(scaled_in);
      std::vector<double> pred = surrogate->predict(scaled_in);
      out_scaler.inverse(pred);
      const double value = objective(pred);
      if (value < best_pred) {
        best_pred = value;
        best_candidate = candidate;
      }
      ++swept;
    }
    if (config.speedup_meter) {
      config.speedup_meter->record_lookups(swept, seconds_since(sweep_t0));
    }
    run_real(best_candidate);
  }
  // Final snapshot: a restart of a finished campaign resumes to the result
  // immediately instead of redoing the tail since the last periodic save.
  if (config.checkpointer) snapshot_now();
  result.fault_stats = resilient.stats();
  return result;
}

CampaignResult run_direct_campaign(const data::ParamSpace& space,
                                   const SimulationFn& simulation,
                                   std::size_t output_dim,
                                   const OutputObjective& objective,
                                   const CampaignConfig& config) {
  stats::Rng rng(config.seed);
  CampaignResult result;
  result.evaluated = data::Dataset(space.dims(), output_dim);
  ValidationSpec validation;
  validation.expected_dim = output_dim;
  ResilientSimulation resilient(simulation, config.retry, validation);
  stats::Rng lhs_rng = rng.split(3);
  for (const auto& point : data::latin_hypercube_sample(
           space, config.simulation_budget, lhs_rng)) {
    const auto t0 = std::chrono::steady_clock::now();
    if (auto output = resilient.try_run(point)) {
      // The no-ML arm runs everything sequentially: its per-run wall time
      // is exactly the model's T_seq baseline.
      if (config.speedup_meter) {
        config.speedup_meter->record_seq_baseline(seconds_since(t0));
      }
      result.evaluated.add(point, *output);
      record_run(result, point, *output, objective(*output));
    } else {
      ++result.simulations_failed;
    }
  }
  result.fault_stats = resilient.stats();
  return result;
}

}  // namespace le::core
