#include "le/core/ml_control.hpp"

#include <chrono>
#include <limits>
#include <stdexcept>

#include "le/data/normalizer.hpp"
#include "le/nn/loss.hpp"
#include "le/nn/network.hpp"
#include "le/nn/optimizer.hpp"
#include "le/obs/speedup_meter.hpp"

namespace le::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void record_run(CampaignResult& result, const std::vector<double>& input,
                const std::vector<double>& output, double objective_value) {
  ++result.simulations_run;
  if (result.trace.empty() || objective_value < result.best_objective) {
    result.best_objective = objective_value;
    result.best_input = input;
    result.best_output = output;
  }
  result.trace.push_back(result.best_objective);
}

}  // namespace

CampaignResult run_ml_campaign(const data::ParamSpace& space,
                               const SimulationFn& simulation,
                               std::size_t output_dim,
                               const OutputObjective& objective,
                               const CampaignConfig& config) {
  if (config.warmup == 0 || config.warmup > config.simulation_budget) {
    throw std::invalid_argument("run_ml_campaign: bad warmup/budget");
  }
  stats::Rng rng(config.seed);
  CampaignResult result;
  result.evaluated = data::Dataset(space.dims(), output_dim);

  ValidationSpec validation;
  validation.expected_dim = output_dim;
  ResilientSimulation resilient(simulation, config.retry, validation);
  // A permanently failed point still consumed its simulation slot; count
  // it against the budget so faults cannot stall the campaign forever.
  const auto budget_spent = [&] {
    return result.simulations_run + result.simulations_failed;
  };
  const auto run_real = [&](const std::vector<double>& input) {
    const auto t0 = std::chrono::steady_clock::now();
    if (auto output = resilient.try_run(input)) {
      if (config.speedup_meter) {
        config.speedup_meter->record_train(seconds_since(t0));
      }
      result.evaluated.add(input, *output);
      record_run(result, input, *output, objective(*output));
    } else {
      ++result.simulations_failed;
    }
  };

  stats::Rng lhs_rng = rng.split(1);
  for (const auto& point :
       data::latin_hypercube_sample(space, config.warmup, lhs_rng)) {
    run_real(point);
  }

  while (budget_spent() < config.simulation_budget) {
    // With no successful runs yet there is nothing to train on; explore.
    if (result.evaluated.size() == 0 || rng.uniform() < config.exploration) {
      run_real(data::uniform_sample(space, 1, rng).front());
      continue;
    }
    // Train the surrogate on all runs so far (normalized).
    data::MinMaxNormalizer in_scaler, out_scaler;
    in_scaler.fit(result.evaluated.input_matrix());
    out_scaler.fit(result.evaluated.target_matrix());
    data::Dataset scaled(space.dims(), output_dim);
    {
      std::vector<double> in(space.dims()), tg(output_dim);
      for (std::size_t i = 0; i < result.evaluated.size(); ++i) {
        auto is = result.evaluated.input(i);
        auto ts = result.evaluated.target(i);
        in.assign(is.begin(), is.end());
        tg.assign(ts.begin(), ts.end());
        in_scaler.transform(in);
        out_scaler.transform(tg);
        scaled.add(in, tg);
      }
    }
    nn::MlpConfig mlp;
    mlp.input_dim = space.dims();
    mlp.hidden = config.hidden;
    mlp.output_dim = output_dim;
    mlp.activation = nn::Activation::kTanh;
    stats::Rng net_rng = rng.split(1000 + result.simulations_run);
    nn::Network surrogate = nn::make_mlp(mlp, net_rng);
    nn::AdamOptimizer opt(1e-2);
    const nn::MseLoss loss;
    stats::Rng fit_rng = rng.split(2000 + result.simulations_run);
    const auto fit_t0 = std::chrono::steady_clock::now();
    nn::fit(surrogate, scaled, loss, opt, config.train, fit_rng);
    if (config.speedup_meter) {
      config.speedup_meter->record_learn(seconds_since(fit_t0));
    }
    surrogate.set_training(false);

    // Sweep the pool through the surrogate; run the predicted best.
    // Every candidate prediction is one N_lookup unit of the speedup
    // model; the sweep is metered in bulk (one clock read for the pool).
    std::vector<double> best_candidate;
    double best_pred = std::numeric_limits<double>::infinity();
    std::vector<double> scaled_in(space.dims());
    const auto sweep_t0 = std::chrono::steady_clock::now();
    std::size_t swept = 0;
    for (auto& candidate : data::uniform_sample(space, config.pool, rng)) {
      scaled_in.assign(candidate.begin(), candidate.end());
      in_scaler.transform(scaled_in);
      std::vector<double> pred = surrogate.predict(scaled_in);
      out_scaler.inverse(pred);
      const double value = objective(pred);
      if (value < best_pred) {
        best_pred = value;
        best_candidate = candidate;
      }
      ++swept;
    }
    if (config.speedup_meter) {
      config.speedup_meter->record_lookups(swept, seconds_since(sweep_t0));
    }
    run_real(best_candidate);
  }
  result.fault_stats = resilient.stats();
  return result;
}

CampaignResult run_direct_campaign(const data::ParamSpace& space,
                                   const SimulationFn& simulation,
                                   std::size_t output_dim,
                                   const OutputObjective& objective,
                                   const CampaignConfig& config) {
  stats::Rng rng(config.seed);
  CampaignResult result;
  result.evaluated = data::Dataset(space.dims(), output_dim);
  ValidationSpec validation;
  validation.expected_dim = output_dim;
  ResilientSimulation resilient(simulation, config.retry, validation);
  stats::Rng lhs_rng = rng.split(3);
  for (const auto& point : data::latin_hypercube_sample(
           space, config.simulation_budget, lhs_rng)) {
    const auto t0 = std::chrono::steady_clock::now();
    if (auto output = resilient.try_run(point)) {
      // The no-ML arm runs everything sequentially: its per-run wall time
      // is exactly the model's T_seq baseline.
      if (config.speedup_meter) {
        config.speedup_meter->record_seq_baseline(seconds_since(t0));
      }
      result.evaluated.add(point, *output);
      record_run(result, point, *output, objective(*output));
    } else {
      ++result.simulations_failed;
    }
  }
  result.fault_stats = resilient.stats();
  return result;
}

}  // namespace le::core
