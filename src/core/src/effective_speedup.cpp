#include "le/core/effective_speedup.hpp"

#include <stdexcept>

namespace le::core {

double effective_speedup(const SpeedupTimes& times, std::size_t n_lookup,
                         std::size_t n_train) {
  if (n_lookup + n_train == 0) {
    throw std::invalid_argument("effective_speedup: empty campaign");
  }
  const double numerator =
      times.t_seq * static_cast<double>(n_lookup + n_train);
  const double denominator =
      times.t_lookup * static_cast<double>(n_lookup) +
      (times.t_train + times.t_learn) * static_cast<double>(n_train);
  if (denominator <= 0.0) {
    throw std::invalid_argument("effective_speedup: non-positive denominator");
  }
  return numerator / denominator;
}

double no_ml_limit(const SpeedupTimes& times) {
  if (times.t_train <= 0.0) {
    throw std::invalid_argument("no_ml_limit: t_train must be > 0");
  }
  return times.t_seq / times.t_train;
}

double lookup_limit(const SpeedupTimes& times) {
  if (times.t_lookup <= 0.0) {
    throw std::invalid_argument("lookup_limit: t_lookup must be > 0");
  }
  return times.t_seq / times.t_lookup;
}

std::vector<SpeedupRow> sweep_lookups(const SpeedupTimes& times,
                                      std::size_t n_train,
                                      const std::vector<std::size_t>& n_lookups) {
  std::vector<SpeedupRow> rows;
  rows.reserve(n_lookups.size());
  const double limit = lookup_limit(times);
  for (std::size_t n_lookup : n_lookups) {
    SpeedupRow row;
    row.n_lookup = n_lookup;
    row.n_train = n_train;
    row.speedup = effective_speedup(times, n_lookup, n_train);
    row.fraction_of_limit = row.speedup / limit;
    rows.push_back(row);
  }
  return rows;
}

double ratio_to_reach_fraction(const SpeedupTimes& times, double fraction,
                               double max_ratio) {
  if (fraction <= 0.0 || fraction >= 1.0) {
    throw std::invalid_argument("ratio_to_reach_fraction: fraction in (0,1)");
  }
  const double target = fraction * lookup_limit(times);
  const std::size_t n_train = 1;
  double ratio = 1.0;
  while (ratio < max_ratio) {
    const auto n_lookup = static_cast<std::size_t>(ratio);
    if (effective_speedup(times, n_lookup, n_train) >= target) return ratio;
    ratio *= 2.0;
  }
  return max_ratio;
}

}  // namespace le::core
