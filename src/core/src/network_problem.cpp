#include "le/core/network_problem.hpp"

#include <atomic>
#include <stdexcept>
#include <unordered_map>

namespace le::core {

namespace {
std::atomic<std::uint64_t> next_instance_id{1};
}  // namespace

NetworkSgdProblem::NetworkSgdProblem(nn::Network prototype,
                                     data::Dataset dataset)
    : instance_id_(next_instance_id.fetch_add(1)),
      prototype_(std::move(prototype)), dataset_(std::move(dataset)) {
  if (dataset_.empty()) {
    throw std::invalid_argument("NetworkSgdProblem: empty dataset");
  }
  if (prototype_.input_dim() != dataset_.input_dim() ||
      prototype_.output_dim() != dataset_.target_dim()) {
    throw std::invalid_argument("NetworkSgdProblem: network/dataset mismatch");
  }
  prototype_.set_training(true);
  initial_weights_ = prototype_.get_weights();
  dim_ = initial_weights_.size();
}

nn::Network& NetworkSgdProblem::local_network() const {
  // One clone per (thread, problem-instance) pair.  The map lives per
  // thread, so no locking is needed; entries die with the thread.
  thread_local std::unordered_map<std::uint64_t, nn::Network> cache;
  auto it = cache.find(instance_id_);
  if (it == cache.end()) {
    it = cache.emplace(instance_id_, prototype_.clone()).first;
    it->second.set_training(true);
  }
  return it->second;
}

double NetworkSgdProblem::loss_and_grad(std::span<const double> w,
                                        std::span<const std::size_t> batch,
                                        std::span<double> grad) const {
  if (w.size() != dim_ || grad.size() != dim_) {
    throw std::invalid_argument("NetworkSgdProblem: dimension mismatch");
  }
  nn::Network& net = local_network();
  net.set_weights(w);
  net.zero_grad();

  tensor::Matrix x(batch.size(), dataset_.input_dim());
  tensor::Matrix y(batch.size(), dataset_.target_dim());
  for (std::size_t r = 0; r < batch.size(); ++r) {
    auto in = dataset_.input(batch[r]);
    auto tg = dataset_.target(batch[r]);
    std::copy(in.begin(), in.end(), x.row(r).begin());
    std::copy(tg.begin(), tg.end(), y.row(r).begin());
  }
  const tensor::Matrix pred = net.forward(x);
  const nn::LossResult lr = loss_.evaluate(pred, y);
  net.backward(lr.grad);

  std::size_t offset = 0;
  for (const auto& view : net.parameters()) {
    for (std::size_t i = 0; i < view.grads.size(); ++i) {
      grad[offset + i] = view.grads[i];
    }
    offset += view.grads.size();
  }
  return lr.value;
}

double NetworkSgdProblem::full_loss(std::span<const double> w) const {
  nn::Network& net = local_network();
  net.set_weights(w);
  net.set_training(false);
  const tensor::Matrix pred = net.forward(dataset_.input_matrix());
  const double value = loss_.evaluate(pred, dataset_.target_matrix()).value;
  net.set_training(true);
  return value;
}

}  // namespace le::core
