/// @file
/// Open-loop load generation: Poisson arrivals, bursts, hot-key skew.
///
/// Closed-loop load generators (issue the next request when the previous
/// one returns) suffer coordinated omission: when the server slows down,
/// the generator slows down with it, and the measured latency distribution
/// silently excludes exactly the requests that would have suffered.  Real
/// users do not wait for each other.  LoadGenerator is therefore strictly
/// open-loop: the whole arrival schedule — timestamps and keys — is drawn
/// up front from a seeded stream, independent of anything the server does.
/// A replay driver submits each request at its scheduled time (or as close
/// as the host clock allows) no matter how the previous ones fared.
///
/// The process models what serving tiers actually see: Poisson arrivals at
/// a base rate, multiplicative rate bursts on a fixed period (flash
/// crowds), and hot-key skew (a small set of popular state points asked
/// over and over — what makes the lookup cache earn its keep under
/// overload).  Deterministic: same config, same schedule.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "le/serve/overload.hpp"

namespace le::serve {

struct LoadGenConfig {
  /// Base arrival rate (requests/second); the Poisson intensity outside
  /// bursts.
  double rate_qps = 1000.0;
  /// Schedule length in (virtual) seconds.
  double duration_seconds = 1.0;
  /// Rate multiplier while a burst is active (1 = no bursts).
  double burst_factor = 1.0;
  /// Seconds from one burst start to the next (0 disables bursts).
  double burst_period = 0.0;
  /// Seconds each burst lasts (must be < burst_period when enabled).
  double burst_length = 0.0;
  /// Number of distinct request keys (state points) the schedule draws
  /// from; the replay driver maps a key to an input vector.
  std::size_t key_pool = 1024;
  /// Size of the hot set (keys [0, hot_keys)); 0 disables skew.
  std::size_t hot_keys = 0;
  /// Probability an arrival asks a hot key.
  double hot_fraction = 0.0;
  std::uint64_t seed = 42;
};

/// One scheduled request: when it arrives and which key it asks.
struct Arrival {
  double t = 0.0;       ///< seconds from schedule start
  std::size_t key = 0;  ///< index into the replay driver's key pool
};

/// Maps a schedule's virtual timeline onto the serving clock, anchored to
/// ONE caller-supplied epoch.
///
/// A replay driver must never derive a request's deadline from the
/// wall-clock instant it happens to call submit(): when submission lags
/// behind schedule — a slow driver thread, or the extra RTT of pushing the
/// same schedule at a *remote* shard worker — a now()-relative deadline
/// silently shifts later, so the laggard replay grants its requests more
/// budget and the two runs measure different expiry semantics on identical
/// schedules.  ReplayClock pins both the submit target and the deadline to
/// the arrival's *scheduled* time against an explicit epoch:
///
///   submit_time(a)        = epoch + a.t
///   deadline(a, budget)   = submit_time(a) + budget
///
/// so a request that reaches the server late has simply spent part of its
/// budget in flight — exactly what a real client's deadline does — and two
/// replays of one schedule agree on every expiry no matter how far either
/// driver fell behind.  bench_overload, the sharded-service replay (E18)
/// and the overload example all build their deadlines through this.
class ReplayClock {
 public:
  using Clock = std::chrono::steady_clock;

  explicit ReplayClock(Clock::time_point epoch) noexcept : epoch_(epoch) {}

  [[nodiscard]] Clock::time_point epoch() const noexcept { return epoch_; }

  /// The instant `a` is scheduled to be submitted.
  [[nodiscard]] Clock::time_point submit_time(const Arrival& a) const noexcept {
    return epoch_ + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(a.t));
  }

  /// The absolute deadline of `a` under a per-request `budget_seconds`,
  /// anchored to the scheduled arrival (NOT to when submit() runs).
  [[nodiscard]] Deadline deadline(const Arrival& a,
                                  double budget_seconds) const noexcept {
    return submit_time(a) + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(budget_seconds));
  }

 private:
  Clock::time_point epoch_;
};

class LoadGenerator {
 public:
  explicit LoadGenerator(const LoadGenConfig& config);

  /// Draws the full open-loop schedule: arrivals sorted by time, keys
  /// skewed per config.  Pure function of the config (seed included).
  [[nodiscard]] std::vector<Arrival> schedule() const;

  /// True when `t` falls inside a burst window of this config.
  [[nodiscard]] bool in_burst(double t) const noexcept;

  [[nodiscard]] const LoadGenConfig& config() const noexcept {
    return config_;
  }

 private:
  LoadGenConfig config_;
};

}  // namespace le::serve
