/// @file
/// Request coalescing for the surrogate hot path.
///
/// Worker threads of a serving campaign ask for one prediction at a time,
/// but a neural forward pass costs nearly the same for one row as for
/// thirty: layer dispatch, buffer setup and cache traffic amortize over the
/// batch while the GEMMs grow only linearly.  BatchQueue turns concurrent
/// single-sample submissions into one (batch x D) matrix-matrix forward:
/// requests queue up, a dedicated serving thread waits a bounded interval
/// for the batch to fill (or dispatches immediately when it does), runs the
/// batched forward, and resolves every submitter's future from its row of
/// the result.  bench_serving (E13) measures the throughput gain.
///
/// Overload robustness (DESIGN.md section 14, bench_overload E17): the
/// queue is the admission edge of the serving tier.
///   - submit() after stop() fails fast with QueueStoppedError — the
///     documented contract; a stopped queue never blocks and never hands
///     out a future it will not resolve.
///   - An attached AdmissionController bounds queue depth and concurrency
///     and sheds arrivals when the measured queue wait stands above target
///     (submit() throws OverloadShedError); the queue feeds it every
///     request's sojourn.
///   - Per-request deadlines: submit(input, deadline) sheds on arrival if
///     already expired, and expired requests are shed *before* the batched
///     forward — their futures fail with DeadlineExceededError and no GEMM
///     is ever burned on a dead request (stats().dead_request_forwards
///     counts violations; it must stay 0).
///   - A shed-aware forward (ShedAwareForwardFn) can refuse individual
///     rows — the dispatcher's degradation ladder shedding cache misses —
///     and those futures fail with the row's ShedError while the rest of
///     the batch resolves normally.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "le/obs/quantile.hpp"
#include "le/serve/overload.hpp"
#include "le/tensor/matrix.hpp"

namespace le::obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace le::obs

namespace le::serve {

class AdmissionController;
class DegradationLadder;

/// The batched model: rows in, rows out (same row count, any output
/// width).  Called from the serving thread only, so a non-thread-safe
/// nn::Network::predict_batch bound here needs no external locking.
using BatchForwardFn =
    std::function<tensor::Matrix(const tensor::Matrix&)>;

/// Shed-aware batched model: receives each live row's deadline and may
/// mark individual rows as shed (writing a non-kNone reason into `shed`)
/// instead of answering them — the degradation ladder's cache-miss shed
/// and the dispatcher's own deadline enforcement surface here.  Marked
/// rows' output values are ignored; their futures fail with the matching
/// ShedError.  Row count of the returned matrix must equal inputs.rows().
using ShedAwareForwardFn = std::function<tensor::Matrix(
    const tensor::Matrix& inputs, std::span<const Deadline> deadlines,
    std::span<ShedReason> shed)>;

struct BatchQueueConfig {
  /// Rows per dispatched forward; a full batch dispatches immediately.
  std::size_t max_batch = 64;
  /// How long a partially filled batch waits for more arrivals before it
  /// is dispatched anyway — the tail-latency bound of coalescing.
  std::chrono::microseconds max_wait{200};
  /// Input width every submission must match.
  std::size_t input_dim = 1;
};

struct BatchQueueStats {
  std::uint64_t queries = 0;
  std::uint64_t batches = 0;
  std::size_t max_batch_observed = 0;
  /// Requests shed because their deadline expired — on arrival (submit
  /// threw DeadlineExceededError) or while queued (the future failed with
  /// it before the forward).
  std::uint64_t expired = 0;
  /// Requests shed by admission control at submit or by the shed-aware
  /// forward's per-row marks (deadline expiries are counted in `expired`,
  /// not here).
  std::uint64_t shed = 0;
  /// Rows whose deadline had already passed when the batched forward
  /// started, yet were forwarded anyway.  The pre-forward shed pass keeps
  /// this at exactly 0 (a request can only land here by expiring in the
  /// nanoseconds between that pass and the forward call); bench_overload
  /// (E17) asserts it.
  std::uint64_t dead_request_forwards = 0;
  /// Queue-wait (submit to dispatch) p50/p95/p99 in seconds, from a
  /// P-squared sketch — the latency cost of coalescing, per request.
  obs::QuantileSketch::Quantiles wait;

  [[nodiscard]] double mean_batch() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(queries) /
                              static_cast<double>(batches);
  }
};

class BatchQueue {
 public:
  BatchQueue(BatchForwardFn forward, const BatchQueueConfig& config);
  /// Shed-aware variant: the forward sees deadlines and may shed rows.
  BatchQueue(ShedAwareForwardFn forward, const BatchQueueConfig& config);

  /// Drains every pending request through the model, then joins the
  /// serving thread.
  ~BatchQueue();

  BatchQueue(const BatchQueue&) = delete;
  BatchQueue& operator=(const BatchQueue&) = delete;

  /// Enqueues one query; the future resolves with the model's output row
  /// for it (or the exception the batched forward threw, or a ShedError
  /// when the request was shed while queued).  Thread-safe.
  ///
  /// Fail-fast contract — submit() throws instead of enqueueing when the
  /// request cannot possibly be served:
  ///   - QueueStoppedError after stop() (documented; previously this was
  ///     an unspecified std::runtime_error);
  ///   - DeadlineExceededError when `deadline` has already passed;
  ///   - OverloadShedError when the attached AdmissionController refuses
  ///     the arrival (queue full / concurrency limit / sojourn shedding).
  [[nodiscard]] std::future<std::vector<double>> submit(
      std::span<const double> input, Deadline deadline = std::nullopt);

  /// Synchronous convenience: submit and wait.
  [[nodiscard]] std::vector<double> query(std::span<const double> input,
                                          Deadline deadline = std::nullopt);

  /// Stops accepting new submissions, serves what is queued, and joins.
  /// Idempotent AND safe to call from multiple threads concurrently (the
  /// join is serialized internally); the destructor calls it.  Every
  /// future handed out before stop() is resolved — with its row, the
  /// exception its batch's forward threw, or its ShedError — before
  /// stop() returns.  After stop(), submit() throws QueueStoppedError.
  void stop();

  /// Attaches admission control: submit() consults it per arrival and the
  /// serving thread feeds it every request's measured queue wait.  Wire-up
  /// time only — set before traffic starts, not concurrently with
  /// submit().  The controller may be shared with other edges.
  void set_admission(std::shared_ptr<AdmissionController> admission);

  /// Attaches a degradation ladder as a pressure listener: every
  /// request's queue wait is recorded into it, so standing queue delay
  /// walks the ladder down.  Wire-up time only.
  void set_degradation(std::shared_ptr<DegradationLadder> ladder);

  [[nodiscard]] BatchQueueStats stats() const;
  [[nodiscard]] const BatchQueueConfig& config() const noexcept {
    return config_;
  }
  /// Requests currently waiting (diagnostic; racy by nature).
  [[nodiscard]] std::size_t depth() const;

  /// Publishes queries/batches/shed/expired/dead_request_forwards
  /// counters, a batch-fill gauge and a batch-seconds histogram under
  /// "<prefix>.*".
  void enable_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "serve.batch_queue");

 private:
  struct Pending {
    std::vector<double> input;
    std::promise<std::vector<double>> promise;
    /// When submit() enqueued the request; dispatch() turns it into the
    /// per-request queue wait.
    std::chrono::steady_clock::time_point enqueued;
    Deadline deadline;
  };

  void serve_loop();
  void dispatch(std::vector<Pending> batch);
  /// Books one request's queue wait into the sketch, the admission
  /// controller and the degradation ladder.
  void record_wait(double seconds);

  ShedAwareForwardFn forward_;
  BatchQueueConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> pending_;
  bool stopping_ = false;
  /// Serializes the join in stop(): joinable()+join() on one std::thread
  /// from two racing stop() calls is undefined behavior (both can observe
  /// joinable() before either joins).  Never held while requests are
  /// served, so it cannot stall the serving path.
  std::mutex stop_mutex_;

  std::shared_ptr<AdmissionController> admission_;
  std::shared_ptr<DegradationLadder> ladder_;

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::size_t> max_batch_observed_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> dead_request_forwards_{0};
  obs::QuantileSketch wait_sketch_;

  /// Metric handles; all null until enable_metrics().
  obs::Counter* metric_queries_ = nullptr;
  obs::Counter* metric_batches_ = nullptr;
  obs::Counter* metric_expired_ = nullptr;
  obs::Counter* metric_shed_ = nullptr;
  obs::Counter* metric_dead_forwards_ = nullptr;
  obs::Gauge* metric_batch_fill_ = nullptr;
  obs::Histogram* metric_batch_seconds_ = nullptr;

  std::thread server_;  // last member: starts after everything else is built
};

}  // namespace le::serve
