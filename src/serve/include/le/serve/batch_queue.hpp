/// @file
/// Request coalescing for the surrogate hot path.
///
/// Worker threads of a serving campaign ask for one prediction at a time,
/// but a neural forward pass costs nearly the same for one row as for
/// thirty: layer dispatch, buffer setup and cache traffic amortize over the
/// batch while the GEMMs grow only linearly.  BatchQueue turns concurrent
/// single-sample submissions into one (batch x D) matrix-matrix forward:
/// requests queue up, a dedicated serving thread waits a bounded interval
/// for the batch to fill (or dispatches immediately when it does), runs the
/// batched forward, and resolves every submitter's future from its row of
/// the result.  bench_serving (E13) measures the throughput gain.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "le/obs/quantile.hpp"
#include "le/tensor/matrix.hpp"

namespace le::obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace le::obs

namespace le::serve {

/// The batched model: rows in, rows out (same row count, any output
/// width).  Called from the serving thread only, so a non-thread-safe
/// nn::Network::predict_batch bound here needs no external locking.
using BatchForwardFn =
    std::function<tensor::Matrix(const tensor::Matrix&)>;

struct BatchQueueConfig {
  /// Rows per dispatched forward; a full batch dispatches immediately.
  std::size_t max_batch = 64;
  /// How long a partially filled batch waits for more arrivals before it
  /// is dispatched anyway — the tail-latency bound of coalescing.
  std::chrono::microseconds max_wait{200};
  /// Input width every submission must match.
  std::size_t input_dim = 1;
};

struct BatchQueueStats {
  std::uint64_t queries = 0;
  std::uint64_t batches = 0;
  std::size_t max_batch_observed = 0;
  /// Queue-wait (submit to dispatch) p50/p95/p99 in seconds, from a
  /// P-squared sketch — the latency cost of coalescing, per request.
  obs::QuantileSketch::Quantiles wait;

  [[nodiscard]] double mean_batch() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(queries) /
                              static_cast<double>(batches);
  }
};

class BatchQueue {
 public:
  BatchQueue(BatchForwardFn forward, const BatchQueueConfig& config);

  /// Drains every pending request through the model, then joins the
  /// serving thread.
  ~BatchQueue();

  BatchQueue(const BatchQueue&) = delete;
  BatchQueue& operator=(const BatchQueue&) = delete;

  /// Enqueues one query; the future resolves with the model's output row
  /// for it (or the exception the batched forward threw).  Thread-safe.
  [[nodiscard]] std::future<std::vector<double>> submit(
      std::span<const double> input);

  /// Synchronous convenience: submit and wait.
  [[nodiscard]] std::vector<double> query(std::span<const double> input);

  /// Stops accepting new submissions, serves what is queued, and joins.
  /// Idempotent AND safe to call from multiple threads concurrently (the
  /// join is serialized internally); the destructor calls it.  Every
  /// future handed out before stop() is resolved — with its row or with
  /// the exception its batch's forward threw — before stop() returns.
  void stop();

  [[nodiscard]] BatchQueueStats stats() const;
  [[nodiscard]] const BatchQueueConfig& config() const noexcept {
    return config_;
  }

  /// Publishes queries/batches counters, a batch-fill gauge and a
  /// batch-seconds histogram under "<prefix>.*".
  void enable_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "serve.batch_queue");

 private:
  struct Pending {
    std::vector<double> input;
    std::promise<std::vector<double>> promise;
    /// When submit() enqueued the request; dispatch() turns it into the
    /// per-request queue wait.
    std::chrono::steady_clock::time_point enqueued;
  };

  void serve_loop();
  void dispatch(std::vector<Pending> batch);

  BatchForwardFn forward_;
  BatchQueueConfig config_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> pending_;
  bool stopping_ = false;
  /// Serializes the join in stop(): joinable()+join() on one std::thread
  /// from two racing stop() calls is undefined behavior (both can observe
  /// joinable() before either joins).  Never held while requests are
  /// served, so it cannot stall the serving path.
  std::mutex stop_mutex_;

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::size_t> max_batch_observed_{0};
  obs::QuantileSketch wait_sketch_;

  /// Metric handles; all null until enable_metrics().
  obs::Counter* metric_queries_ = nullptr;
  obs::Counter* metric_batches_ = nullptr;
  obs::Gauge* metric_batch_fill_ = nullptr;
  obs::Histogram* metric_batch_seconds_ = nullptr;

  std::thread server_;  // last member: starts after everything else is built
};

}  // namespace le::serve
