/// @file
/// The graceful-degradation ladder: a brownout policy over the serving
/// tiers this repo already owns.
///
/// The taxonomy paper (arXiv:1909.13340) classifies ML+HPC integrations as
/// a spectrum of fidelities; this repo has grown four ways to answer a
/// query, ordered by cost: the learned-lookup cache (O(1)), the int8
/// quantized surrogate (PR 7), the full fp surrogate, and the real
/// simulation.  Under overload that ordering IS the brownout policy: as
/// measured latency rises, walk DOWN the cost ladder deliberately —
///
///   kFull      -> every tier available (fp surrogate, sim fallback)
///   kQuantized -> serve the cheaper quantized surrogate; no sim fallback
///   kCacheOnly -> serve remembered answers only; misses are shed
///   kShedAll   -> refuse everything until pressure releases
///
/// — instead of letting the queue fall off a cliff.  The controller is
/// quantile-driven with hysteresis: a level engages the moment the
/// windowed latency quantile crosses its threshold (jumping multiple
/// levels on a severe spike), and releases one level at a time only after
/// `release_windows` consecutive evaluations below `release_fraction` of
/// the engage threshold — so the ladder does not flap at a boundary.
///
/// The ladder only measures and decides; SurrogateDispatcher enforces the
/// level and attributes every degraded or shed answer honestly (DESIGN.md
/// section 14).  Pressure samples come from wherever the overload actually
/// shows: serve::BatchQueue feeds queue waits, the dispatcher feeds answer
/// latencies.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "le/obs/quantile.hpp"

namespace le::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace le::obs

namespace le::serve {

/// Service levels, ordered by increasing degradation.
enum class ServiceLevel : int {
  kFull = 0,       ///< all tiers available
  kQuantized = 1,  ///< serve the registered degraded (quantized) surrogate
  kCacheOnly = 2,  ///< cache hits only; misses shed
  kShedAll = 3,    ///< refuse everything
};

/// Human-readable level label ("full", "quantized", ...).
[[nodiscard]] constexpr const char* service_level_name(
    ServiceLevel level) noexcept {
  switch (level) {
    case ServiceLevel::kFull: return "full";
    case ServiceLevel::kQuantized: return "quantized";
    case ServiceLevel::kCacheOnly: return "cache_only";
    case ServiceLevel::kShedAll: return "shed_all";
  }
  return "unknown";
}

struct DegradationConfig {
  /// Pressure samples per controller evaluation (and the sliding-window
  /// size the quantile is computed over).
  std::size_t window = 64;
  /// Which quantile of the window drives the ladder (default p95).
  double quantile = 0.95;
  /// Engage thresholds in seconds for kQuantized / kCacheOnly / kShedAll:
  /// level L engages while the window quantile exceeds engage[L-1].
  /// Must be strictly increasing.
  std::array<double, 3> engage{2e-3, 8e-3, 20e-3};
  /// Level L releases only when the quantile falls below
  /// engage[L-1] * release_fraction (hysteresis gap).
  double release_fraction = 0.5;
  /// Consecutive below-release evaluations required before stepping down
  /// one level (dwell — a single calm window is not recovery).
  int release_windows = 2;
};

struct DegradationStats {
  ServiceLevel level = ServiceLevel::kFull;
  std::uint64_t evaluations = 0;
  std::uint64_t engages = 0;   ///< upward transitions (any number of steps)
  std::uint64_t releases = 0;  ///< downward single-step transitions
  double last_quantile = 0.0;  ///< latest evaluated window quantile (s)
};

class DegradationLadder {
 public:
  explicit DegradationLadder(const DegradationConfig& config);

  /// Feeds one pressure sample (seconds of queue wait or answer latency);
  /// every `window`-th sample evaluates the ladder.  Thread-safe.
  void record(double seconds);

  /// The current level, readable lock-free from any serving path.
  [[nodiscard]] ServiceLevel level() const noexcept {
    return static_cast<ServiceLevel>(
        level_.load(std::memory_order_relaxed));
  }

  /// External escalation: raises the level to at least `floor` immediately
  /// (counted as an engage; no-op when already at or past it).  This is
  /// how alerting feeds the ladder — an obs::SloTracker burn-rate alert
  /// browns the service out deliberately before the error budget is gone,
  /// without waiting for the latency quantile to cross a threshold.  The
  /// ladder releases from an escalated level through the normal
  /// hysteresis path.
  void engage_at_least(ServiceLevel floor);

  [[nodiscard]] DegradationStats stats() const;
  [[nodiscard]] const DegradationConfig& config() const noexcept {
    return config_;
  }

  /// Publishes the level gauge, transition counters and the evaluated
  /// quantile gauge under "<prefix>.*".
  void enable_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "serve.overload");

 private:
  void evaluate_locked();

  DegradationConfig config_;
  std::atomic<int> level_{0};

  mutable std::mutex mutex_;
  obs::WindowedQuantile window_;
  std::size_t samples_since_eval_ = 0;
  int calm_evals_ = 0;  ///< consecutive below-release evaluations
  DegradationStats stats_;

  /// Metric handles; all null until enable_metrics().
  obs::Gauge* metric_level_ = nullptr;
  obs::Gauge* metric_quantile_ = nullptr;
  obs::Counter* metric_engages_ = nullptr;
  obs::Counter* metric_releases_ = nullptr;
};

}  // namespace le::serve
