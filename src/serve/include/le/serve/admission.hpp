/// @file
/// Admission control for the serving edge: bounded queue depth, a
/// concurrency token limit, and a CoDel-style sojourn-time controller.
///
/// An unbounded queue converts overload into unbounded latency: once the
/// arrival rate exceeds capacity, queue wait diverges and every request —
/// not just the excess — misses its deadline.  AdmissionController turns
/// the excess away at the door instead.  Three independent gates, checked
/// in order:
///
///   1. queue depth — a hard bound on how many requests may wait;
///   2. concurrency tokens — a bound on requests admitted but not yet
///      resolved (backpressure across the whole pipeline, not just the
///      queue);
///   3. sojourn time — the CoDel insight (Nichols & Jacobson, CACM 2012)
///      that *standing* queue delay, not queue length, is the overload
///      signal.  When the measured queue wait stays above `target_sojourn`
///      for a full `interval`, the controller starts shedding arrivals,
///      admitting periodic probes (spaced by interval/sqrt(n), the CoDel
///      control law) so it keeps measuring; it stops the moment a sojourn
///      below target is observed.
///
/// The controller is passive and clock-explicit: callers pass `now`, which
/// makes every transition deterministic in tests.  serve::BatchQueue
/// consults try_admit() at submit and feeds record_sojourn() at dispatch.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "le/serve/overload.hpp"

namespace le::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace le::obs

namespace le::serve {

struct AdmissionConfig {
  /// Maximum requests waiting in the queue; arrivals beyond it are shed
  /// with ShedReason::kQueueFull.  0 disables the depth gate.
  std::size_t max_queue_depth = 1024;
  /// Maximum admitted-but-unresolved requests (tokens); arrivals beyond it
  /// are shed with ShedReason::kConcurrency.  0 disables the token gate.
  std::size_t max_concurrent = 0;
  /// Queue-wait target of the sojourn controller: sustained waits above
  /// this are treated as overload.  <= 0 disables the sojourn gate.
  std::chrono::microseconds target_sojourn{5000};
  /// How long the measured sojourn must stay above target before shedding
  /// starts, and the base spacing of probe admissions while shedding.
  std::chrono::microseconds interval{100000};
};

struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_concurrency = 0;
  std::uint64_t shed_overload = 0;   ///< sojourn-controller sheds
  std::uint64_t probes = 0;          ///< arrivals admitted while shedding
  std::size_t in_flight = 0;         ///< tokens currently held
  bool shedding = false;             ///< sojourn controller engaged

  [[nodiscard]] std::uint64_t shed_total() const noexcept {
    return shed_queue_full + shed_concurrency + shed_overload;
  }
};

class AdmissionController {
 public:
  using Clock = std::chrono::steady_clock;

  explicit AdmissionController(const AdmissionConfig& config);

  /// Decides one arrival given the current queue depth.  kNone admits (and
  /// takes a concurrency token the caller must release()); any other value
  /// is the shed reason.  Thread-safe.
  [[nodiscard]] ShedReason try_admit(std::size_t queue_depth,
                                     Clock::time_point now = Clock::now());

  /// Returns `n` concurrency tokens — call once per admitted request when
  /// its future resolves (served, failed or shed downstream).
  void release(std::size_t n = 1) noexcept;

  /// Feeds one measured queue wait (submit -> dispatch, seconds) into the
  /// sojourn controller.  Thread-safe.
  void record_sojourn(double seconds, Clock::time_point now = Clock::now());

  /// True while the sojourn controller is in its shedding state.
  [[nodiscard]] bool shedding() const;

  [[nodiscard]] AdmissionStats stats() const;
  [[nodiscard]] const AdmissionConfig& config() const noexcept {
    return config_;
  }

  /// Publishes admitted/shed counters and in-flight/shedding gauges under
  /// "<prefix>.*".
  void enable_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "serve.admission");

 private:
  AdmissionConfig config_;

  mutable std::mutex mutex_;
  AdmissionStats stats_;
  /// When the sojourn first stayed above target (unset while below).
  bool above_target_ = false;
  Clock::time_point above_since_{};
  bool shedding_ = false;
  Clock::time_point next_probe_{};
  std::uint64_t probe_count_ = 0;  ///< probes since shedding engaged

  /// Metric handles; all null until enable_metrics().
  obs::Counter* metric_admitted_ = nullptr;
  obs::Counter* metric_shed_queue_full_ = nullptr;
  obs::Counter* metric_shed_concurrency_ = nullptr;
  obs::Counter* metric_shed_overload_ = nullptr;
  obs::Gauge* metric_in_flight_ = nullptr;
  obs::Gauge* metric_shedding_ = nullptr;
};

}  // namespace le::serve
