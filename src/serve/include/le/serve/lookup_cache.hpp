/// @file
/// The paper's "learned lookup table" made literal (Section III-D).
///
/// The effective-speedup equation rewards driving T_lookup toward zero;
/// sweeps and autotune grids re-ask the same state points over and over, so
/// the cheapest lookup of all is remembering an answer the surrogate already
/// produced.  LookupCache is a sharded, mutex-striped LRU keyed by quantized
/// input vectors: inputs that agree to within `resolution` in every
/// component share one entry, repeated queries hit in O(1) with no forward
/// pass at all, and stripe-level locking keeps concurrent serving threads
/// out of each other's way.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace le::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace le::obs

namespace le::serve {

struct LookupCacheConfig {
  /// Total entries across all shards; the per-shard bound is
  /// ceil(capacity / shards), enforced independently per shard.
  std::size_t capacity = 4096;
  /// Mutex stripes.  Each input hashes to one shard, so concurrent
  /// queries contend only when they land on the same stripe.
  std::size_t shards = 8;
  /// Quantization step per input component: inputs within `resolution` of
  /// each other in every component share a cache key.  Pick it below the
  /// surrogate's input sensitivity; the default treats inputs as exact.
  double resolution = 1e-12;
};

/// A cached accepted answer: the surrogate's mean and the uncertainty
/// score it carried when the UQ gate admitted it.
struct CachedAnswer {
  std::vector<double> values;
  double uncertainty = 0.0;
};

struct LookupCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class LookupCache {
 public:
  /// Quantized input vector; equal keys mean "same state point at the
  /// configured resolution".
  using Key = std::vector<std::int64_t>;

  explicit LookupCache(const LookupCacheConfig& config);

  /// Quantizes one input vector at `resolution`.  All components must be
  /// finite (non-finite inputs are uncacheable and handled by the callers).
  [[nodiscard]] static Key quantize(std::span<const double> input,
                                    double resolution);

  /// O(1) lookup; a hit refreshes the entry's LRU position.  Non-finite
  /// inputs always miss.
  [[nodiscard]] std::optional<CachedAnswer> find(std::span<const double> input);

  /// Allocation-free variant for the serving hot path: on a hit, fills
  /// `out` reusing its buffers and returns true.  `out` is untouched on a
  /// miss.  Steady-state this allocates nothing (the key is built in a
  /// thread-local scratch), which is what keeps a cache hit an order of
  /// magnitude cheaper than a forward pass.
  [[nodiscard]] bool find(std::span<const double> input, CachedAnswer& out);

  /// Inserts (or refreshes) the entry for `input`, evicting the shard's
  /// least-recently-used entry when the stripe is full.  Non-finite inputs
  /// are ignored.
  void insert(std::span<const double> input, CachedAnswer answer);

  /// The cache's invalidation era: clear() advances it.  A caller that
  /// snapshots a model and will insert that model's answers later should
  /// capture the epoch FIRST (before the model snapshot) and insert through
  /// try_insert(); the ordering guarantees a stale-era answer can never
  /// outlive the clear() that retired its model.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// insert(), but dropped (returning false) unless the cache is still in
  /// `expected_epoch`.  The check runs inside the shard lock, closing the
  /// race where an in-flight query computed an answer under a surrogate
  /// that replace_surrogate()/rollback has since retired: such an insert
  /// either lands before clear()'s sweep (and is swept), or observes the
  /// advanced epoch and is dropped.  Used by the dispatcher's gate-accepted
  /// insert path.
  bool try_insert(std::span<const double> input, CachedAnswer answer,
                  std::uint64_t expected_epoch);

  [[nodiscard]] LookupCacheStats stats() const;
  /// Live entry count over all shards.
  [[nodiscard]] std::size_t size() const noexcept {
    return entries_.load(std::memory_order_relaxed);
  }
  void clear();

  [[nodiscard]] const LookupCacheConfig& config() const noexcept {
    return config_;
  }

  /// Publishes hits/misses/insertions/evictions counters and an entries
  /// gauge to `registry` under "<prefix>.*".  Handles are acquired once;
  /// the lookup path then updates them lock-free.
  void enable_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "serve.cache");

 private:
  /// quantize() into a caller-owned key, reusing its capacity.
  static void quantize_into(std::span<const double> input, double resolution,
                            Key& key);

  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };

  struct Entry {
    Key key;
    CachedAnswer answer;
  };

  /// One mutex stripe: an LRU list (front = most recent) plus an index
  /// from key to list position.
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
  };

  [[nodiscard]] Shard& shard_for(const Key& key) noexcept;

  LookupCacheConfig config_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Invalidation era; clear() advances it before sweeping the shards.
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> entries_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};

  /// Metric handles; all null until enable_metrics().
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_insertions_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
  obs::Gauge* metric_entries_ = nullptr;
};

}  // namespace le::serve
