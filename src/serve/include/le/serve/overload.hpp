/// @file
/// Shared vocabulary of the overload-robustness stack: deadlines, shed
/// reasons and the shed-error hierarchy.
///
/// A serving tier for "millions of users" (ROADMAP item 1) must degrade
/// deliberately when demand exceeds capacity instead of collapsing: an
/// unbounded queue turns a 10x burst into unbounded latency for *every*
/// request.  The stack built on this header — AdmissionController,
/// deadline-aware BatchQueue, the dispatcher's DegradationLadder — makes
/// "no" a first-class answer.  Crucially, being shed is NOT a model
/// failure: a shed request was never attempted, so it must not feed the
/// circuit breaker, must not be billed to the effective-speedup meter,
/// and must be distinguishable by the caller (retry later / fall back)
/// from a surrogate that produced garbage.  The types here encode that
/// distinction.
#pragma once

#include <chrono>
#include <optional>
#include <stdexcept>

namespace le::serve {

/// Absolute completion deadline of one request, on the serving clock.
/// std::nullopt means "no deadline" (the request waits indefinitely).
/// Deadlines propagate: the admission edge sheds requests that arrive
/// already expired, the batch queue sheds requests that expire while
/// queued (before the batched forward — a GEMM is never burned on a dead
/// request), and SurrogateDispatcher::query/query_batch shed expired rows
/// before any model work.
using Deadline = std::optional<std::chrono::steady_clock::time_point>;

/// Why a request was refused.  Carried in core::Answer for the dispatcher
/// path and in the what() text of the ShedError hierarchy for the future
/// path.
enum class ShedReason {
  kNone = 0,        ///< not shed
  kDeadline,        ///< the request's deadline expired before it was served
  kQueueFull,       ///< bounded queue depth reached at admission
  kConcurrency,     ///< concurrency token limit reached at admission
  kOverload,        ///< sojourn-time controller / degradation ladder shed
  kStopped,         ///< the queue was stopped before the request arrived
  kWorkerDown,      ///< the shard worker owning this request's key died
};

/// Human-readable reason label ("deadline", "queue_full", ...).
[[nodiscard]] constexpr const char* shed_reason_name(ShedReason r) noexcept {
  switch (r) {
    case ShedReason::kNone: return "none";
    case ShedReason::kDeadline: return "deadline";
    case ShedReason::kQueueFull: return "queue_full";
    case ShedReason::kConcurrency: return "concurrency";
    case ShedReason::kOverload: return "overload";
    case ShedReason::kStopped: return "stopped";
    case ShedReason::kWorkerDown: return "worker_down";
  }
  return "unknown";
}

/// Base of every "the system refused this request" outcome.  Distinct from
/// model failure by construction: a ShedError means no answer was
/// attempted, so callers can retry/back off without distrusting the model.
class ShedError : public std::runtime_error {
 public:
  ShedError(ShedReason reason, const std::string& what_arg)
      : std::runtime_error(what_arg), reason_(reason) {}

  [[nodiscard]] ShedReason reason() const noexcept { return reason_; }

 private:
  ShedReason reason_;
};

/// The request's deadline expired before it could be served — either on
/// arrival (shed at submit) or while queued (shed before the batched
/// forward, resolving the request's future with this exception).
class DeadlineExceededError : public ShedError {
 public:
  explicit DeadlineExceededError(const std::string& what_arg)
      : ShedError(ShedReason::kDeadline, what_arg) {}
};

/// Admission control refused the request: bounded queue depth, concurrency
/// token limit, or the CoDel-style sojourn controller is shedding.
class OverloadShedError : public ShedError {
 public:
  OverloadShedError(ShedReason reason, const std::string& what_arg)
      : ShedError(reason, what_arg) {}
};

/// submit() was called after stop(): the queue no longer accepts work.
/// This is the *documented* fail-fast contract (previously unspecified) —
/// a stopped queue always throws this, never blocks and never leaks an
/// unresolved future.  Derives from ShedError (and thus runtime_error) so
/// pre-existing catch sites keep working.
class QueueStoppedError : public ShedError {
 public:
  explicit QueueStoppedError(const std::string& what_arg)
      : ShedError(ShedReason::kStopped, what_arg) {}
};

}  // namespace le::serve
