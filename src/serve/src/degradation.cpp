#include "le/serve/degradation.hpp"

#include <stdexcept>

#include "le/obs/metrics.hpp"

namespace le::serve {

DegradationLadder::DegradationLadder(const DegradationConfig& config)
    : config_(config), window_(config.window) {
  if (config_.window == 0) {
    throw std::invalid_argument("DegradationLadder: window must be positive");
  }
  if (!(config_.quantile > 0.0 && config_.quantile <= 1.0)) {
    throw std::invalid_argument(
        "DegradationLadder: quantile must be in (0, 1]");
  }
  if (!(config_.engage[0] > 0.0 && config_.engage[0] < config_.engage[1] &&
        config_.engage[1] < config_.engage[2])) {
    throw std::invalid_argument(
        "DegradationLadder: engage thresholds must be positive and strictly "
        "increasing");
  }
  if (!(config_.release_fraction > 0.0 && config_.release_fraction < 1.0)) {
    throw std::invalid_argument(
        "DegradationLadder: release_fraction must be in (0, 1)");
  }
  if (config_.release_windows < 1) {
    throw std::invalid_argument(
        "DegradationLadder: release_windows must be >= 1");
  }
}

void DegradationLadder::record(double seconds) {
  std::lock_guard lock(mutex_);
  window_.add(seconds);
  if (++samples_since_eval_ >= config_.window) {
    samples_since_eval_ = 0;
    evaluate_locked();
  }
}

void DegradationLadder::evaluate_locked() {
  const double q = window_.quantile(config_.quantile);
  ++stats_.evaluations;
  stats_.last_quantile = q;
  if (metric_quantile_) metric_quantile_->set(q);

  const int current = level_.load(std::memory_order_relaxed);
  // Highest level whose engage threshold the quantile exceeds.
  int target = 0;
  for (std::size_t i = 0; i < config_.engage.size(); ++i) {
    if (q > config_.engage[i]) target = static_cast<int>(i) + 1;
  }

  if (target > current) {
    // Pressure: engage immediately, jumping as many levels as the quantile
    // demands — a severe spike must not take three windows to reach
    // kShedAll.
    level_.store(target, std::memory_order_relaxed);
    calm_evals_ = 0;
    ++stats_.engages;
    if (metric_engages_) metric_engages_->add();
    if (metric_level_) metric_level_->set(static_cast<double>(target));
    stats_.level = static_cast<ServiceLevel>(target);
    return;
  }
  if (current > 0) {
    const double release_bar =
        config_.engage[static_cast<std::size_t>(current - 1)] *
        config_.release_fraction;
    if (q < release_bar) {
      if (++calm_evals_ >= config_.release_windows) {
        // Recovery: step down ONE level per dwell period.  The quantile at
        // a degraded level measures the *degraded* service's latency, so a
        // calm window proves only that the next level down is worth
        // probing, not that full service is affordable.
        calm_evals_ = 0;
        level_.store(current - 1, std::memory_order_relaxed);
        ++stats_.releases;
        if (metric_releases_) metric_releases_->add();
        if (metric_level_) {
          metric_level_->set(static_cast<double>(current - 1));
        }
        stats_.level = static_cast<ServiceLevel>(current - 1);
      }
      return;
    }
  }
  calm_evals_ = 0;
  stats_.level = static_cast<ServiceLevel>(current);
}

void DegradationLadder::engage_at_least(ServiceLevel floor) {
  std::lock_guard lock(mutex_);
  const int target = static_cast<int>(floor);
  const int current = level_.load(std::memory_order_relaxed);
  if (target <= current) return;
  level_.store(target, std::memory_order_relaxed);
  calm_evals_ = 0;
  ++stats_.engages;
  stats_.level = floor;
  if (metric_engages_) metric_engages_->add();
  if (metric_level_) metric_level_->set(static_cast<double>(target));
}

DegradationStats DegradationLadder::stats() const {
  std::lock_guard lock(mutex_);
  DegradationStats out = stats_;
  out.level = level();
  return out;
}

void DegradationLadder::enable_metrics(obs::MetricsRegistry& registry,
                                       const std::string& prefix) {
  metric_level_ = &registry.gauge(prefix + ".level");
  metric_quantile_ = &registry.gauge(prefix + ".pressure_quantile");
  metric_engages_ = &registry.counter(prefix + ".engages");
  metric_releases_ = &registry.counter(prefix + ".releases");
  metric_level_->set(static_cast<double>(level_.load()));
}

}  // namespace le::serve
