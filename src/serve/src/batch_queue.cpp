#include "le/serve/batch_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "le/obs/metrics.hpp"

namespace le::serve {

BatchQueue::BatchQueue(BatchForwardFn forward, const BatchQueueConfig& config)
    : forward_(std::move(forward)), config_(config) {
  if (!forward_) throw std::invalid_argument("BatchQueue: null forward fn");
  if (config_.max_batch == 0) {
    throw std::invalid_argument("BatchQueue: max_batch must be positive");
  }
  if (config_.input_dim == 0) {
    throw std::invalid_argument("BatchQueue: input_dim must be positive");
  }
  if (config_.max_wait.count() < 0) {
    throw std::invalid_argument("BatchQueue: max_wait must be non-negative");
  }
  server_ = std::thread([this] { serve_loop(); });
}

BatchQueue::~BatchQueue() { stop(); }

void BatchQueue::stop() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // The old fast-path ("stopping_ && !joinable() -> return") read the
  // thread object while another stop() could be inside join() — a data
  // race, and both callers could pass the joinable() check and double-
  // join.  stop_mutex_ serializes the join; losers wait until the drain
  // completes, preserving stop()'s "all futures resolved" postcondition
  // for every caller.
  std::lock_guard join_lock(stop_mutex_);
  if (server_.joinable()) server_.join();
}

std::future<std::vector<double>> BatchQueue::submit(
    std::span<const double> input) {
  if (input.size() != config_.input_dim) {
    throw std::invalid_argument("BatchQueue::submit: input dim mismatch");
  }
  Pending request;
  request.input.assign(input.begin(), input.end());
  request.enqueued = std::chrono::steady_clock::now();
  std::future<std::vector<double>> fut = request.promise.get_future();
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("BatchQueue::submit: queue is stopped");
    }
    pending_.push_back(std::move(request));
  }
  cv_.notify_all();
  return fut;
}

std::vector<double> BatchQueue::query(std::span<const double> input) {
  return submit(input).get();
}

void BatchQueue::serve_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
    if (pending_.empty()) return;  // stopping and fully drained

    // Bounded coalescing: hold a partial batch open until either it fills
    // or max_wait elapses; stop requests flush immediately.
    const auto deadline = std::chrono::steady_clock::now() + config_.max_wait;
    while (!stopping_ && pending_.size() < config_.max_batch) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }

    const std::size_t take = std::min(pending_.size(), config_.max_batch);
    std::vector<Pending> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    lock.unlock();
    dispatch(std::move(batch));
    lock.lock();
  }
}

void BatchQueue::dispatch(std::vector<Pending> batch) {
  const std::size_t rows = batch.size();
  const auto dispatched = std::chrono::steady_clock::now();
  tensor::Matrix inputs(rows, config_.input_dim);
  for (std::size_t r = 0; r < rows; ++r) {
    auto row = inputs.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] = batch[r].input[c];
    wait_sketch_.add(
        std::chrono::duration<double>(dispatched - batch[r].enqueued).count());
  }

  queries_.fetch_add(rows, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::size_t prev = max_batch_observed_.load(std::memory_order_relaxed);
  while (rows > prev &&
         !max_batch_observed_.compare_exchange_weak(
             prev, rows, std::memory_order_relaxed)) {
  }
  if (metric_queries_) metric_queries_->add(rows);
  if (metric_batches_) metric_batches_->add();
  if (metric_batch_fill_) {
    metric_batch_fill_->set(static_cast<double>(rows));
  }

  const auto t0 = std::chrono::steady_clock::now();
  tensor::Matrix outputs;
  try {
    outputs = forward_(inputs);
    if (outputs.rows() != rows) {
      throw std::runtime_error("BatchQueue: forward returned " +
                               std::to_string(outputs.rows()) +
                               " rows for a batch of " + std::to_string(rows));
    }
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (auto& request : batch) request.promise.set_exception(error);
    return;
  }
  if (metric_batch_seconds_) {
    const auto t1 = std::chrono::steady_clock::now();
    metric_batch_seconds_->record(
        std::chrono::duration<double>(t1 - t0).count());
  }

  for (std::size_t r = 0; r < rows; ++r) {
    auto row = outputs.row(r);
    batch[r].promise.set_value(std::vector<double>(row.begin(), row.end()));
  }
}

BatchQueueStats BatchQueue::stats() const {
  BatchQueueStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.max_batch_observed = max_batch_observed_.load(std::memory_order_relaxed);
  s.wait = wait_sketch_.quantiles();
  return s;
}

void BatchQueue::enable_metrics(obs::MetricsRegistry& registry,
                                const std::string& prefix) {
  metric_queries_ = &registry.counter(prefix + ".queries");
  metric_batches_ = &registry.counter(prefix + ".batches");
  metric_batch_fill_ = &registry.gauge(prefix + ".batch_fill");
  metric_batch_seconds_ = &registry.histogram(prefix + ".batch_seconds");
}

}  // namespace le::serve
