#include "le/serve/batch_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "le/obs/metrics.hpp"
#include "le/serve/admission.hpp"
#include "le/serve/degradation.hpp"

namespace le::serve {

namespace {

/// Wraps a plain forward so the serving loop only ever deals with the
/// shed-aware signature; a plain forward never sheds rows.
ShedAwareForwardFn adapt_plain_forward(BatchForwardFn forward) {
  return [fn = std::move(forward)](const tensor::Matrix& inputs,
                                   std::span<const Deadline> /*deadlines*/,
                                   std::span<ShedReason> /*shed*/) {
    return fn(inputs);
  };
}

[[noreturn]] void throw_shed(ShedReason reason, const std::string& where) {
  if (reason == ShedReason::kDeadline) {
    throw DeadlineExceededError(where + ": deadline exceeded");
  }
  throw OverloadShedError(reason, where + ": shed (" +
                                      shed_reason_name(reason) + ")");
}

std::exception_ptr make_shed_exception(ShedReason reason,
                                       const std::string& where) {
  try {
    throw_shed(reason, where);
  } catch (...) {
    return std::current_exception();
  }
}

}  // namespace

BatchQueue::BatchQueue(BatchForwardFn forward, const BatchQueueConfig& config)
    : BatchQueue(forward ? adapt_plain_forward(std::move(forward))
                         : ShedAwareForwardFn(),
                 config) {}

BatchQueue::BatchQueue(ShedAwareForwardFn forward,
                       const BatchQueueConfig& config)
    : forward_(std::move(forward)), config_(config) {
  if (!forward_) throw std::invalid_argument("BatchQueue: null forward fn");
  if (config_.max_batch == 0) {
    throw std::invalid_argument("BatchQueue: max_batch must be positive");
  }
  if (config_.input_dim == 0) {
    throw std::invalid_argument("BatchQueue: input_dim must be positive");
  }
  if (config_.max_wait.count() < 0) {
    throw std::invalid_argument("BatchQueue: max_wait must be non-negative");
  }
  server_ = std::thread([this] { serve_loop(); });
}

BatchQueue::~BatchQueue() { stop(); }

void BatchQueue::stop() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // The old fast-path ("stopping_ && !joinable() -> return") read the
  // thread object while another stop() could be inside join() — a data
  // race, and both callers could pass the joinable() check and double-
  // join.  stop_mutex_ serializes the join; losers wait until the drain
  // completes, preserving stop()'s "all futures resolved" postcondition
  // for every caller.
  std::lock_guard join_lock(stop_mutex_);
  if (server_.joinable()) server_.join();
}

void BatchQueue::set_admission(std::shared_ptr<AdmissionController> admission) {
  admission_ = std::move(admission);
}

void BatchQueue::set_degradation(std::shared_ptr<DegradationLadder> ladder) {
  ladder_ = std::move(ladder);
}

std::size_t BatchQueue::depth() const {
  std::lock_guard lock(mutex_);
  return pending_.size();
}

std::future<std::vector<double>> BatchQueue::submit(
    std::span<const double> input, Deadline deadline) {
  if (input.size() != config_.input_dim) {
    throw std::invalid_argument("BatchQueue::submit: input dim mismatch");
  }
  const auto now = std::chrono::steady_clock::now();
  // Shed-on-arrival: a request that is already dead costs one clock read,
  // no queue slot and no admission token.
  if (deadline && *deadline <= now) {
    expired_.fetch_add(1, std::memory_order_relaxed);
    if (metric_expired_) metric_expired_->add();
    throw DeadlineExceededError(
        "BatchQueue::submit: deadline already expired on arrival");
  }
  Pending request;
  request.input.assign(input.begin(), input.end());
  request.enqueued = now;
  request.deadline = deadline;
  std::future<std::vector<double>> fut = request.promise.get_future();
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      throw QueueStoppedError("BatchQueue::submit: queue is stopped");
    }
    if (admission_) {
      // Consulted under the queue lock so the depth it sees is exact.
      // AdmissionController's own mutex is a leaf (it never calls out),
      // so the nesting cannot deadlock.
      const ShedReason verdict = admission_->try_admit(pending_.size(), now);
      if (verdict != ShedReason::kNone) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        if (metric_shed_) metric_shed_->add();
        throw_shed(verdict, "BatchQueue::submit");
      }
    }
    pending_.push_back(std::move(request));
  }
  cv_.notify_all();
  return fut;
}

std::vector<double> BatchQueue::query(std::span<const double> input,
                                      Deadline deadline) {
  return submit(input, deadline).get();
}

void BatchQueue::serve_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
    if (pending_.empty()) return;  // stopping and fully drained

    // Bounded coalescing: hold a partial batch open until either it fills
    // or max_wait elapses; stop requests flush immediately.
    const auto deadline = std::chrono::steady_clock::now() + config_.max_wait;
    while (!stopping_ && pending_.size() < config_.max_batch) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }

    const std::size_t take = std::min(pending_.size(), config_.max_batch);
    std::vector<Pending> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    lock.unlock();
    dispatch(std::move(batch));
    lock.lock();
  }
}

void BatchQueue::record_wait(double seconds) {
  wait_sketch_.add(seconds);
  if (admission_) admission_->record_sojourn(seconds);
  if (ladder_) ladder_->record(seconds);
}

void BatchQueue::dispatch(std::vector<Pending> batch) {
  const auto dispatched = std::chrono::steady_clock::now();

  // Pre-forward shed pass: a request whose deadline expired while queued
  // is resolved (exceptionally) right here, so the batched forward below
  // never spends a GEMM row on a request nobody is waiting for.  Expired
  // requests still contribute their queue wait to the pressure signals —
  // they are the strongest evidence of a standing queue there is.
  std::vector<Pending> live;
  live.reserve(batch.size());
  std::vector<char> is_expired(batch.size(), 0);
  std::size_t n_expired = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const double wait =
        std::chrono::duration<double>(dispatched - batch[i].enqueued).count();
    record_wait(wait);
    if (batch[i].deadline && *batch[i].deadline <= dispatched) {
      is_expired[i] = 1;
      ++n_expired;
    }
  }
  // Counters are published before any promise resolves: a caller whose
  // .get() just returned must already see its request in stats().
  if (n_expired > 0) {
    expired_.fetch_add(n_expired, std::memory_order_relaxed);
    if (metric_expired_) metric_expired_->add(n_expired);
    if (admission_) admission_->release(n_expired);
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (is_expired[i]) {
      batch[i].promise.set_exception(make_shed_exception(
          ShedReason::kDeadline, "BatchQueue: expired while queued"));
      continue;
    }
    live.push_back(std::move(batch[i]));
  }
  if (live.empty()) return;  // whole batch was dead — no forward at all

  const std::size_t rows = live.size();
  tensor::Matrix inputs(rows, config_.input_dim);
  std::vector<Deadline> deadlines(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    auto row = inputs.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] = live[r].input[c];
    deadlines[r] = live[r].deadline;
  }

  queries_.fetch_add(rows, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::size_t prev = max_batch_observed_.load(std::memory_order_relaxed);
  while (rows > prev &&
         !max_batch_observed_.compare_exchange_weak(
             prev, rows, std::memory_order_relaxed)) {
  }
  if (metric_queries_) metric_queries_->add(rows);
  if (metric_batches_) metric_batches_->add();
  if (metric_batch_fill_) {
    metric_batch_fill_->set(static_cast<double>(rows));
  }

  // The zero-dead-forwards instrument: any row already expired at this
  // instant slipped through the gap between the shed pass and here.  The
  // gap is a few microseconds of matrix packing, so this stays 0 for any
  // realistic deadline; E17 asserts it.
  const auto forward_start = std::chrono::steady_clock::now();
  std::size_t dead = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    if (deadlines[r] && *deadlines[r] <= forward_start) ++dead;
  }
  if (dead > 0) {
    dead_request_forwards_.fetch_add(dead, std::memory_order_relaxed);
    if (metric_dead_forwards_) metric_dead_forwards_->add(dead);
  }

  std::vector<ShedReason> row_shed(rows, ShedReason::kNone);
  tensor::Matrix outputs;
  try {
    outputs = forward_(inputs, deadlines, row_shed);
    if (outputs.rows() != rows) {
      throw std::runtime_error("BatchQueue: forward returned " +
                               std::to_string(outputs.rows()) +
                               " rows for a batch of " + std::to_string(rows));
    }
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (auto& request : live) request.promise.set_exception(error);
    if (admission_) admission_->release(rows);
    return;
  }
  if (metric_batch_seconds_) {
    const auto t1 = std::chrono::steady_clock::now();
    metric_batch_seconds_->record(
        std::chrono::duration<double>(t1 - forward_start).count());
  }

  std::size_t n_row_shed = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    if (row_shed[r] != ShedReason::kNone) ++n_row_shed;
  }
  // Same ordering rule as the expiry pass: stats first, promises second.
  if (n_row_shed > 0) {
    shed_.fetch_add(n_row_shed, std::memory_order_relaxed);
    if (metric_shed_) metric_shed_->add(n_row_shed);
  }
  if (admission_) admission_->release(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    if (row_shed[r] != ShedReason::kNone) {
      live[r].promise.set_exception(
          make_shed_exception(row_shed[r], "BatchQueue: row shed by forward"));
      continue;
    }
    auto row = outputs.row(r);
    live[r].promise.set_value(std::vector<double>(row.begin(), row.end()));
  }
}

BatchQueueStats BatchQueue::stats() const {
  BatchQueueStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.max_batch_observed = max_batch_observed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.dead_request_forwards =
      dead_request_forwards_.load(std::memory_order_relaxed);
  s.wait = wait_sketch_.quantiles();
  return s;
}

void BatchQueue::enable_metrics(obs::MetricsRegistry& registry,
                                const std::string& prefix) {
  metric_queries_ = &registry.counter(prefix + ".queries");
  metric_batches_ = &registry.counter(prefix + ".batches");
  metric_expired_ = &registry.counter(prefix + ".expired");
  metric_shed_ = &registry.counter(prefix + ".shed");
  metric_dead_forwards_ = &registry.counter(prefix + ".dead_request_forwards");
  metric_batch_fill_ = &registry.gauge(prefix + ".batch_fill");
  metric_batch_seconds_ = &registry.histogram(prefix + ".batch_seconds");
}

}  // namespace le::serve
