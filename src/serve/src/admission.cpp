#include "le/serve/admission.hpp"

#include <cmath>
#include <stdexcept>

#include "le/obs/metrics.hpp"

namespace le::serve {

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {
  if (config_.target_sojourn.count() > 0 && config_.interval.count() <= 0) {
    throw std::invalid_argument(
        "AdmissionController: interval must be positive when the sojourn "
        "gate is enabled");
  }
}

ShedReason AdmissionController::try_admit(std::size_t queue_depth,
                                          Clock::time_point now) {
  std::lock_guard lock(mutex_);
  if (config_.max_queue_depth != 0 && queue_depth >= config_.max_queue_depth) {
    ++stats_.shed_queue_full;
    if (metric_shed_queue_full_) metric_shed_queue_full_->add();
    return ShedReason::kQueueFull;
  }
  if (config_.max_concurrent != 0 &&
      stats_.in_flight >= config_.max_concurrent) {
    ++stats_.shed_concurrency;
    if (metric_shed_concurrency_) metric_shed_concurrency_->add();
    return ShedReason::kConcurrency;
  }
  if (shedding_) {
    if (now < next_probe_) {
      ++stats_.shed_overload;
      if (metric_shed_overload_) metric_shed_overload_->add();
      return ShedReason::kOverload;
    }
    // Probe admission: keep a trickle flowing so record_sojourn() can
    // observe recovery.  The CoDel control law shrinks the spacing as the
    // overload persists — the longer the queue stays bad, the harder we
    // shed, but never to zero.
    ++probe_count_;
    ++stats_.probes;
    next_probe_ =
        now + std::chrono::duration_cast<Clock::duration>(
                  config_.interval /
                  std::sqrt(static_cast<double>(probe_count_ + 1)));
  }
  ++stats_.admitted;
  ++stats_.in_flight;
  if (metric_admitted_) metric_admitted_->add();
  if (metric_in_flight_) {
    metric_in_flight_->set(static_cast<double>(stats_.in_flight));
  }
  return ShedReason::kNone;
}

void AdmissionController::release(std::size_t n) noexcept {
  std::lock_guard lock(mutex_);
  stats_.in_flight = stats_.in_flight >= n ? stats_.in_flight - n : 0;
  if (metric_in_flight_) {
    metric_in_flight_->set(static_cast<double>(stats_.in_flight));
  }
}

void AdmissionController::record_sojourn(double seconds,
                                         Clock::time_point now) {
  if (config_.target_sojourn.count() <= 0) return;  // sojourn gate disabled
  const double target =
      std::chrono::duration<double>(config_.target_sojourn).count();
  std::lock_guard lock(mutex_);
  if (seconds < target) {
    // One good sojourn ends the episode — the standing queue has drained
    // (or a probe got through quickly), so stop shedding immediately.
    above_target_ = false;
    if (shedding_) {
      shedding_ = false;
      probe_count_ = 0;
      stats_.shedding = false;
      if (metric_shedding_) metric_shedding_->set(0.0);
    }
    return;
  }
  if (!above_target_) {
    above_target_ = true;
    above_since_ = now;
    return;
  }
  if (!shedding_ && now - above_since_ >= config_.interval) {
    // The wait has been above target for a full interval: this is a
    // standing queue, not a transient burst.  Engage shedding; the first
    // probe is allowed immediately so measurement never stops.
    shedding_ = true;
    probe_count_ = 0;
    next_probe_ = now;
    stats_.shedding = true;
    if (metric_shedding_) metric_shedding_->set(1.0);
  }
}

bool AdmissionController::shedding() const {
  std::lock_guard lock(mutex_);
  return shedding_;
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void AdmissionController::enable_metrics(obs::MetricsRegistry& registry,
                                         const std::string& prefix) {
  metric_admitted_ = &registry.counter(prefix + ".admitted");
  metric_shed_queue_full_ = &registry.counter(prefix + ".shed_queue_full");
  metric_shed_concurrency_ = &registry.counter(prefix + ".shed_concurrency");
  metric_shed_overload_ = &registry.counter(prefix + ".shed_overload");
  metric_in_flight_ = &registry.gauge(prefix + ".in_flight");
  metric_shedding_ = &registry.gauge(prefix + ".shedding");
}

}  // namespace le::serve
