#include "le/serve/lookup_cache.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "le/obs/metrics.hpp"

namespace le::serve {

namespace {

bool all_finite(std::span<const double> input) noexcept {
  for (double v : input) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

LookupCache::LookupCache(const LookupCacheConfig& config) : config_(config) {
  if (config_.capacity == 0) {
    throw std::invalid_argument("LookupCache: capacity must be positive");
  }
  if (config_.shards == 0) {
    throw std::invalid_argument("LookupCache: shards must be positive");
  }
  if (!(config_.resolution > 0.0) || !std::isfinite(config_.resolution)) {
    throw std::invalid_argument("LookupCache: resolution must be positive");
  }
  per_shard_capacity_ =
      (config_.capacity + config_.shards - 1) / config_.shards;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

LookupCache::Key LookupCache::quantize(std::span<const double> input,
                                       double resolution) {
  Key key;
  quantize_into(input, resolution, key);
  return key;
}

void LookupCache::quantize_into(std::span<const double> input,
                                double resolution, Key& key) {
  key.clear();
  key.reserve(input.size());
  // llround saturates UB-free only inside the representable range; clamp
  // first so absurd magnitudes still produce a stable (edge) key.
  const double lo = static_cast<double>(std::numeric_limits<std::int64_t>::min());
  const double hi = static_cast<double>(std::numeric_limits<std::int64_t>::max());
  for (double v : input) {
    const double scaled = v / resolution;
    if (scaled <= lo) {
      key.push_back(std::numeric_limits<std::int64_t>::min());
    } else if (scaled >= hi) {
      key.push_back(std::numeric_limits<std::int64_t>::max());
    } else {
      key.push_back(std::llround(scaled));
    }
  }
}

std::size_t LookupCache::KeyHash::operator()(const Key& key) const noexcept {
  // splitmix64-style avalanche per component: far cheaper than byte-wise
  // FNV on the lookup hot path (the hash runs twice per find: shard pick
  // and index probe) while mixing well enough for both uses.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ key.size();
  for (std::int64_t v : key) {
    auto u = static_cast<std::uint64_t>(v);
    u ^= u >> 30;
    u *= 0xbf58476d1ce4e5b9ULL;
    u ^= u >> 27;
    u *= 0x94d049bb133111ebULL;
    u ^= u >> 31;
    h ^= u + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

LookupCache::Shard& LookupCache::shard_for(const Key& key) noexcept {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

std::optional<CachedAnswer> LookupCache::find(std::span<const double> input) {
  CachedAnswer out;
  if (find(input, out)) return out;
  return std::nullopt;
}

bool LookupCache::find(std::span<const double> input, CachedAnswer& out) {
  if (!all_finite(input)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (metric_misses_) metric_misses_->add();
    return false;
  }
  // Thread-local scratch: the key vector's capacity is reused across
  // calls, so a steady-state lookup performs no heap allocation.
  static thread_local Key key;
  quantize_into(input, config_.resolution, key);
  Shard& shard = shard_for(key);
  {
    std::lock_guard lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      const CachedAnswer& hit = it->second->answer;
      out.values.assign(hit.values.begin(), hit.values.end());
      out.uncertainty = hit.uncertainty;
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (metric_hits_) metric_hits_->add();
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (metric_misses_) metric_misses_->add();
  return false;
}

void LookupCache::insert(std::span<const double> input, CachedAnswer answer) {
  (void)try_insert(input, std::move(answer),
                   epoch_.load(std::memory_order_acquire));
}

bool LookupCache::try_insert(std::span<const double> input, CachedAnswer answer,
                             std::uint64_t expected_epoch) {
  if (!all_finite(input)) return false;
  static thread_local Key key;
  quantize_into(input, config_.resolution, key);
  Shard& shard = shard_for(key);
  bool evicted = false;
  {
    std::lock_guard lock(shard.mutex);
    // Epoch check inside the shard lock: either this insert precedes
    // clear()'s sweep of this shard (and the sweep removes it), or the
    // sweep's preceding epoch bump is visible here and the insert drops.
    if (epoch_.load(std::memory_order_acquire) != expected_epoch) {
      return false;
    }
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->answer = std::move(answer);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, std::move(answer)});
      shard.index.emplace(key, shard.lru.begin());
      if (shard.lru.size() > per_shard_capacity_) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        evicted = true;
      } else {
        entries_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (evicted) evictions_.fetch_add(1, std::memory_order_relaxed);
  if (metric_insertions_) metric_insertions_->add();
  if (evicted && metric_evictions_) metric_evictions_->add();
  if (metric_entries_) {
    metric_entries_->set(static_cast<double>(size()));
  }
  return true;
}

LookupCacheStats LookupCache::stats() const {
  LookupCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = size();
  return s;
}

void LookupCache::clear() {
  // Epoch advances BEFORE the sweep: any try_insert still carrying the old
  // epoch either lands before its shard is swept (removed below) or sees
  // the new epoch under the shard lock and drops itself.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
  entries_.store(0, std::memory_order_relaxed);
  if (metric_entries_) metric_entries_->set(0.0);
}

void LookupCache::enable_metrics(obs::MetricsRegistry& registry,
                                 const std::string& prefix) {
  metric_hits_ = &registry.counter(prefix + ".hits");
  metric_misses_ = &registry.counter(prefix + ".misses");
  metric_insertions_ = &registry.counter(prefix + ".insertions");
  metric_evictions_ = &registry.counter(prefix + ".evictions");
  metric_entries_ = &registry.gauge(prefix + ".entries");
}

}  // namespace le::serve
