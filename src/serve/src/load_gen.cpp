#include "le/serve/load_gen.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "le/stats/rng.hpp"

namespace le::serve {

LoadGenerator::LoadGenerator(const LoadGenConfig& config) : config_(config) {
  if (!(config_.rate_qps > 0.0) || !std::isfinite(config_.rate_qps)) {
    throw std::invalid_argument("LoadGenerator: rate_qps must be positive");
  }
  if (!(config_.duration_seconds > 0.0) ||
      !std::isfinite(config_.duration_seconds)) {
    throw std::invalid_argument(
        "LoadGenerator: duration_seconds must be positive");
  }
  if (config_.burst_factor < 1.0) {
    throw std::invalid_argument("LoadGenerator: burst_factor must be >= 1");
  }
  if (config_.burst_period > 0.0 &&
      !(config_.burst_length > 0.0 &&
        config_.burst_length < config_.burst_period)) {
    throw std::invalid_argument(
        "LoadGenerator: burst_length must be in (0, burst_period)");
  }
  if (config_.key_pool == 0) {
    throw std::invalid_argument("LoadGenerator: key_pool must be positive");
  }
  if (config_.hot_keys > config_.key_pool) {
    throw std::invalid_argument("LoadGenerator: hot_keys exceeds key_pool");
  }
  if (!(config_.hot_fraction >= 0.0 && config_.hot_fraction <= 1.0)) {
    throw std::invalid_argument(
        "LoadGenerator: hot_fraction must be in [0, 1]");
  }
  if (config_.hot_fraction > 0.0 && config_.hot_keys == 0) {
    throw std::invalid_argument(
        "LoadGenerator: hot_fraction > 0 requires hot_keys > 0");
  }
}

bool LoadGenerator::in_burst(double t) const noexcept {
  if (config_.burst_period <= 0.0 || config_.burst_factor <= 1.0) return false;
  const double phase = std::fmod(t, config_.burst_period);
  return phase < config_.burst_length;
}

std::vector<Arrival> LoadGenerator::schedule() const {
  stats::Rng rng(config_.seed);
  std::vector<Arrival> arrivals;
  arrivals.reserve(static_cast<std::size_t>(
      config_.rate_qps * config_.duration_seconds * config_.burst_factor));
  double t = 0.0;
  for (;;) {
    // Thinning-free piecewise-homogeneous Poisson process: the intensity
    // is constant within a burst (or gap), so drawing the next exponential
    // gap at the *current* intensity is exact as long as the gap does not
    // cross a burst boundary; when it would, re-draw from the boundary at
    // the new intensity (memorylessness makes the restart exact too).
    const double rate = in_burst(t) ? config_.rate_qps * config_.burst_factor
                                    : config_.rate_qps;
    const double gap = rng.exponential(rate);
    double boundary = config_.duration_seconds;
    if (config_.burst_period > 0.0 && config_.burst_factor > 1.0) {
      const double phase = std::fmod(t, config_.burst_period);
      const double to_boundary = in_burst(t)
                                     ? config_.burst_length - phase
                                     : config_.burst_period - phase;
      boundary = std::min(boundary, t + to_boundary);
    }
    if (t + gap > boundary) {
      if (boundary >= config_.duration_seconds) break;
      // The distance to a window edge can round to zero (phase within one
      // ulp of the edge), which would stall t at the boundary forever;
      // force at least one-ulp progress so the loop always terminates.
      t = boundary > t
              ? boundary
              : std::nextafter(t, std::numeric_limits<double>::infinity());
      continue;
    }
    t += gap;
    if (t >= config_.duration_seconds) break;
    Arrival a;
    a.t = t;
    a.key = (config_.hot_fraction > 0.0 && rng.bernoulli(config_.hot_fraction))
                ? rng.index(config_.hot_keys)
                : rng.index(config_.key_pool);
    arrivals.push_back(a);
  }
  return arrivals;
}

}  // namespace le::serve
