/// @file
/// Surrogate health monitoring: the HEALTHY -> DRIFTING -> UNTRUSTED state
/// machine over three quality signals.
///
/// The Section III-D effective-speedup equation silently assumes lookups
/// stay *valid*; Section III-B's dropout UQ exists so the system can "know
/// when it doesn't know".  SurrogateHealthMonitor watches the three ways a
/// served surrogate silently rots:
///
///  1. input drift — the query stream leaves the training distribution
///     (InputDriftDetector, PSI + KS per feature, per window);
///  2. residual growth — shadow-sampled queries (a configurable fraction of
///     accepted lookups re-run through the real simulation) show rolling
///     RMSE climbing above its in-distribution baseline;
///  3. UQ mis-calibration — empirical coverage of the +/- z-sigma intervals
///     on those shadow samples falls short of nominal, or sharpness
///     (mean sigma) stops being informative.
///
/// Severity per signal maps to a state: any signal at alarm level forces
/// UNTRUSTED, warn level forces at least DRIFTING.  DRIFTING heals back to
/// HEALTHY after consecutive clean windows; UNTRUSTED is latched — only
/// on_retrained() (new model, new reference distribution) clears it, which
/// is also the monitor's retraining request: retrain_requested() stays true
/// while UNTRUSTED.  The dispatcher trips its CircuitBreaker off this
/// state, so an untrusted surrogate stops answering queries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "le/obs/drift.hpp"

namespace le::obs {

class Counter;
class Gauge;
class MetricsRegistry;

enum class HealthState { kHealthy = 0, kDrifting = 1, kUntrusted = 2 };

[[nodiscard]] std::string to_string(HealthState state);

struct SurrogateHealthConfig {
  DriftDetectorConfig drift;
  /// PSI bands (max over features): warn ~ "major shift" on the standard
  /// PSI scale, alarm well beyond it.
  double psi_drifting = 0.25;
  double psi_untrusted = 1.0;
  /// Binned-KS bands (max over features), in [0, 1].
  double ks_drifting = 0.25;
  double ks_untrusted = 0.6;
  /// Fraction of gate-accepted lookups shadow-sampled through the real
  /// simulation.  Sampling is a deterministic stride (every round(1/f)-th
  /// accepted answer), so runs are reproducible; 0 disables shadowing.
  double shadow_fraction = 0.01;
  /// Rolling window (in shadow samples) for residual RMSE, coverage and
  /// sharpness.
  std::size_t residual_window = 128;
  /// Shadow samples required before residual/coverage verdicts fire (and
  /// before the self-calibrated baseline latches).
  std::size_t min_shadow_samples = 16;
  /// Residual alarm: rolling RMSE > factor * baseline RMSE => UNTRUSTED;
  /// above sqrt(factor) * baseline => DRIFTING.
  double residual_rmse_factor = 2.0;
  /// Interval half-width for coverage, in predicted sigmas.
  double coverage_z = 2.0;
  /// Nominal coverage of +/- coverage_z sigma under a calibrated Gaussian
  /// (0.954 at z = 2).
  double nominal_coverage = 0.954;
  /// Coverage shortfall bands: nominal - empirical above the first =>
  /// DRIFTING, above the second => UNTRUSTED.
  double coverage_shortfall_drifting = 0.15;
  double coverage_shortfall_untrusted = 0.30;
  /// Consecutive clean evaluations needed for DRIFTING -> HEALTHY.
  std::size_t clean_windows_to_recover = 2;
};

/// One recorded state change.
struct HealthTransition {
  HealthState from = HealthState::kHealthy;
  HealthState to = HealthState::kHealthy;
  /// observe_query() count at the transition.
  std::uint64_t at_query = 0;
  /// Human-readable cause ("psi 3.1 >= 1", "rmse 0.41 > 2.0x baseline
  /// 0.12", "retrained", ...).
  std::string reason;
};

/// Point-in-time health summary.
struct HealthReport {
  HealthState state = HealthState::kHealthy;
  DriftReport drift;
  /// Rolling shadow-sample residual RMSE (0 until samples exist).
  double residual_rmse = 0.0;
  /// Latched in-distribution baseline RMSE (0 until min_shadow_samples).
  double baseline_rmse = 0.0;
  /// Empirical coverage of +/- z-sigma intervals over the rolling window.
  double coverage = 0.0;
  /// Mean predicted sigma over the rolling window (sharpness).
  double sharpness = 0.0;
  std::size_t shadow_samples = 0;  ///< lifetime shadow samples
  std::uint64_t queries = 0;       ///< lifetime observed queries
  bool retrain_requested = false;
};

/// Aggregates the three health signals and drives the state machine.
/// Thread-safe; designed to sit on the dispatcher's query path.
class SurrogateHealthMonitor {
 public:
  /// `reference_inputs` seeds the drift detector (training-corpus inputs).
  SurrogateHealthMonitor(const SurrogateHealthConfig& config,
                         const tensor::Matrix& reference_inputs);

  /// Feeds one query input (surrogate-, cache- or simulation-answered:
  /// drift is a property of the demand stream, not of the route) into the
  /// drift detector; scores the window and re-evaluates health when full.
  void observe_query(std::span<const double> input);

  /// True when the caller should shadow-sample the answer it is about to
  /// return (deterministic stride over accepted lookups).
  [[nodiscard]] bool should_shadow_sample();

  /// Records one shadow sample: the surrogate's predictive mean/stddev for
  /// a query and the real simulation's answer.  Updates residual RMSE,
  /// coverage and sharpness, then re-evaluates health.
  void record_shadow(std::span<const double> predicted_mean,
                     std::span<const double> predicted_stddev,
                     std::span<const double> truth);

  /// Pins the in-distribution residual baseline explicitly (e.g. from an
  /// offline calibration run).  When never called, the baseline latches
  /// from the first min_shadow_samples shadow samples.
  void set_residual_baseline(double rmse);

  [[nodiscard]] HealthState state() const;
  [[nodiscard]] HealthReport report() const;
  [[nodiscard]] std::vector<HealthTransition> transitions() const;
  /// True while UNTRUSTED: the monitor wants a retrained surrogate.
  [[nodiscard]] bool retrain_requested() const;

  /// The retrain path: rebases the drift reference on the new training
  /// corpus, clears the rolling windows and the latched baseline, and
  /// resets the state machine to HEALTHY (recorded as a transition).
  void on_retrained(const tensor::Matrix& new_reference_inputs);

  /// The failed-promotion path: a promoted candidate re-tripped the
  /// monitor inside the guard window and the prior model was restored.
  /// on_retrained() already rebased the drift reference onto the
  /// *candidate's* corpus, so without this call the monitor would keep
  /// scoring the restored model against a stale reference (and could
  /// even heal to HEALTHY on it).  Rebases back onto the prior model's
  /// reference inputs, clears the candidate-era windows/baseline, and
  /// re-latches UNTRUSTED — the retrain request stands until a candidate
  /// survives its guard window.
  void on_rolled_back(const tensor::Matrix& prior_reference_inputs);

  /// Publishes health gauges/counters under "<prefix>.*": state (0/1/2),
  /// max PSI/KS, residual RMSE, coverage, sharpness, shadow-sample and
  /// transition counters.  Handles are acquired once.
  void enable_metrics(MetricsRegistry& registry,
                      const std::string& prefix = "health");

  [[nodiscard]] const SurrogateHealthConfig& config() const noexcept {
    return config_;
  }

 private:
  /// One shadow sample's window contribution.
  struct ShadowSample {
    double mse = 0.0;           ///< mean squared error over output dims
    double covered_dims = 0.0;  ///< dims inside +/- z sigma
    double dims = 0.0;
    double sigma_sum = 0.0;  ///< sum of predicted sigmas over dims
  };

  void evaluate_locked(const char* trigger);
  void transition_locked(HealthState to, std::string reason);
  [[nodiscard]] double rolling_rmse_locked() const;
  [[nodiscard]] double rolling_coverage_locked() const;
  [[nodiscard]] double rolling_sharpness_locked() const;
  void publish_metrics_locked();

  SurrogateHealthConfig config_;
  InputDriftDetector drift_;
  mutable std::mutex mutex_;
  HealthState state_ = HealthState::kHealthy;
  std::vector<HealthTransition> transitions_;
  std::deque<ShadowSample> window_;
  double baseline_rmse_ = 0.0;
  bool baseline_set_ = false;
  std::uint64_t queries_ = 0;
  std::uint64_t shadow_samples_ = 0;
  std::uint64_t accepted_answers_ = 0;  ///< should_shadow_sample() calls
  std::size_t shadow_stride_ = 0;       ///< 0 = shadowing disabled
  std::size_t clean_evaluations_ = 0;

  /// Metric handles; all null until enable_metrics().
  Gauge* metric_state_ = nullptr;
  Gauge* metric_psi_ = nullptr;
  Gauge* metric_ks_ = nullptr;
  Gauge* metric_rmse_ = nullptr;
  Gauge* metric_coverage_ = nullptr;
  Gauge* metric_sharpness_ = nullptr;
  Counter* metric_shadow_samples_ = nullptr;
  Counter* metric_transitions_ = nullptr;
};

}  // namespace le::obs
