/// @file
/// RAII timing: ScopedTimer records a duration into a Histogram; TraceSpan
/// additionally logs a (name, thread, nesting depth, start, duration) record
/// into the bounded process-wide TraceLog so a coupled ML+HPC run can be
/// reconstructed after the fact.
///
/// Both are disabled-by-default and near-free when off: the constructor
/// reads one relaxed atomic flag and, if it is clear, never touches a clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "le/obs/metrics.hpp"

namespace le::obs {

/// Small dense id for the calling thread (0, 1, 2, ... in first-use order);
/// stable for the thread's lifetime.
[[nodiscard]] std::uint32_t this_thread_ordinal() noexcept;

/// Seconds since the process's first obs clock use (a steady clock).
[[nodiscard]] double process_clock_seconds() noexcept;

/// Times its own lifetime into a histogram.  A null histogram or disabled
/// metrics makes construction and destruction no-ops.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) noexcept
      : histogram_(metrics_enabled() ? histogram : nullptr) {
    if (histogram_) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { (void)stop(); }

  /// Records now and disarms; returns the elapsed seconds (0 when
  /// disarmed).  Idempotent.
  double stop() noexcept {
    if (!histogram_) return 0.0;
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    histogram_->record(seconds);
    histogram_ = nullptr;
    return seconds;
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

/// One completed span, as stored by the TraceLog.
struct SpanRecord {
  std::string name;
  std::uint32_t thread = 0;  ///< this_thread_ordinal() of the recording thread
  std::uint32_t depth = 0;   ///< nesting depth within that thread (0 = root)
  double start_seconds = 0.0;  ///< process_clock_seconds() at span entry
  double seconds = 0.0;        ///< span duration
};

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail

[[nodiscard]] inline bool tracing_enabled() noexcept {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}
inline void set_tracing_enabled(bool on) noexcept {
  detail::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

/// Bounded ring of completed spans (oldest dropped first).
class TraceLog {
 public:
  explicit TraceLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  void record(SpanRecord span);
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;
  [[nodiscard]] std::size_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  void clear();

  [[nodiscard]] static TraceLog& global();

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::size_t next_ = 0;  ///< ring cursor once spans_ is full
  std::atomic<std::size_t> dropped_{0};
};

/// RAII trace span: tracks per-thread nesting depth and, on destruction,
/// appends a SpanRecord to the global TraceLog.  No-op when tracing is off.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  /// Nesting depth of the innermost live span on this thread (0 = none).
  [[nodiscard]] static std::uint32_t current_depth() noexcept;

 private:
  const char* name_;  ///< null when disarmed
  std::uint32_t depth_ = 0;
  double start_seconds_ = 0.0;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace le::obs
