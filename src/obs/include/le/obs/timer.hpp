/// @file
/// RAII timing: ScopedTimer records a duration into a Histogram; TraceSpan
/// additionally logs a (name, thread, nesting depth, start, duration) record
/// into the bounded process-wide TraceLog so a coupled ML+HPC run can be
/// reconstructed after the fact.
///
/// Spans carry a TraceContext (trace_id / span_id / parent_span_id) so a
/// request that crosses a process boundary — the sharded serving service
/// routes batches to fork'd workers over `le-net-v1` — can be stitched back
/// into ONE causal trace: the router stamps its current context onto the
/// outgoing frame, the worker adopts it for the duration of the request
/// (TraceContextScope), and every worker-side span records the router's
/// span as its remote parent.  Records are also tagged with the recording
/// process's pid, so merged multi-process traces never collide on thread
/// ordinals (each forked worker starts its own ordinal space at 0).
///
/// Both are disabled-by-default and near-free when off: the constructor
/// reads one relaxed atomic flag and, if it is clear, never touches a clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "le/obs/metrics.hpp"

namespace le::obs {

/// Small dense id for the calling thread (0, 1, 2, ... in first-use order);
/// stable for the thread's lifetime.
[[nodiscard]] std::uint32_t this_thread_ordinal() noexcept;

/// Seconds since the process's first obs clock use (a steady clock).
/// Forked children inherit the parent's epoch when the parent touched the
/// clock before fork (ShardedService does), so router and worker
/// timestamps share one timeline in merged traces.
[[nodiscard]] double process_clock_seconds() noexcept;

/// Human-readable label for this process in exported traces ("router",
/// "shard-2", ...); defaults to "pid-<pid>" until set.  Set it once at
/// startup (or right after fork) — reads are lock-guarded copies.
void set_process_name(std::string name);
[[nodiscard]] std::string process_name();

/// Times its own lifetime into a histogram.  A null histogram or disabled
/// metrics makes construction and destruction no-ops.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) noexcept
      : histogram_(metrics_enabled() ? histogram : nullptr) {
    if (histogram_) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { (void)stop(); }

  /// Records now and disarms; returns the elapsed seconds (0 when
  /// disarmed).  Idempotent.
  double stop() noexcept {
    if (!histogram_) return 0.0;
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    histogram_->record(seconds);
    histogram_ = nullptr;
    return seconds;
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

/// Causal identity of one span, in the W3C trace-context spirit: all three
/// ids are 0 when absent.  trace_id groups every span of one logical
/// request across processes; parent_span_id is the span this one nests
/// under (possibly in another process).  Ids are unique across the fleet:
/// the upper 32 bits carry the allocating process's pid.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }
};

/// One completed span, as stored by the TraceLog.
struct SpanRecord {
  std::string name;
  std::uint32_t thread = 0;  ///< this_thread_ordinal() of the recording thread
  std::uint32_t depth = 0;   ///< nesting depth within that thread (0 = root)
  std::uint32_t pid = 0;     ///< recording process (forked workers differ)
  double start_seconds = 0.0;  ///< process_clock_seconds() at span entry
  double seconds = 0.0;        ///< span duration
  std::uint64_t trace_id = 0;        ///< request trace this span belongs to
  std::uint64_t span_id = 0;         ///< this span's fleet-unique id
  std::uint64_t parent_span_id = 0;  ///< enclosing span (0 = trace root)
};

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail

[[nodiscard]] inline bool tracing_enabled() noexcept {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}
inline void set_tracing_enabled(bool on) noexcept {
  detail::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

/// Context of the innermost live span on this thread; when no span is
/// live, the adopted remote context (TraceContextScope); invalid
/// otherwise.  This is what a router stamps onto an outgoing frame.
[[nodiscard]] TraceContext current_trace_context() noexcept;

/// Adopts a remote parent context for this scope: spans opened on this
/// thread while the scope is live (and not nested under a local span)
/// join `remote`'s trace with `remote.span_id` as their parent.  An
/// invalid context adopts nothing (so zeroed wire fields are a no-op).
/// Scopes nest; the previous adoption is restored on destruction.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& remote) noexcept;
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;
  ~TraceContextScope();

 private:
  TraceContext saved_;
};

/// Bounded ring of completed spans (oldest dropped first).
class TraceLog {
 public:
  explicit TraceLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  void record(SpanRecord span);
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;
  /// Atomically snapshots AND clears — the telemetry-push primitive: a
  /// worker drains its log into a frame so no span is shipped twice.
  [[nodiscard]] std::vector<SpanRecord> drain();
  [[nodiscard]] std::size_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  void clear();

  [[nodiscard]] static TraceLog& global();

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::size_t next_ = 0;  ///< ring cursor once spans_ is full
  std::atomic<std::size_t> dropped_{0};
};

/// RAII trace span: tracks per-thread nesting depth and, on destruction,
/// appends a SpanRecord to the global TraceLog.  No-op when tracing is off.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  /// This span's causal identity (all zeros when tracing is off) — what a
  /// caller serializes to parent remote work under this span.
  [[nodiscard]] TraceContext context() const noexcept {
    return {trace_id_, span_id_, parent_span_id_};
  }

  /// Nesting depth of the innermost live span on this thread (0 = none).
  [[nodiscard]] static std::uint32_t current_depth() noexcept;

 private:
  const char* name_;  ///< null when disarmed
  std::uint32_t depth_ = 0;
  double start_seconds_ = 0.0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_id_ = 0;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace le::obs
