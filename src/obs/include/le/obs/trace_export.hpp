/// @file
/// Chrome trace-event JSON export for TraceLog, multi-process aware.
///
/// A campaign traced with TraceSpan can be inspected in any trace viewer
/// that reads the Chrome trace-event format — Perfetto (ui.perfetto.dev),
/// chrome://tracing, Speedscope.  Spans are emitted as complete ("ph":"X")
/// events with microsecond timestamps on the process clock, one track per
/// (pid, obs thread ordinal) pair, plus process_name / thread_name
/// metadata records so tracks are labelled.  Each event's args carry the
/// span's trace context (trace_id / span_id / parent_span_id as hex
/// strings — u64 ids do not survive JSON's double precision), so a merged
/// router+worker trace is machine-checkable for causal coherence, not just
/// eyeballable.  Output is locale-independent JSON ('.' decimal always).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "le/obs/timer.hpp"

namespace le::obs {

/// Merges per-process span collections (a router's own log plus the spans
/// harvested from each worker) into one list ordered by start time — the
/// input shape to_chrome_trace expects for a fleet-wide trace.  Spans keep
/// their pid tags, so tracks never collide even though every forked worker
/// numbers its threads from 0.
[[nodiscard]] std::vector<SpanRecord> merge_process_spans(
    const std::vector<std::vector<SpanRecord>>& per_process);

/// Renders spans as one Chrome trace-event JSON object
/// ({"traceEvents":[...],"displayTimeUnit":"ms"}).  `process_names` labels
/// pid tracks (pid -> name); unnamed pids fall back to "pid-<pid>".
[[nodiscard]] std::string to_chrome_trace(
    const std::vector<SpanRecord>& spans,
    const std::map<std::uint32_t, std::string>& process_names = {});

/// Writes `spans` to `path` in Chrome trace-event format; false on I/O
/// failure.
bool write_chrome_trace(
    const std::string& path, const std::vector<SpanRecord>& spans,
    const std::map<std::uint32_t, std::string>& process_names = {});

/// Convenience: snapshots TraceLog::global() and writes it to `path`.
bool write_chrome_trace(const std::string& path);

}  // namespace le::obs
