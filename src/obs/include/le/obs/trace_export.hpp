/// @file
/// Chrome trace-event JSON export for TraceLog.
///
/// A campaign traced with TraceSpan can be inspected in any trace viewer
/// that reads the Chrome trace-event format — Perfetto (ui.perfetto.dev),
/// chrome://tracing, Speedscope.  Spans are emitted as complete ("ph":"X")
/// events with microsecond timestamps on the process clock, one track per
/// obs thread ordinal, plus thread_name metadata records so tracks are
/// labelled.  Output is locale-independent JSON ('.' decimal point always).
#pragma once

#include <string>
#include <vector>

#include "le/obs/timer.hpp"

namespace le::obs {

/// Renders spans as one Chrome trace-event JSON object
/// ({"traceEvents":[...],"displayTimeUnit":"ms"}).
[[nodiscard]] std::string to_chrome_trace(const std::vector<SpanRecord>& spans);

/// Writes `spans` to `path` in Chrome trace-event format; false on I/O
/// failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<SpanRecord>& spans);

/// Convenience: snapshots TraceLog::global() and writes it to `path`.
bool write_chrome_trace(const std::string& path);

}  // namespace le::obs
