/// @file
/// Online input-drift detection for served surrogates.
///
/// A trained surrogate is only trustworthy while queries stay inside its
/// training distribution (Section III-B: the model must "know when it
/// doesn't know").  InputDriftDetector snapshots per-feature reference
/// histograms from the training inputs and scores the live query stream
/// against them with two complementary statistics per feature:
///
///  - PSI (population stability index): sum over bins of
///    (p_live - p_ref) * ln(p_live / p_ref).  The industry-standard bands
///    are < 0.1 stable, 0.1-0.25 moderate shift, > 0.25 major shift.
///  - a binned KS statistic: max over bin edges of |CDF_ref - CDF_live|,
///    in [0, 1], robust to the smoothing PSI needs for empty bins.
///
/// Live samples outside the (padded) reference range clamp into the end
/// bins, so out-of-range drift shows up as end-bin mass rather than being
/// silently dropped.  observe() is a few adds per feature; scoring happens
/// once per completed window.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "le/tensor/matrix.hpp"

namespace le::obs {

struct DriftDetectorConfig {
  /// Histogram bins per feature.
  std::size_t bins = 16;
  /// Live queries per evaluation window.
  std::size_t window = 256;
  /// Fractional widening of each feature's reference range, so benign
  /// boundary jitter does not pile into the end bins.
  double range_padding = 0.05;
};

/// Drift scores of one feature over one window.
struct FeatureDriftScore {
  double psi = 0.0;
  double ks = 0.0;
};

/// Drift scores of one completed window, all features.
struct DriftReport {
  std::vector<FeatureDriftScore> per_feature;
  double max_psi = 0.0;
  double max_ks = 0.0;
  /// Feature index attaining max_psi.
  std::size_t worst_feature = 0;
  /// Samples scored in this window (0 = no window completed yet).
  std::size_t window_samples = 0;
  /// Windows evaluated since construction/rebase, including this one.
  std::uint64_t windows_evaluated = 0;
};

/// Scores a live query stream against per-feature reference histograms.
/// Thread-safe; observe() is cheap (one bin increment per feature).
class InputDriftDetector {
 public:
  /// Builds per-feature reference histograms from the rows of
  /// `reference_inputs` (typically Dataset::input_matrix() of the training
  /// corpus).  Throws std::invalid_argument on an empty reference or a
  /// degenerate config.
  InputDriftDetector(const tensor::Matrix& reference_inputs,
                     const DriftDetectorConfig& config = {});

  /// Accumulates one live query into the current window.  Input length
  /// must equal features(); non-finite components clamp into the end bins.
  void observe(std::span<const double> input);

  /// True when a full window of observations is waiting to be scored.
  [[nodiscard]] bool window_ready() const;

  /// Scores the current window against the reference (even if it is only
  /// partially full), records it as the last report, and starts a new
  /// window.  Returns an empty report when no samples were observed.
  DriftReport evaluate();

  /// The most recent evaluate() result (default-constructed before any).
  [[nodiscard]] DriftReport last_report() const;

  /// Replaces the reference distribution (after retraining on a new
  /// corpus) and discards the current window and report history.
  void rebase(const tensor::Matrix& reference_inputs);

  [[nodiscard]] std::size_t features() const;
  [[nodiscard]] const DriftDetectorConfig& config() const noexcept {
    return config_;
  }

 private:
  void fit_reference_locked(const tensor::Matrix& reference_inputs);
  [[nodiscard]] std::size_t bin_of_locked(std::size_t feature,
                                          double value) const;

  DriftDetectorConfig config_;
  mutable std::mutex mutex_;
  std::size_t features_ = 0;
  /// Padded per-feature bin ranges.
  std::vector<double> lo_;
  std::vector<double> hi_;
  /// Reference bin proportions, features_ x bins row-major.
  std::vector<double> reference_;
  /// Live window bin counts, features_ x bins row-major.
  std::vector<std::uint64_t> live_;
  std::size_t window_count_ = 0;
  std::uint64_t windows_evaluated_ = 0;
  DriftReport last_;
};

}  // namespace le::obs
