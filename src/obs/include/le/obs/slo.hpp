/// @file
/// Multi-window burn-rate alerting over a service-level objective.
///
/// The serving stack promises deadline attainment (E17/E18 hold p99 inside
/// budget); an SLO makes the promise quantitative — "99% of requests meet
/// their deadline" — and the *error budget* (the tolerated 1%) is what an
/// operator actually spends.  Threshold-on-error-rate alerts are either
/// too twitchy (one bad window pages at 3 a.m.) or too slow (a slow leak
/// exhausts the budget before a long-window average moves), so SloTracker
/// implements the multi-window burn-rate rule from the SRE literature: the
/// burn rate is the error-rate as a multiple of the budget rate
/// (burn 1 = exactly spending the budget; burn 14 = spending a month of
/// budget in ~2 days), and an alert fires only when BOTH a fast window
/// (catches it quickly, flaps alone) and a slow window (confirms it is
/// real, lags alone) exceed their thresholds.  The alert resolves when
/// both windows fall back to burn <= resolve_burn.
///
/// Alerts are typed events (SloAlert) delivered to an optional callback —
/// the degradation ladder subscribes via
/// serve::DegradationLadder::engage_at_least, turning budget exhaustion
/// risk into a deliberate brownout instead of a missed SLO.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace le::obs {

class Counter;
class Gauge;
class MetricsRegistry;

struct SloConfig {
  /// Target good fraction (e.g. 0.99 = "99% of events good"); the error
  /// budget rate is 1 - objective.  Must lie strictly inside (0, 1).
  double objective = 0.99;
  /// Event counts of the two sliding windows; fast <= slow, both > 0.
  std::size_t fast_window = 64;
  std::size_t slow_window = 512;
  /// Firing thresholds: fire when fast burn >= fast_burn AND slow burn >=
  /// slow_burn.  The classic page rule is {14.4, 6} for {5m, 1h} windows;
  /// event-count windows keep the same shape.
  double fast_burn = 14.0;
  double slow_burn = 6.0;
  /// A firing alert resolves when both burns fall to <= resolve_burn
  /// (burn 1 = spending exactly the budget — sustainable by definition).
  double resolve_burn = 1.0;
};

/// One typed alert transition, as delivered to the callback.
struct SloAlert {
  bool firing = false;  ///< true = fired, false = resolved
  double fast_burn_rate = 0.0;
  double slow_burn_rate = 0.0;
  std::uint64_t events = 0;      ///< total events recorded at transition
  std::uint64_t bad_events = 0;  ///< total budget spent at transition
};

struct SloStats {
  std::uint64_t events = 0;
  std::uint64_t bad_events = 0;
  std::uint64_t alerts_fired = 0;
  std::uint64_t alerts_resolved = 0;
  bool firing = false;
  double fast_burn_rate = 0.0;
  double slow_burn_rate = 0.0;
};

/// Thread-safe; record() is a few ring-buffer updates under one mutex.
/// The alert callback is invoked outside the lock (re-entrant calls into
/// the tracker from a callback are safe), on the recording thread.
class SloTracker {
 public:
  explicit SloTracker(const SloConfig& config);

  /// One SLO event: true = within objective (deadline met), false = budget
  /// spent.  Evaluates the burn-rate rule and may emit an alert.
  void record(bool good);

  /// Burn rates over the current windows (0 while a window is empty).
  [[nodiscard]] double fast_burn_rate() const;
  [[nodiscard]] double slow_burn_rate() const;
  [[nodiscard]] bool firing() const;
  [[nodiscard]] SloStats stats() const;
  [[nodiscard]] const SloConfig& config() const noexcept { return config_; }

  /// Transition callback (fire AND resolve events); replaces any previous.
  void set_alert_callback(std::function<void(const SloAlert&)> callback);

  /// Publishes burn-rate/state gauges and transition counters under
  /// "<prefix>.*".
  void enable_metrics(MetricsRegistry& registry,
                      const std::string& prefix = "slo");

 private:
  /// Fixed-capacity good/bad ring with a running bad count.
  struct Window {
    explicit Window(std::size_t capacity) : ring(capacity, 0) {}
    std::vector<std::uint8_t> ring;
    std::size_t next = 0;
    std::size_t size = 0;
    std::uint64_t bad = 0;

    void push(bool is_bad);
    [[nodiscard]] double bad_fraction() const;
  };

  [[nodiscard]] double burn_of(const Window& w) const;

  SloConfig config_;
  mutable std::mutex mutex_;
  Window fast_;
  Window slow_;
  SloStats stats_;
  std::function<void(const SloAlert&)> callback_;

  Gauge* metric_fast_burn_ = nullptr;
  Gauge* metric_slow_burn_ = nullptr;
  Gauge* metric_firing_ = nullptr;
  Counter* metric_fired_ = nullptr;
  Counter* metric_resolved_ = nullptr;
  Counter* metric_bad_ = nullptr;
};

}  // namespace le::obs
