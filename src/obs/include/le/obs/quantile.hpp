/// @file
/// Streaming quantile estimation for latency telemetry.
///
/// The fixed-bucket obs::Histogram answers quantile queries with up to one
/// power-of-two bucket (2x) of error — fine for order-of-magnitude contrasts,
/// useless for "did p99 regress 10%?".  P2Quantile implements the P-squared
/// algorithm (Jain & Chlamtac, CACM 1985): five markers track the running
/// quantile with piecewise-parabolic interpolation in O(1) memory and a few
/// flops per observation, no sample buffer.  QuantileSketch bundles the
/// p50/p95/p99 trio behind one spinlock so a histogram (or a bench loop) can
/// report true tail latencies.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace le::obs {

/// One P-squared marker set tracking a single quantile q in (0, 1).
///
/// Not thread-safe on its own (QuantileSketch adds the lock); exact — a true
/// order statistic — until five observations exist, an O(1) estimate after.
/// Non-finite observations are ignored (latencies are finite by
/// construction; a NaN must not poison the markers).
class P2Quantile {
 public:
  explicit P2Quantile(double q) noexcept;

  void add(double x) noexcept;

  /// Current estimate; 0 before the first observation.
  [[nodiscard]] double value() const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double probability() const noexcept { return q_; }
  void reset() noexcept;

 private:
  [[nodiscard]] double parabolic(std::size_t i, double sign) const noexcept;
  [[nodiscard]] double linear(std::size_t i, double sign) const noexcept;

  double q_;
  std::array<double, 5> height_{};    ///< marker heights (quantile estimates)
  std::array<double, 5> position_{};  ///< actual marker positions (1-based)
  std::array<double, 5> desired_{};   ///< desired marker positions
  std::array<double, 5> increment_{}; ///< desired-position increment per add
  std::uint64_t count_ = 0;
};

/// The p50/p95/p99 trio behind one spinlock.
///
/// add() costs three P-squared updates (~a few tens of flops) under an
/// atomic_flag spinlock; the critical section is short and contention-free
/// in the common one-writer case, so the sketch can sit next to wait-free
/// histogram recording without changing its cost class.
class QuantileSketch {
 public:
  QuantileSketch() noexcept;

  void add(double x) noexcept;

  struct Quantiles {
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::uint64_t count = 0;
  };
  [[nodiscard]] Quantiles quantiles() const noexcept;
  void reset() noexcept;

 private:
  void lock() const noexcept;
  void unlock() const noexcept;

  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  std::array<P2Quantile, 3> estimators_;
};

/// Exact quantiles over a sliding window of the most recent observations.
///
/// P-squared estimators converge on the *whole* stream, which makes them
/// the wrong tool for control loops that must react to the last few
/// hundred milliseconds (the degradation ladder): an hour of calm history
/// drowns a ten-second overload spike.  WindowedQuantile keeps the last
/// `capacity` samples in a ring buffer and answers quantile queries
/// exactly over that window via nth_element — O(capacity) per query, which
/// is fine for the evaluate-every-N-samples cadence of a brownout
/// controller.  Non-finite observations are ignored.  Not thread-safe:
/// callers (serve::DegradationLadder) provide their own lock.
class WindowedQuantile {
 public:
  explicit WindowedQuantile(std::size_t capacity);

  void add(double x) noexcept;

  /// The q-quantile (q in [0, 1]) of the current window; 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// Observations currently in the window (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return window_.size();
  }
  void reset() noexcept;

 private:
  std::vector<double> window_;
  std::size_t next_ = 0;  ///< ring cursor
  std::size_t size_ = 0;
  mutable std::vector<double> scratch_;  ///< nth_element workspace
};

}  // namespace le::obs
