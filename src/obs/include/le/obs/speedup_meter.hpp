/// @file
/// Live Section III-D accounting.
///
/// The paper's central quantitative claim is the effective speedup
///
///            T_seq * (N_lookup + N_train)
///   S = --------------------------------------------
///       T_lookup * N_lookup + (T_train + T_learn) * N_train
///
/// computed offline by bench_effective_speedup from one-off measurements.
/// EffectiveSpeedupMeter measures the same four times *as a campaign runs*:
/// every surrogate answer contributes to T_lookup, every training-set
/// simulation to T_train, every surrogate (re)training to T_learn, and
/// optional sequential-baseline runs to T_seq.  snapshot() then reports the
/// live S and its two limits at any point in the run.
///
/// Recording is wait-free (relaxed atomics), so the meter can sit on the
/// dispatcher's hot path.  Unlike the MetricsRegistry plumbing it has no
/// global on/off switch: a component records only when a meter was
/// explicitly attached, which is already an opt-in.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace le::obs {

class EffectiveSpeedupMeter {
 public:
  /// One surrogate inference answered in `seconds` (an N_lookup unit).
  void record_lookup(double seconds) noexcept { record_lookups(1, seconds); }
  /// `n` surrogate inferences answered in `total_seconds` altogether
  /// (bulk sweeps: one clock read for a whole candidate pool).
  void record_lookups(std::size_t n, double total_seconds) noexcept;
  /// One real simulation whose result feeds training (an N_train unit).
  void record_train(double seconds) noexcept;
  /// Surrogate-training wall time; amortized over N_train in the model.
  void record_learn(double seconds) noexcept;
  /// One sequential full-fidelity baseline run (defines T_seq).  When no
  /// baseline is ever recorded T_seq falls back to T_train — on uniform
  /// hardware a training run *is* a sequential run, which is exactly the
  /// approximation bench_effective_speedup makes.
  void record_seq_baseline(double seconds) noexcept;

  struct Snapshot {
    std::size_t n_lookup = 0;
    std::size_t n_train = 0;
    std::size_t seq_samples = 0;
    double lookup_seconds = 0.0;
    double train_seconds = 0.0;
    double learn_seconds = 0.0;
    double seq_seconds = 0.0;

    [[nodiscard]] double t_lookup() const noexcept;
    [[nodiscard]] double t_train() const noexcept;
    [[nodiscard]] double t_learn() const noexcept;
    [[nodiscard]] double t_seq() const noexcept;

    /// The live Section III-D effective speedup; 0 until any work exists.
    [[nodiscard]] double speedup() const noexcept;
    /// S as N_lookup -> 0: T_seq / (T_train + T_learn).
    [[nodiscard]] double no_ml_limit() const noexcept;
    /// S as N_lookup >> N_train: T_seq / T_lookup ("can be huge").
    [[nodiscard]] double lookup_limit() const noexcept;

    /// One human-readable line: S, both limits, counts.
    [[nodiscard]] std::string summary() const;

    /// Accumulates another meter's counters into this snapshot — the
    /// aggregation primitive for sharded serving, where every worker
    /// process owns its own meter and the router merges the per-shard
    /// snapshots into one fleet-wide Section III-D accounting.  Counters
    /// and wall-time sums add component-wise, so the merged speedup() is
    /// the S of the combined workload (NOT a mean of per-shard speedups,
    /// which would be meaningless for a ratio of sums).
    void merge(const Snapshot& other) noexcept;
  };

  [[nodiscard]] Snapshot snapshot() const noexcept;
  void reset() noexcept;

  /// Overwrites the counters with a previously taken snapshot — used by
  /// checkpoint/restart so the live S of a resumed campaign accounts for
  /// the work done before the crash, not just since the restart.
  void restore(const Snapshot& snapshot) noexcept;

  /// Process-wide meter for components that are not handed one explicitly.
  [[nodiscard]] static EffectiveSpeedupMeter& global();

 private:
  std::atomic<std::uint64_t> n_lookup_{0};
  std::atomic<std::uint64_t> n_train_{0};
  std::atomic<std::uint64_t> n_seq_{0};
  std::atomic<double> lookup_seconds_{0.0};
  std::atomic<double> train_seconds_{0.0};
  std::atomic<double> learn_seconds_{0.0};
  std::atomic<double> seq_seconds_{0.0};
};

}  // namespace le::obs
