/// @file
/// Crash flight recorder: a fixed-size lock-free ring of recent events that
/// can be dumped to disk from a fatal-signal handler.
///
/// Metrics say *how much*; traces say *where time went*; neither survives a
/// SIGSEGV.  The flight recorder is the black box: every worker keeps the
/// last N interesting events (span completions, protocol milestones,
/// degradation transitions) in a preallocated ring, and on the way down —
/// fatal signal, router disappearance, or a periodic telemetry push — dumps
/// the ring to a CRC-framed file the router harvests for postmortems.
/// SIGKILL cannot be caught, so the periodic dump cadence is the honesty
/// mechanism: after a kill -9 the harvested file is as fresh as the last
/// cadence point, never absent.
///
/// Constraints that shape the design:
///  - record() is noexcept, allocation-free and lock-free (one relaxed
///    fetch_add + a seqlock-stamped 64-byte slot write) so it is safe on
///    hot paths and cheap enough to leave on in production.
///  - dump() is async-signal-safe: no malloc, no locks, no stdio — it
///    serializes the ring into a buffer preallocated by configure() and
///    uses raw ::open/::write/::close.  Slots caught mid-write by the
///    seqlock check are skipped, not torn.
///  - The on-disk format (`le-frec-v1`) is byte-wise little-endian with a
///    trailing ckpt::crc32, so a dump truncated by the dying process is
///    detected, not misparsed.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace le::obs {

/// One ring slot: a timestamp, a 31-char label and two free-form payload
/// words (span ids, durations, shard indices — caller's choice).
struct FlightEvent {
  static constexpr std::size_t kNameBytes = 32;

  double t_seconds = 0.0;    ///< process_clock_seconds() at record time
  std::uint64_t a = 0;       ///< payload word A (e.g. span_id)
  std::uint64_t b = 0;       ///< payload word B (e.g. duration in ns)
  std::uint32_t pid = 0;     ///< recording process
  std::uint32_t thread = 0;  ///< this_thread_ordinal() of the recorder
  char name[kNameBytes] = {};  ///< NUL-terminated label (truncated to fit)
};

/// A parsed `le-frec-v1` dump file.
struct FlightDump {
  std::uint32_t pid = 0;
  std::vector<FlightEvent> events;  ///< oldest first
};

/// A dump file failed validation (bad magic/version, truncation, CRC
/// mismatch).  Typed so the harvesting router can count corrupt dumps
/// separately from missing ones.
class FlightDumpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class FlightRecorder {
 public:
  static constexpr std::uint32_t kDefaultCapacity = 1024;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  /// Arms the recorder: preallocates the ring (`capacity` slots) and the
  /// dump buffer, and remembers `path` (copied into fixed storage — dump()
  /// must not touch std::string).  Calling again reconfigures (drops prior
  /// events).  Not thread-safe against concurrent record(); call before
  /// the threads that record.
  void configure(const std::string& path,
                 std::uint32_t capacity = kDefaultCapacity);

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Appends one event (lock-free, allocation-free, noexcept; no-op when
  /// unconfigured).  `name` is truncated to 31 bytes.
  void record(const char* name, std::uint64_t a = 0,
              std::uint64_t b = 0) noexcept;

  /// Serializes the ring to the configured path (async-signal-safe).
  /// Returns false when unconfigured or any syscall fails.  Safe to call
  /// repeatedly — each call writes a staging file ("<path>.tmp") and
  /// ::rename()s it into place, so a reader (or a SIGKILL landing
  /// mid-dump) sees either the previous complete dump or the new one,
  /// never a truncated in-between.
  bool dump() noexcept;

  /// Events currently in the ring, oldest first (for tests/telemetry; NOT
  /// signal-safe — may observe slots mid-write and skip them).
  [[nodiscard]] std::vector<FlightEvent> events() const;

  /// Total record() calls since configure().
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return cursor_.load(std::memory_order_relaxed);
  }

  /// The process-wide recorder the built-in hooks (TraceSpan completions,
  /// ShardedService workers) report to.
  [[nodiscard]] static FlightRecorder& global();

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< seqlock: odd = write in progress
    FlightEvent event;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> cursor_{0};
  std::vector<Slot> slots_;
  std::vector<unsigned char> dump_buffer_;  ///< preallocated by configure()
  char path_[256] = {};                     ///< C string for ::rename in handler
  char tmp_path_[264] = {};                 ///< staging file; see dump()
};

/// Installs fatal-signal handlers (SIGSEGV, SIGABRT, SIGBUS, SIGILL,
/// SIGFPE) that dump FlightRecorder::global() and then re-raise with the
/// default disposition, so the process still dies with the original signal
/// (and exit-status reporting upstream stays truthful).  Idempotent.
void install_flight_signal_handlers();

/// When enabled, every completed TraceSpan also records a flight event
/// ("span:<name>", a = span_id, b = duration in microseconds) into
/// FlightRecorder::global() — the black box then holds the tail of the
/// trace without a second instrumentation pass.  Off by default.
void set_flight_span_hook_enabled(bool on) noexcept;
[[nodiscard]] bool flight_span_hook_enabled() noexcept;

/// Parses a `le-frec-v1` dump file; throws FlightDumpError on bad magic,
/// version skew, truncation or CRC mismatch.
[[nodiscard]] FlightDump read_flight_dump(const std::string& path);

}  // namespace le::obs
