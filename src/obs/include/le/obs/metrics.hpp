/// @file
/// Observability primitives for the MLaroundHPC runtime (le::obs).
///
/// The paper's effective-speedup model (Section III-D) is only actionable
/// if a running campaign can see where its time goes; "Understanding ML
/// driven HPC" (Fox & Jha, 2019) calls monitoring of coupled ML+simulation
/// loops first-class infrastructure.  This header provides the low-level
/// pieces: counters, gauges and fixed-bucket latency histograms collected
/// in a MetricsRegistry, all safe for concurrent update.
///
/// Cost model: metrics are OFF by default.  The only expense on a hot path
/// when disabled is one relaxed atomic load (metrics_enabled()) or a null
/// handle check; no clocks are read and no locks are taken.  When enabled,
/// updates are lock-free atomics; the registry mutex is touched only when
/// a handle is first acquired by name and when a snapshot is taken.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "le/obs/quantile.hpp"

namespace le::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// Global on/off switch for all metric collection (default off).
[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
inline void set_metrics_enabled(bool on) noexcept {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Latency histogram over fixed power-of-two buckets of nanoseconds.
///
/// Bucket i covers (2^(i-1), 2^i] ns, so the range spans 1 ns to ~9 min;
/// values outside clamp to the end buckets.  Recording is wait-free for the
/// bucket/sum/min/max path (relaxed atomic adds; min/max via CAS) plus one
/// short spinlocked P-squared update feeding the p50/p95/p99 sketch.
/// quantile() reads the bucket upper bounds, i.e. it carries at most
/// one-bucket (2x) error for arbitrary q; tail_quantiles() reads the sketch
/// for true p50/p95/p99.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 40;

  /// Upper bound (seconds) of bucket i.
  [[nodiscard]] static double bucket_upper_bound(std::size_t i) noexcept;
  /// Bucket index a duration in seconds lands in.
  [[nodiscard]] static std::size_t bucket_index(double seconds) noexcept;

  void record(double seconds) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  /// Approximate quantile (q in [0, 1]) from the bucket upper bounds.
  [[nodiscard]] double quantile(double q) const noexcept;
  /// True p50/p95/p99 from the P-squared sketch (no bucket rounding).
  [[nodiscard]] QuantileSketch::Quantiles tail_quantiles() const noexcept {
    return sketch_.quantiles();
  }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  ///< valid only when count_ > 0
  std::atomic<double> max_{0.0};
  QuantileSketch sketch_;
};

/// Two snapshots disagree structurally (histogram bucket layouts of
/// different sizes under one name) — merging them would add apples to the
/// first `n` oranges.  Typed so a telemetry pipeline can distinguish
/// "schema skew between processes" from any other failure.
class SnapshotMergeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Point-in-time copy of every registered metric, ready for export.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct HistogramEntry {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /// Per-bucket counts (Histogram::bucket_counts() layout).  Carried so
    /// snapshots from different processes can merge exactly; may be empty
    /// for snapshots that never cross a merge (JSON export omits it).
    std::vector<std::uint64_t> buckets;
  };
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  /// Accumulates `other` into this snapshot — the aggregation primitive
  /// for the distributed telemetry plane, where every worker process
  /// snapshots its own registry and the router folds the per-shard
  /// snapshots into one fleet view.  By name: counters add; gauges take
  /// `other`'s value (last write wins — the incoming snapshot is newer);
  /// histograms add counts, sums and per-bucket counts component-wise,
  /// keep min/min and max/max, recompute the mean, and re-derive
  /// p50/p95/p99 from the merged buckets (bucket-upper-bound precision —
  /// P-squared sketches cannot be merged exactly).  Disjoint metric sets
  /// union; an empty snapshot on either side is the identity.  Histograms
  /// under one name with differently sized non-empty bucket vectors throw
  /// SnapshotMergeError (typed, never silent misaccounting).
  void merge(const MetricsSnapshot& other);
};

/// Named metric store.  Handles returned by counter()/gauge()/histogram()
/// are stable for the registry's lifetime: acquire once, update lock-free
/// forever after.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Copies every metric, sorted by name within each kind.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every metric; registrations (and handles) stay valid.
  void reset();

  /// The process-wide registry the built-in instrumentation reports to.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Renders a snapshot as a single-line JSON object (locale-independent:
/// always '.' decimal point, so exports are portable between hosts).
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

/// Renders a snapshot as an aligned human-readable table.
[[nodiscard]] std::string to_text(const MetricsSnapshot& snapshot);

/// Renders a snapshot in the Prometheus text exposition format: metric
/// names sanitized to [a-zA-Z0-9_:] with an "le_" prefix, counters as
/// `counter` with an `_total` suffix, gauges as `gauge`, histograms as
/// `summary` (quantile-labelled series plus `_sum`/`_count`).  One
/// "scrape" of the plane for anyone pointing standard tooling at it.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

}  // namespace le::obs
