#include "le/obs/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "le/obs/timer.hpp"

namespace le::obs {

namespace {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) — the same function as
/// ckpt::crc32, re-derived here with a compile-time table: obs sits below
/// ckpt in the layering, and a constexpr table has no first-use guard, so
/// dump() can checksum from inside a signal handler.
constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

std::uint32_t crc32_bytes(const unsigned char* data, std::size_t len) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = kCrcTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// `le-frec-v1` layout (byte-wise little-endian):
//   u32 magic "LEFR" | u16 version | u16 reserved | u32 pid | u32 count
//   count * 64-byte entries:
//     f64 t_seconds | u64 a | u64 b | u32 pid | u32 thread | char name[32]
//   u32 crc32 over every preceding byte
constexpr std::uint32_t kFlightMagic = 0x5246454Cu;  // "LEFR"
constexpr std::uint16_t kFlightVersion = 1;
constexpr std::size_t kFlightHeaderBytes = 16;
constexpr std::size_t kFlightEntryBytes = 64;

void put_u16(unsigned char* p, std::uint16_t v) noexcept {
  p[0] = static_cast<unsigned char>(v & 0xFF);
  p[1] = static_cast<unsigned char>((v >> 8) & 0xFF);
}

void put_u32(unsigned char* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
}

void put_u64(unsigned char* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
}

std::uint16_t get_u16(const unsigned char* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void serialize_event(unsigned char* p, const FlightEvent& e) noexcept {
  put_u64(p + 0, std::bit_cast<std::uint64_t>(e.t_seconds));
  put_u64(p + 8, e.a);
  put_u64(p + 16, e.b);
  put_u32(p + 24, e.pid);
  put_u32(p + 28, e.thread);
  std::memcpy(p + 32, e.name, FlightEvent::kNameBytes);
}

FlightEvent deserialize_event(const unsigned char* p) noexcept {
  FlightEvent e;
  e.t_seconds = std::bit_cast<double>(get_u64(p + 0));
  e.a = get_u64(p + 8);
  e.b = get_u64(p + 16);
  e.pid = get_u32(p + 24);
  e.thread = get_u32(p + 28);
  std::memcpy(e.name, p + 32, FlightEvent::kNameBytes);
  e.name[FlightEvent::kNameBytes - 1] = '\0';
  return e;
}

/// Full ::write loop tolerant of EINTR/short writes (async-signal-safe).
bool write_all(int fd, const unsigned char* data, std::size_t len) noexcept {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

std::atomic<bool> g_flight_span_hook{false};

}  // namespace

FlightRecorder::~FlightRecorder() = default;

void FlightRecorder::configure(const std::string& path,
                               std::uint32_t capacity) {
  enabled_.store(false, std::memory_order_release);
  if (capacity == 0) capacity = 1;
  slots_ = std::vector<Slot>(capacity);
  dump_buffer_.assign(
      kFlightHeaderBytes + static_cast<std::size_t>(capacity) *
                               kFlightEntryBytes + 4,
      0);
  std::memset(path_, 0, sizeof(path_));
  std::strncpy(path_, path.c_str(), sizeof(path_) - 1);
  std::memset(tmp_path_, 0, sizeof(tmp_path_));
  std::strncpy(tmp_path_, path_, sizeof(tmp_path_) - 5);
  std::strcat(tmp_path_, ".tmp");
  cursor_.store(0, std::memory_order_relaxed);
  // Warm the clock epoch now: dump() timestamps may be read inside a signal
  // handler, where a first-use static initialization (and its guard lock)
  // would not be safe.  (The CRC table is constexpr — nothing to warm.)
  (void)process_clock_seconds();
  enabled_.store(true, std::memory_order_release);
}

void FlightRecorder::record(const char* name, std::uint64_t a,
                            std::uint64_t b) noexcept {
  if (!enabled()) return;
  const std::uint64_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx % slots_.size()];
  // Seqlock stamp: odd while the slot is being written.  Two writers
  // lapping onto the same slot could in principle interleave; the ring is
  // sized far above writer count, and dump() only skips, never tears.
  slot.seq.fetch_add(1, std::memory_order_acq_rel);
  slot.event.t_seconds = process_clock_seconds();
  slot.event.a = a;
  slot.event.b = b;
  slot.event.pid = static_cast<std::uint32_t>(::getpid());
  slot.event.thread = this_thread_ordinal();
  if (name != nullptr) {
    std::strncpy(slot.event.name, name, FlightEvent::kNameBytes - 1);
    slot.event.name[FlightEvent::kNameBytes - 1] = '\0';
  } else {
    slot.event.name[0] = '\0';
  }
  slot.seq.fetch_add(1, std::memory_order_release);
}

bool FlightRecorder::dump() noexcept {
  if (!enabled()) return false;
  unsigned char* buf = dump_buffer_.data();
  const std::uint64_t end = cursor_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t begin = end > cap ? end - cap : 0;

  std::size_t pos = kFlightHeaderBytes;
  std::uint32_t count = 0;
  for (std::uint64_t i = begin; i < end; ++i) {
    Slot& slot = slots_[i % cap];
    const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
    if (seq1 & 1) continue;  // mid-write: skip rather than tear
    FlightEvent copy = slot.event;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq1) continue;
    serialize_event(buf + pos, copy);
    pos += kFlightEntryBytes;
    ++count;
  }
  put_u32(buf + 0, kFlightMagic);
  put_u16(buf + 4, kFlightVersion);
  put_u16(buf + 6, 0);
  put_u32(buf + 8, static_cast<std::uint32_t>(::getpid()));
  put_u32(buf + 12, count);
  const std::uint32_t crc = crc32_bytes(buf, pos);
  put_u32(buf + pos, crc);
  pos += 4;

  // Stage-then-rename: a dump interrupted mid-write (the process can be
  // SIGKILLed at any instant) must never clobber the previous complete
  // dump — the black box's newest intact recording is the whole point.
  // Both ::open/::write and ::rename are async-signal-safe.
  const int fd = ::open(tmp_path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = write_all(fd, buf, pos);
  ::close(fd);
  if (!ok) return false;
  return ::rename(tmp_path_, path_) == 0;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  if (!enabled()) return out;
  const std::uint64_t end = cursor_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t begin = end > cap ? end - cap : 0;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t i = begin; i < end; ++i) {
    const Slot& slot = slots_[i % cap];
    const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
    if (seq1 & 1) continue;
    FlightEvent copy = slot.event;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq1) continue;
    out.push_back(copy);
  }
  return out;
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

namespace {

extern "C" void flight_fatal_handler(int sig) {
  FlightRecorder::global().dump();
  // SA_RESETHAND restored the default disposition; re-raise so the process
  // dies with the original signal and wait-status reporting stays truthful.
  ::raise(sig);
}

}  // namespace

void install_flight_signal_handlers() {
  static std::atomic<bool> installed{false};
  if (installed.exchange(true)) return;
  (void)FlightRecorder::global();  // force static init outside handlers
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = flight_fatal_handler;
  sa.sa_flags = SA_RESETHAND;
  sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGILL, SIGFPE}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

void set_flight_span_hook_enabled(bool on) noexcept {
  g_flight_span_hook.store(on, std::memory_order_relaxed);
}

bool flight_span_hook_enabled() noexcept {
  return g_flight_span_hook.load(std::memory_order_relaxed);
}

FlightDump read_flight_dump(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw FlightDumpError("flight dump unreadable: " + path);
  std::vector<unsigned char> bytes{std::istreambuf_iterator<char>(file),
                                   std::istreambuf_iterator<char>()};
  if (bytes.size() < kFlightHeaderBytes + 4) {
    throw FlightDumpError("flight dump truncated (header): " + path);
  }
  const unsigned char* p = bytes.data();
  if (get_u32(p) != kFlightMagic) {
    throw FlightDumpError("flight dump bad magic: " + path);
  }
  const std::uint16_t version = get_u16(p + 4);
  if (version != kFlightVersion) {
    throw FlightDumpError("flight dump version skew (got " +
                          std::to_string(version) + ", want " +
                          std::to_string(kFlightVersion) + "): " + path);
  }
  FlightDump dump;
  dump.pid = get_u32(p + 8);
  const std::uint32_t count = get_u32(p + 12);
  const std::size_t body = kFlightHeaderBytes +
                           static_cast<std::size_t>(count) * kFlightEntryBytes;
  if (bytes.size() != body + 4) {
    throw FlightDumpError("flight dump truncated (body): " + path);
  }
  const std::uint32_t expected = get_u32(p + body);
  const std::uint32_t actual = crc32_bytes(p, body);
  if (expected != actual) {
    throw FlightDumpError("flight dump CRC mismatch: " + path);
  }
  dump.events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    dump.events.push_back(
        deserialize_event(p + kFlightHeaderBytes + i * kFlightEntryBytes));
  }
  return dump;
}

}  // namespace le::obs
