#include "le/obs/timer.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>

#include "le/obs/flight_recorder.hpp"

namespace le::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace detail

namespace {

std::chrono::steady_clock::time_point process_epoch() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Per-thread trace state: the stack of live span ids (fixed-size so span
/// construction stays noexcept and allocation-free), the trace the stack
/// belongs to, and an adopted remote parent for cross-process stitching.
struct TraceThreadState {
  static constexpr std::uint32_t kMaxStack = 64;
  std::array<std::uint64_t, kMaxStack> stack{};
  std::uint32_t depth = 0;      ///< live spans on this thread (may exceed
                                ///< kMaxStack; extra levels share a parent)
  std::uint64_t trace_id = 0;   ///< trace of the current stack (depth > 0)
  TraceContext adopted{};       ///< remote parent adopted by scope
};

thread_local TraceThreadState t_trace;

std::mutex& process_name_mutex() {
  static std::mutex m;
  return m;
}

std::string& process_name_storage() {
  static std::string name;
  return name;
}

/// Fleet-unique span id: pid in the upper 32 bits, a process-local counter
/// below.  getpid() is read per allocation (not cached) so ids stay correct
/// across fork without any at-fork hook.
std::uint64_t next_span_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed) + 1;
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(::getpid()))
          << 32) |
         (n & 0xFFFFFFFFULL);
}

}  // namespace

std::uint32_t this_thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

double process_clock_seconds() noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       process_epoch())
      .count();
}

void set_process_name(std::string name) {
  const std::lock_guard<std::mutex> lock(process_name_mutex());
  process_name_storage() = std::move(name);
}

std::string process_name() {
  {
    const std::lock_guard<std::mutex> lock(process_name_mutex());
    if (!process_name_storage().empty()) return process_name_storage();
  }
  return "pid-" + std::to_string(::getpid());
}

TraceContext current_trace_context() noexcept {
  const TraceThreadState& s = t_trace;
  if (s.depth > 0) {
    const std::uint32_t top =
        std::min(s.depth, TraceThreadState::kMaxStack) - 1;
    TraceContext ctx;
    ctx.trace_id = s.trace_id;
    ctx.span_id = s.stack[top];
    // The parent of the *current* span is not tracked here; callers that
    // need it hold the TraceSpan and use TraceSpan::context().
    return ctx;
  }
  return s.adopted;
}

TraceContextScope::TraceContextScope(const TraceContext& remote) noexcept
    : saved_(t_trace.adopted) {
  if (remote.valid()) t_trace.adopted = remote;
}

TraceContextScope::~TraceContextScope() { t_trace.adopted = saved_; }

void TraceLog::record(SpanRecord span) {
  std::lock_guard lock(mutex_);
  if (spans_.size() < capacity_) {
    spans_.push_back(std::move(span));
    return;
  }
  if (capacity_ == 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_[next_] = std::move(span);
  next_ = (next_ + 1) % capacity_;
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> TraceLog::snapshot() const {
  std::lock_guard lock(mutex_);
  // Rotate so the returned order is oldest-first.
  std::vector<SpanRecord> out;
  out.reserve(spans_.size());
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    out.push_back(spans_[(next_ + i) % spans_.size()]);
  }
  return out;
}

std::vector<SpanRecord> TraceLog::drain() {
  std::lock_guard lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(spans_.size());
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    out.push_back(std::move(spans_[(next_ + i) % spans_.size()]));
  }
  spans_.clear();
  next_ = 0;
  return out;
}

void TraceLog::clear() {
  std::lock_guard lock(mutex_);
  spans_.clear();
  next_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
}

TraceLog& TraceLog::global() {
  static TraceLog log;
  return log;
}

TraceSpan::TraceSpan(const char* name) noexcept
    : name_(tracing_enabled() ? name : nullptr) {
  if (!name_) return;
  TraceThreadState& s = t_trace;
  span_id_ = next_span_id();
  if (s.depth > 0) {
    // Nested under a local span: same trace, parent = innermost live span.
    const std::uint32_t top =
        std::min(s.depth, TraceThreadState::kMaxStack) - 1;
    trace_id_ = s.trace_id;
    parent_span_id_ = s.stack[top];
  } else if (s.adopted.valid()) {
    // Thread root under an adopted remote parent: stitch across the
    // process boundary.
    trace_id_ = s.adopted.trace_id;
    parent_span_id_ = s.adopted.span_id;
    s.trace_id = trace_id_;
  } else {
    // Fresh trace root: the root's span id doubles as the trace id.
    trace_id_ = span_id_;
    parent_span_id_ = 0;
    s.trace_id = trace_id_;
  }
  depth_ = s.depth;
  if (s.depth < TraceThreadState::kMaxStack) s.stack[s.depth] = span_id_;
  ++s.depth;
  start_seconds_ = process_clock_seconds();
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (!name_) return;
  --t_trace.depth;
  SpanRecord span;
  span.name = name_;
  span.thread = this_thread_ordinal();
  span.depth = depth_;
  span.pid = static_cast<std::uint32_t>(::getpid());
  span.start_seconds = start_seconds_;
  span.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  span.trace_id = trace_id_;
  span.span_id = span_id_;
  span.parent_span_id = parent_span_id_;
  if (flight_span_hook_enabled()) {
    // Black-box breadcrumb: the flight recorder keeps the tail of the trace
    // even when the process dies before its TraceLog is ever harvested.
    char label[FlightEvent::kNameBytes];
    std::snprintf(label, sizeof(label), "span:%s", name_);
    FlightRecorder::global().record(
        label, span_id_, static_cast<std::uint64_t>(span.seconds * 1e6));
  }
  TraceLog::global().record(std::move(span));
}

std::uint32_t TraceSpan::current_depth() noexcept { return t_trace.depth; }

}  // namespace le::obs
