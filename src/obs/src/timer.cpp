#include "le/obs/timer.hpp"

namespace le::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace detail

namespace {

std::chrono::steady_clock::time_point process_epoch() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

thread_local std::uint32_t t_span_depth = 0;

}  // namespace

std::uint32_t this_thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

double process_clock_seconds() noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       process_epoch())
      .count();
}

void TraceLog::record(SpanRecord span) {
  std::lock_guard lock(mutex_);
  if (spans_.size() < capacity_) {
    spans_.push_back(std::move(span));
    return;
  }
  if (capacity_ == 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_[next_] = std::move(span);
  next_ = (next_ + 1) % capacity_;
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> TraceLog::snapshot() const {
  std::lock_guard lock(mutex_);
  // Rotate so the returned order is oldest-first.
  std::vector<SpanRecord> out;
  out.reserve(spans_.size());
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    out.push_back(spans_[(next_ + i) % spans_.size()]);
  }
  return out;
}

void TraceLog::clear() {
  std::lock_guard lock(mutex_);
  spans_.clear();
  next_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
}

TraceLog& TraceLog::global() {
  static TraceLog log;
  return log;
}

TraceSpan::TraceSpan(const char* name) noexcept
    : name_(tracing_enabled() ? name : nullptr) {
  if (!name_) return;
  depth_ = t_span_depth++;
  start_seconds_ = process_clock_seconds();
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (!name_) return;
  --t_span_depth;
  SpanRecord span;
  span.name = name_;
  span.thread = this_thread_ordinal();
  span.depth = depth_;
  span.start_seconds = start_seconds_;
  span.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  TraceLog::global().record(std::move(span));
}

std::uint32_t TraceSpan::current_depth() noexcept { return t_span_depth; }

}  // namespace le::obs
