#include "le/obs/drift.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace le::obs {

namespace {

/// Proportion floor for PSI: empty bins would make ln(p/q) blow up, and a
/// floor this small keeps the index finite without hiding real shift.
constexpr double kPsiEpsilon = 1e-4;

}  // namespace

InputDriftDetector::InputDriftDetector(const tensor::Matrix& reference_inputs,
                                       const DriftDetectorConfig& config)
    : config_(config) {
  if (config_.bins < 2) {
    throw std::invalid_argument("InputDriftDetector: need >= 2 bins");
  }
  if (config_.window == 0) {
    throw std::invalid_argument("InputDriftDetector: need a nonzero window");
  }
  if (!(config_.range_padding >= 0.0)) {
    throw std::invalid_argument(
        "InputDriftDetector: range_padding must be >= 0");
  }
  std::lock_guard lock(mutex_);
  fit_reference_locked(reference_inputs);
}

void InputDriftDetector::fit_reference_locked(
    const tensor::Matrix& reference_inputs) {
  if (reference_inputs.rows() == 0 || reference_inputs.cols() == 0) {
    throw std::invalid_argument(
        "InputDriftDetector: reference inputs are empty");
  }
  features_ = reference_inputs.cols();
  lo_.assign(features_, 0.0);
  hi_.assign(features_, 0.0);
  for (std::size_t f = 0; f < features_; ++f) {
    double lo = reference_inputs(0, f);
    double hi = lo;
    for (std::size_t r = 0; r < reference_inputs.rows(); ++r) {
      const double v = reference_inputs(r, f);
      if (!std::isfinite(v)) {
        throw std::invalid_argument(
            "InputDriftDetector: non-finite reference input");
      }
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    // Pad the range; a constant feature gets a symmetric unit-ish span so
    // binning stays well defined (every value lands mid-range).
    double span = hi - lo;
    if (span <= 0.0) span = std::max(1.0, std::abs(lo));
    const double pad = config_.range_padding * span;
    lo_[f] = lo - pad;
    hi_[f] = hi + pad;
  }

  reference_.assign(features_ * config_.bins, 0.0);
  for (std::size_t r = 0; r < reference_inputs.rows(); ++r) {
    for (std::size_t f = 0; f < features_; ++f) {
      reference_[f * config_.bins + bin_of_locked(f, reference_inputs(r, f))] +=
          1.0;
    }
  }
  const double n = static_cast<double>(reference_inputs.rows());
  for (double& p : reference_) p /= n;

  live_.assign(features_ * config_.bins, 0);
  window_count_ = 0;
  windows_evaluated_ = 0;
  last_ = DriftReport{};
}

std::size_t InputDriftDetector::bin_of_locked(std::size_t feature,
                                              double value) const {
  // Non-finite and out-of-range values clamp to the end bins: drift off
  // the edge of the reference support must be counted, not dropped.
  if (std::isnan(value)) return config_.bins - 1;
  const double lo = lo_[feature];
  const double hi = hi_[feature];
  if (value <= lo) return 0;
  if (value >= hi) return config_.bins - 1;
  const double width = (hi - lo) / static_cast<double>(config_.bins);
  const auto bin = static_cast<std::size_t>((value - lo) / width);
  return std::min(bin, config_.bins - 1);
}

void InputDriftDetector::observe(std::span<const double> input) {
  std::lock_guard lock(mutex_);
  if (input.size() != features_) {
    throw std::invalid_argument("InputDriftDetector::observe: input length");
  }
  for (std::size_t f = 0; f < features_; ++f) {
    ++live_[f * config_.bins + bin_of_locked(f, input[f])];
  }
  ++window_count_;
}

bool InputDriftDetector::window_ready() const {
  std::lock_guard lock(mutex_);
  return window_count_ >= config_.window;
}

DriftReport InputDriftDetector::evaluate() {
  std::lock_guard lock(mutex_);
  DriftReport report;
  report.window_samples = window_count_;
  if (window_count_ == 0) return report;

  report.per_feature.resize(features_);
  const double n = static_cast<double>(window_count_);
  for (std::size_t f = 0; f < features_; ++f) {
    double psi = 0.0;
    double ks = 0.0;
    double cdf_ref = 0.0;
    double cdf_live = 0.0;
    for (std::size_t b = 0; b < config_.bins; ++b) {
      const double p_ref =
          std::max(reference_[f * config_.bins + b], kPsiEpsilon);
      const double p_live = std::max(
          static_cast<double>(live_[f * config_.bins + b]) / n, kPsiEpsilon);
      psi += (p_live - p_ref) * std::log(p_live / p_ref);
      cdf_ref += reference_[f * config_.bins + b];
      cdf_live += static_cast<double>(live_[f * config_.bins + b]) / n;
      ks = std::max(ks, std::abs(cdf_ref - cdf_live));
    }
    report.per_feature[f] = {psi, ks};
    if (psi > report.max_psi) {
      report.max_psi = psi;
      report.worst_feature = f;
    }
    report.max_ks = std::max(report.max_ks, ks);
  }
  report.windows_evaluated = ++windows_evaluated_;

  live_.assign(features_ * config_.bins, 0);
  window_count_ = 0;
  last_ = report;
  return report;
}

DriftReport InputDriftDetector::last_report() const {
  std::lock_guard lock(mutex_);
  return last_;
}

void InputDriftDetector::rebase(const tensor::Matrix& reference_inputs) {
  std::lock_guard lock(mutex_);
  fit_reference_locked(reference_inputs);
}

std::size_t InputDriftDetector::features() const {
  std::lock_guard lock(mutex_);
  return features_;
}

}  // namespace le::obs
