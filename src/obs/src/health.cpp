#include "le/obs/health.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "le/obs/metrics.hpp"

namespace le::obs {

std::string to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "HEALTHY";
    case HealthState::kDrifting: return "DRIFTING";
    case HealthState::kUntrusted: return "UNTRUSTED";
  }
  return "UNKNOWN";
}

namespace {

/// Severity ladder shared by all three signals; the state machine takes
/// the max over signals.
enum class Severity { kClean = 0, kWarn = 1, kAlarm = 2 };

std::string fmt(double v) {
  std::ostringstream out;
  out.precision(4);
  out << v;
  return out.str();
}

}  // namespace

SurrogateHealthMonitor::SurrogateHealthMonitor(
    const SurrogateHealthConfig& config, const tensor::Matrix& reference_inputs)
    : config_(config), drift_(reference_inputs, config.drift) {
  if (config_.shadow_fraction < 0.0 || config_.shadow_fraction > 1.0) {
    throw std::invalid_argument(
        "SurrogateHealthMonitor: shadow_fraction must be in [0, 1]");
  }
  if (config_.residual_window == 0) {
    throw std::invalid_argument(
        "SurrogateHealthMonitor: residual_window must be nonzero");
  }
  if (config_.shadow_fraction > 0.0) {
    shadow_stride_ = static_cast<std::size_t>(
        std::max(1.0, std::round(1.0 / config_.shadow_fraction)));
  }
}

void SurrogateHealthMonitor::observe_query(std::span<const double> input) {
  drift_.observe(input);
  std::lock_guard lock(mutex_);
  ++queries_;
  if (drift_.window_ready()) {
    drift_.evaluate();
    evaluate_locked("drift-window");
  }
}

bool SurrogateHealthMonitor::should_shadow_sample() {
  std::lock_guard lock(mutex_);
  if (shadow_stride_ == 0) return false;
  return (++accepted_answers_ % shadow_stride_) == 0;
}

void SurrogateHealthMonitor::record_shadow(
    std::span<const double> predicted_mean,
    std::span<const double> predicted_stddev, std::span<const double> truth) {
  if (predicted_mean.size() != truth.size() ||
      (!predicted_stddev.empty() &&
       predicted_stddev.size() != predicted_mean.size())) {
    throw std::invalid_argument(
        "SurrogateHealthMonitor::record_shadow: length mismatch");
  }
  if (predicted_mean.empty()) return;

  ShadowSample sample;
  sample.dims = static_cast<double>(predicted_mean.size());
  for (std::size_t i = 0; i < predicted_mean.size(); ++i) {
    const double err = predicted_mean[i] - truth[i];
    sample.mse += err * err;
    // Without a stddev (surrogate served point estimates) the interval is
    // degenerate: count the dim as covered only on an exact match, so a
    // UQ-free surrogate under error shows up as a coverage shortfall too.
    const double sigma = predicted_stddev.empty() ? 0.0 : predicted_stddev[i];
    sample.sigma_sum += sigma;
    if (std::abs(err) <= config_.coverage_z * sigma) sample.covered_dims += 1.0;
  }
  sample.mse /= sample.dims;

  std::lock_guard lock(mutex_);
  ++shadow_samples_;
  window_.push_back(sample);
  while (window_.size() > config_.residual_window) window_.pop_front();
  if (!baseline_set_ && shadow_samples_ >= config_.min_shadow_samples) {
    // Self-calibrate: the first windowful of shadow samples is taken as
    // the in-distribution residual level.
    baseline_rmse_ = rolling_rmse_locked();
    baseline_set_ = true;
  }
  if (metric_shadow_samples_ != nullptr) metric_shadow_samples_->add();
  evaluate_locked("shadow-sample");
}

void SurrogateHealthMonitor::set_residual_baseline(double rmse) {
  if (!(rmse >= 0.0)) {
    throw std::invalid_argument(
        "SurrogateHealthMonitor: baseline RMSE must be >= 0");
  }
  std::lock_guard lock(mutex_);
  baseline_rmse_ = rmse;
  baseline_set_ = true;
}

double SurrogateHealthMonitor::rolling_rmse_locked() const {
  if (window_.empty()) return 0.0;
  double mse = 0.0;
  for (const ShadowSample& s : window_) mse += s.mse;
  return std::sqrt(mse / static_cast<double>(window_.size()));
}

double SurrogateHealthMonitor::rolling_coverage_locked() const {
  double covered = 0.0;
  double dims = 0.0;
  for (const ShadowSample& s : window_) {
    covered += s.covered_dims;
    dims += s.dims;
  }
  return dims > 0.0 ? covered / dims : 0.0;
}

double SurrogateHealthMonitor::rolling_sharpness_locked() const {
  double sigma = 0.0;
  double dims = 0.0;
  for (const ShadowSample& s : window_) {
    sigma += s.sigma_sum;
    dims += s.dims;
  }
  return dims > 0.0 ? sigma / dims : 0.0;
}

void SurrogateHealthMonitor::evaluate_locked(const char* trigger) {
  Severity severity = Severity::kClean;
  std::string reason;
  const auto flag = [&](Severity s, std::string why) {
    if (static_cast<int>(s) > static_cast<int>(severity)) {
      severity = s;
      reason = std::move(why);
    }
  };

  // Signal 1: input drift (only once a window has actually been scored).
  const DriftReport drift = drift_.last_report();
  if (drift.windows_evaluated > 0) {
    if (drift.max_psi >= config_.psi_untrusted) {
      flag(Severity::kAlarm, "psi " + fmt(drift.max_psi) + " >= " +
                                 fmt(config_.psi_untrusted) + " (feature " +
                                 std::to_string(drift.worst_feature) + ")");
    } else if (drift.max_psi >= config_.psi_drifting) {
      flag(Severity::kWarn, "psi " + fmt(drift.max_psi) + " >= " +
                                fmt(config_.psi_drifting) + " (feature " +
                                std::to_string(drift.worst_feature) + ")");
    }
    if (drift.max_ks >= config_.ks_untrusted) {
      flag(Severity::kAlarm,
           "ks " + fmt(drift.max_ks) + " >= " + fmt(config_.ks_untrusted));
    } else if (drift.max_ks >= config_.ks_drifting) {
      flag(Severity::kWarn,
           "ks " + fmt(drift.max_ks) + " >= " + fmt(config_.ks_drifting));
    }
  }

  // Signals 2 and 3 need both a baseline and enough shadow evidence.
  if (baseline_set_ && window_.size() >= config_.min_shadow_samples) {
    const double rmse = rolling_rmse_locked();
    if (baseline_rmse_ > 0.0) {
      const double alarm = config_.residual_rmse_factor * baseline_rmse_;
      const double warn =
          std::sqrt(config_.residual_rmse_factor) * baseline_rmse_;
      if (rmse > alarm) {
        flag(Severity::kAlarm, "rmse " + fmt(rmse) + " > " +
                                   fmt(config_.residual_rmse_factor) +
                                   "x baseline " + fmt(baseline_rmse_));
      } else if (rmse > warn) {
        flag(Severity::kWarn,
             "rmse " + fmt(rmse) + " > baseline " + fmt(baseline_rmse_));
      }
    }

    const double shortfall = config_.nominal_coverage - rolling_coverage_locked();
    if (shortfall >= config_.coverage_shortfall_untrusted) {
      flag(Severity::kAlarm, "coverage shortfall " + fmt(shortfall) + " >= " +
                                 fmt(config_.coverage_shortfall_untrusted));
    } else if (shortfall >= config_.coverage_shortfall_drifting) {
      flag(Severity::kWarn, "coverage shortfall " + fmt(shortfall) + " >= " +
                                fmt(config_.coverage_shortfall_drifting));
    }
  }

  switch (severity) {
    case Severity::kAlarm:
      clean_evaluations_ = 0;
      if (state_ != HealthState::kUntrusted) {
        transition_locked(HealthState::kUntrusted,
                          std::string(trigger) + ": " + reason);
      }
      break;
    case Severity::kWarn:
      clean_evaluations_ = 0;
      // UNTRUSTED is latched: a merely-warning window does not restore
      // trust in a surrogate already judged broken.
      if (state_ == HealthState::kHealthy) {
        transition_locked(HealthState::kDrifting,
                          std::string(trigger) + ": " + reason);
      }
      break;
    case Severity::kClean:
      if (state_ == HealthState::kDrifting) {
        if (++clean_evaluations_ >= config_.clean_windows_to_recover) {
          transition_locked(HealthState::kHealthy,
                            std::string(trigger) + ": " +
                                std::to_string(clean_evaluations_) +
                                " consecutive clean evaluations");
          clean_evaluations_ = 0;
        }
      }
      break;
  }
  publish_metrics_locked();
}

void SurrogateHealthMonitor::transition_locked(HealthState to,
                                               std::string reason) {
  transitions_.push_back({state_, to, queries_, std::move(reason)});
  state_ = to;
  if (metric_transitions_ != nullptr) metric_transitions_->add();
}

HealthState SurrogateHealthMonitor::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

HealthReport SurrogateHealthMonitor::report() const {
  std::lock_guard lock(mutex_);
  HealthReport r;
  r.state = state_;
  r.drift = drift_.last_report();
  r.residual_rmse = rolling_rmse_locked();
  r.baseline_rmse = baseline_set_ ? baseline_rmse_ : 0.0;
  r.coverage = rolling_coverage_locked();
  r.sharpness = rolling_sharpness_locked();
  r.shadow_samples = static_cast<std::size_t>(shadow_samples_);
  r.queries = queries_;
  r.retrain_requested = state_ == HealthState::kUntrusted;
  return r;
}

std::vector<HealthTransition> SurrogateHealthMonitor::transitions() const {
  std::lock_guard lock(mutex_);
  return transitions_;
}

bool SurrogateHealthMonitor::retrain_requested() const {
  std::lock_guard lock(mutex_);
  return state_ == HealthState::kUntrusted;
}

void SurrogateHealthMonitor::on_retrained(
    const tensor::Matrix& new_reference_inputs) {
  drift_.rebase(new_reference_inputs);
  std::lock_guard lock(mutex_);
  window_.clear();
  baseline_rmse_ = 0.0;
  baseline_set_ = false;
  shadow_samples_ = 0;
  clean_evaluations_ = 0;
  if (state_ != HealthState::kHealthy) {
    transition_locked(HealthState::kHealthy, "retrained");
  }
  publish_metrics_locked();
}

void SurrogateHealthMonitor::on_rolled_back(
    const tensor::Matrix& prior_reference_inputs) {
  drift_.rebase(prior_reference_inputs);
  std::lock_guard lock(mutex_);
  window_.clear();
  baseline_rmse_ = 0.0;
  baseline_set_ = false;
  shadow_samples_ = 0;
  clean_evaluations_ = 0;
  if (state_ != HealthState::kUntrusted) {
    transition_locked(HealthState::kUntrusted,
                      "rolled-back: promotion failed inside guard window");
  }
  publish_metrics_locked();
}

void SurrogateHealthMonitor::enable_metrics(MetricsRegistry& registry,
                                            const std::string& prefix) {
  std::lock_guard lock(mutex_);
  metric_state_ = &registry.gauge(prefix + ".state");
  metric_psi_ = &registry.gauge(prefix + ".psi_max");
  metric_ks_ = &registry.gauge(prefix + ".ks_max");
  metric_rmse_ = &registry.gauge(prefix + ".residual_rmse");
  metric_coverage_ = &registry.gauge(prefix + ".coverage");
  metric_sharpness_ = &registry.gauge(prefix + ".sharpness");
  metric_shadow_samples_ = &registry.counter(prefix + ".shadow_samples");
  metric_transitions_ = &registry.counter(prefix + ".transitions");
  publish_metrics_locked();
}

void SurrogateHealthMonitor::publish_metrics_locked() {
  if (metric_state_ == nullptr) return;
  metric_state_->set(static_cast<double>(static_cast<int>(state_)));
  const DriftReport drift = drift_.last_report();
  metric_psi_->set(drift.max_psi);
  metric_ks_->set(drift.max_ks);
  metric_rmse_->set(rolling_rmse_locked());
  metric_coverage_->set(rolling_coverage_locked());
  metric_sharpness_->set(rolling_sharpness_locked());
}

}  // namespace le::obs
