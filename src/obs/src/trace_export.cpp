#include "le/obs/trace_export.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <locale>
#include <sstream>

namespace le::obs {

namespace {

/// JSON string escaping for span names (quotes, backslashes, control
/// characters — names are free-form C strings).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string to_chrome_trace(const std::vector<SpanRecord>& spans) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << std::setprecision(15);

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  // One thread_name metadata record per distinct track so the viewer
  // labels tracks by obs thread ordinal.
  std::vector<std::uint32_t> threads;
  for (const SpanRecord& span : spans) {
    if (std::find(threads.begin(), threads.end(), span.thread) ==
        threads.end()) {
      threads.push_back(span.thread);
    }
  }
  std::sort(threads.begin(), threads.end());
  for (const std::uint32_t t : threads) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << t
        << ",\"args\":{\"name\":\"obs-thread-" << t << "\"}}";
  }

  for (const SpanRecord& span : spans) {
    if (!first) out << ',';
    first = false;
    // Complete event: ts/dur in microseconds on the process clock.
    out << "{\"name\":\"" << escape(span.name)
        << "\",\"cat\":\"le\",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.thread
        << ",\"ts\":" << span.start_seconds * 1e6
        << ",\"dur\":" << span.seconds * 1e6
        << ",\"args\":{\"depth\":" << span.depth << "}}";
  }
  out << "]}";
  return std::move(out).str();
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<SpanRecord>& spans) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << to_chrome_trace(spans);
  file.flush();
  return static_cast<bool>(file);
}

bool write_chrome_trace(const std::string& path) {
  return write_chrome_trace(path, TraceLog::global().snapshot());
}

}  // namespace le::obs
