#include "le/obs/trace_export.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <locale>
#include <sstream>
#include <utility>

namespace le::obs {

namespace {

/// JSON string escaping for span names (quotes, backslashes, control
/// characters — names are free-form C strings).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// u64 as a 0x-prefixed hex string: JSON numbers are doubles, and span ids
/// carry the pid in their upper bits — above 2^53 they would be rounded.
std::string hex_id(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::vector<SpanRecord> merge_process_spans(
    const std::vector<std::vector<SpanRecord>>& per_process) {
  std::vector<SpanRecord> merged;
  std::size_t total = 0;
  for (const auto& spans : per_process) total += spans.size();
  merged.reserve(total);
  for (const auto& spans : per_process) {
    merged.insert(merged.end(), spans.begin(), spans.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_seconds < b.start_seconds;
                   });
  return merged;
}

std::string to_chrome_trace(
    const std::vector<SpanRecord>& spans,
    const std::map<std::uint32_t, std::string>& process_names) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << std::setprecision(15);

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  // process_name metadata per distinct pid, thread_name metadata per
  // distinct (pid, thread ordinal) pair — forked workers all number their
  // threads from 0, so the pid is what keeps their tracks apart.
  std::vector<std::uint32_t> pids;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tracks;
  for (const SpanRecord& span : spans) {
    if (std::find(pids.begin(), pids.end(), span.pid) == pids.end()) {
      pids.push_back(span.pid);
    }
    const auto track = std::make_pair(span.pid, span.thread);
    if (std::find(tracks.begin(), tracks.end(), track) == tracks.end()) {
      tracks.push_back(track);
    }
  }
  std::sort(pids.begin(), pids.end());
  std::sort(tracks.begin(), tracks.end());
  for (const std::uint32_t pid : pids) {
    if (!first) out << ',';
    first = false;
    const auto it = process_names.find(pid);
    const std::string name =
        it != process_names.end() ? it->second : "pid-" + std::to_string(pid);
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\"" << escape(name) << "\"}}";
  }
  for (const auto& [pid, tid] : tracks) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"args\":{\"name\":\"obs-thread-" << tid
        << "\"}}";
  }

  for (const SpanRecord& span : spans) {
    if (!first) out << ',';
    first = false;
    // Complete event: ts/dur in microseconds on the process clock.
    out << "{\"name\":\"" << escape(span.name)
        << "\",\"cat\":\"le\",\"ph\":\"X\",\"pid\":" << span.pid
        << ",\"tid\":" << span.thread << ",\"ts\":" << span.start_seconds * 1e6
        << ",\"dur\":" << span.seconds * 1e6
        << ",\"args\":{\"depth\":" << span.depth << ",\"trace_id\":\""
        << hex_id(span.trace_id) << "\",\"span_id\":\"" << hex_id(span.span_id)
        << "\",\"parent_span_id\":\"" << hex_id(span.parent_span_id)
        << "\"}}";
  }
  out << "]}";
  return std::move(out).str();
}

bool write_chrome_trace(
    const std::string& path, const std::vector<SpanRecord>& spans,
    const std::map<std::uint32_t, std::string>& process_names) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << to_chrome_trace(spans, process_names);
  file.flush();
  return static_cast<bool>(file);
}

bool write_chrome_trace(const std::string& path) {
  return write_chrome_trace(path, TraceLog::global().snapshot());
}

}  // namespace le::obs
