#include "le/obs/slo.hpp"

#include <stdexcept>
#include <utility>

#include "le/obs/metrics.hpp"

namespace le::obs {

void SloTracker::Window::push(bool is_bad) {
  if (size == ring.size()) {
    bad -= ring[next];  // evict the slot we are about to overwrite
  } else {
    ++size;
  }
  ring[next] = is_bad ? 1 : 0;
  bad += ring[next];
  next = (next + 1) % ring.size();
}

double SloTracker::Window::bad_fraction() const {
  if (size == 0) return 0.0;
  return static_cast<double>(bad) / static_cast<double>(size);
}

SloTracker::SloTracker(const SloConfig& config)
    : config_(config),
      fast_(config.fast_window),
      slow_(config.slow_window) {
  if (!(config_.objective > 0.0 && config_.objective < 1.0)) {
    throw std::invalid_argument("SloConfig: objective must be in (0, 1)");
  }
  if (config_.fast_window == 0 || config_.slow_window == 0 ||
      config_.fast_window > config_.slow_window) {
    throw std::invalid_argument(
        "SloConfig: need 0 < fast_window <= slow_window");
  }
  if (config_.fast_burn <= 0.0 || config_.slow_burn <= 0.0 ||
      config_.resolve_burn <= 0.0) {
    throw std::invalid_argument("SloConfig: burn thresholds must be > 0");
  }
}

double SloTracker::burn_of(const Window& w) const {
  return w.bad_fraction() / (1.0 - config_.objective);
}

void SloTracker::record(bool good) {
  SloAlert alert;
  bool transitioned = false;
  std::function<void(const SloAlert&)> callback;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fast_.push(!good);
    slow_.push(!good);
    ++stats_.events;
    if (!good) {
      ++stats_.bad_events;
      if (metric_bad_ != nullptr) metric_bad_->add();
    }
    stats_.fast_burn_rate = burn_of(fast_);
    stats_.slow_burn_rate = burn_of(slow_);

    // Both-windows rule.  The fast window must be full before an alert can
    // fire: with three samples one failure reads as burn 33, and paging on
    // that is exactly the flap the multi-window rule exists to suppress.
    // The slow window evaluates over whatever it holds so far.
    const bool fast_full = fast_.size == fast_.ring.size();
    if (!stats_.firing) {
      if (fast_full && stats_.fast_burn_rate >= config_.fast_burn &&
          stats_.slow_burn_rate >= config_.slow_burn) {
        stats_.firing = true;
        ++stats_.alerts_fired;
        transitioned = true;
        if (metric_fired_ != nullptr) metric_fired_->add();
      }
    } else {
      if (stats_.fast_burn_rate <= config_.resolve_burn &&
          stats_.slow_burn_rate <= config_.resolve_burn) {
        stats_.firing = false;
        ++stats_.alerts_resolved;
        transitioned = true;
        if (metric_resolved_ != nullptr) metric_resolved_->add();
      }
    }
    if (metric_fast_burn_ != nullptr) {
      metric_fast_burn_->set(stats_.fast_burn_rate);
      metric_slow_burn_->set(stats_.slow_burn_rate);
      metric_firing_->set(stats_.firing ? 1.0 : 0.0);
    }
    if (transitioned) {
      alert.firing = stats_.firing;
      alert.fast_burn_rate = stats_.fast_burn_rate;
      alert.slow_burn_rate = stats_.slow_burn_rate;
      alert.events = stats_.events;
      alert.bad_events = stats_.bad_events;
      callback = callback_;
    }
  }
  // Outside the lock: the ladder (or a test) may call back into us.
  if (transitioned && callback) callback(alert);
}

double SloTracker::fast_burn_rate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.fast_burn_rate;
}

double SloTracker::slow_burn_rate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.slow_burn_rate;
}

bool SloTracker::firing() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.firing;
}

SloStats SloTracker::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SloTracker::set_alert_callback(
    std::function<void(const SloAlert&)> callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  callback_ = std::move(callback);
}

void SloTracker::enable_metrics(MetricsRegistry& registry,
                                const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  metric_fast_burn_ = &registry.gauge(prefix + ".burn_fast");
  metric_slow_burn_ = &registry.gauge(prefix + ".burn_slow");
  metric_firing_ = &registry.gauge(prefix + ".firing");
  metric_fired_ = &registry.counter(prefix + ".alerts_fired");
  metric_resolved_ = &registry.counter(prefix + ".alerts_resolved");
  metric_bad_ = &registry.counter(prefix + ".bad_events");
}

}  // namespace le::obs
