#include "le/obs/quantile.hpp"

#include <algorithm>
#include <cmath>

namespace le::obs {

P2Quantile::P2Quantile(double q) noexcept : q_(std::clamp(q, 0.0, 1.0)) {
  reset();
}

void P2Quantile::reset() noexcept {
  height_.fill(0.0);
  position_ = {1.0, 2.0, 3.0, 4.0, 5.0};
  desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
  increment_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
  count_ = 0;
}

double P2Quantile::parabolic(std::size_t i, double sign) const noexcept {
  // Piecewise-parabolic (P^2) prediction of marker i's height after moving
  // one position in direction `sign`.
  const double n_prev = position_[i - 1];
  const double n = position_[i];
  const double n_next = position_[i + 1];
  return height_[i] +
         sign / (n_next - n_prev) *
             ((n - n_prev + sign) * (height_[i + 1] - height_[i]) /
                  (n_next - n) +
              (n_next - n - sign) * (height_[i] - height_[i - 1]) /
                  (n - n_prev));
}

double P2Quantile::linear(std::size_t i, double sign) const noexcept {
  const std::size_t j = sign > 0.0 ? i + 1 : i - 1;
  return height_[i] +
         sign * (height_[j] - height_[i]) / (position_[j] - position_[i]);
}

void P2Quantile::add(double x) noexcept {
  if (!std::isfinite(x)) return;

  if (count_ < 5) {
    // Warm-up: collect the first five observations sorted.
    height_[count_] = x;
    ++count_;
    std::sort(height_.begin(), height_.begin() + static_cast<long>(count_));
    return;
  }

  // Locate the marker cell containing x, extending the extremes.
  std::size_t k;
  if (x < height_[0]) {
    height_[0] = x;
    k = 0;
  } else if (x >= height_[4]) {
    height_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= height_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) position_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increment_[i];
  ++count_;

  // Adjust the three interior markers toward their desired positions.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - position_[i];
    if ((d >= 1.0 && position_[i + 1] - position_[i] > 1.0) ||
        (d <= -1.0 && position_[i - 1] - position_[i] < -1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      double candidate = parabolic(i, sign);
      if (!(height_[i - 1] < candidate && candidate < height_[i + 1])) {
        candidate = linear(i, sign);
      }
      height_[i] = candidate;
      position_[i] += sign;
    }
  }
}

double P2Quantile::value() const noexcept {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact nearest-rank order statistic over the sorted warm-up prefix.
    const auto n = static_cast<double>(count_);
    const auto rank = static_cast<std::size_t>(
        std::clamp(std::ceil(q_ * n), 1.0, n));
    return height_[rank - 1];
  }
  return height_[2];
}

QuantileSketch::QuantileSketch() noexcept
    : estimators_{P2Quantile(0.50), P2Quantile(0.95), P2Quantile(0.99)} {}

void QuantileSketch::lock() const noexcept {
  while (lock_.test_and_set(std::memory_order_acquire)) {
  }
}

void QuantileSketch::unlock() const noexcept {
  lock_.clear(std::memory_order_release);
}

void QuantileSketch::add(double x) noexcept {
  lock();
  for (P2Quantile& e : estimators_) e.add(x);
  unlock();
}

QuantileSketch::Quantiles QuantileSketch::quantiles() const noexcept {
  lock();
  const Quantiles q{estimators_[0].value(), estimators_[1].value(),
                    estimators_[2].value(), estimators_[0].count()};
  unlock();
  return q;
}

void QuantileSketch::reset() noexcept {
  lock();
  for (P2Quantile& e : estimators_) e.reset();
  unlock();
}

WindowedQuantile::WindowedQuantile(std::size_t capacity)
    : window_(capacity == 0 ? 1 : capacity) {}

void WindowedQuantile::add(double x) noexcept {
  if (!std::isfinite(x)) return;
  window_[next_] = x;
  next_ = (next_ + 1) % window_.size();
  if (size_ < window_.size()) ++size_;
}

double WindowedQuantile::quantile(double q) const {
  if (size_ == 0) return 0.0;
  scratch_.assign(window_.begin(),
                  window_.begin() + static_cast<std::ptrdiff_t>(size_));
  // Lower order statistic (numpy's "lower" interpolation): never reports
  // a latency larger than one actually observed in the window.
  const double clamped = std::clamp(q, 0.0, 1.0);
  const std::size_t rank = std::min(
      size_ - 1,
      static_cast<std::size_t>(clamped * static_cast<double>(size_ - 1)));
  std::nth_element(scratch_.begin(),
                   scratch_.begin() + static_cast<std::ptrdiff_t>(rank),
                   scratch_.end());
  return scratch_[rank];
}

void WindowedQuantile::reset() noexcept {
  next_ = 0;
  size_ = 0;
}

}  // namespace le::obs
