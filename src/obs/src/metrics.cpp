#include "le/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <locale>
#include <sstream>

namespace le::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

double Histogram::bucket_upper_bound(std::size_t i) noexcept {
  return std::ldexp(1.0, static_cast<int>(i)) * 1e-9;
}

std::size_t Histogram::bucket_index(double seconds) noexcept {
  if (!(seconds > 0.0)) return 0;
  const double ns = seconds * 1e9;
  if (ns <= 1.0) return 0;
  int e = std::ilogb(ns);  // floor(log2 ns)
  if (std::ldexp(1.0, e) < ns) ++e;
  e = std::max(e, 0);
  return std::min<std::size_t>(static_cast<std::size_t>(e), kBucketCount - 1);
}

void Histogram::record(double seconds) noexcept {
  buckets_[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(seconds, std::memory_order_relaxed);
  // min/max CAS loops; the first record seeds both (count_ incremented last
  // means a concurrent reader may briefly see count 0 with a seeded min —
  // snapshot() reads count first, so it only ever under-reports).
  if (count_.load(std::memory_order_relaxed) == 0) {
    double expected = 0.0;
    min_.compare_exchange_strong(expected, seconds, std::memory_order_relaxed);
  }
  double cur = min_.load(std::memory_order_relaxed);
  while (seconds < cur &&
         !min_.compare_exchange_weak(cur, seconds, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (seconds > cur &&
         !max_.compare_exchange_weak(cur, seconds, std::memory_order_relaxed)) {
  }
  sketch_.add(seconds);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      return std::min(bucket_upper_bound(i), max());
    }
  }
  return max();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(kBucketCount);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  sketch_.reset();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramEntry e;
    e.name = name;
    e.count = h->count();
    e.sum = h->sum();
    e.mean = h->mean();
    e.min = h->min();
    e.max = h->max();
    // True tail quantiles from the P-squared sketch, not bucket bounds.
    const QuantileSketch::Quantiles q = h->tail_quantiles();
    e.p50 = q.p50;
    e.p95 = q.p95;
    e.p99 = q.p99;
    // Bucket counts travel with the snapshot so cross-process merges are
    // exact for counts even where quantiles must be re-derived.
    e.buckets = h->bucket_counts();
    snap.histograms.push_back(std::move(e));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

/// Quantile from merged bucket counts: the upper bound of the bucket the
/// target rank lands in, clamped to the observed max (same contract as
/// Histogram::quantile — at most one power-of-two bucket of error).
double bucket_quantile(const std::vector<std::uint64_t>& buckets,
                       std::uint64_t count, double q, double max) {
  if (count == 0) return 0.0;
  const double target = std::clamp(q, 0.0, 1.0) * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      return std::min(Histogram::bucket_upper_bound(i), max);
    }
  }
  return max;
}

/// Merges `src` into `dst` (same metric name on both sides).
void merge_histogram_entry(MetricsSnapshot::HistogramEntry& dst,
                           const MetricsSnapshot::HistogramEntry& src) {
  if (src.count == 0) return;  // empty side is the identity
  if (dst.count == 0) {
    const std::string name = dst.name;
    dst = src;
    dst.name = name;
    return;
  }
  if (!dst.buckets.empty() && !src.buckets.empty() &&
      dst.buckets.size() != src.buckets.size()) {
    throw SnapshotMergeError(
        "MetricsSnapshot::merge: histogram '" + dst.name + "' has " +
        std::to_string(dst.buckets.size()) + " buckets on one side and " +
        std::to_string(src.buckets.size()) +
        " on the other (layout skew between processes)");
  }
  dst.min = std::min(dst.min, src.min);
  dst.max = std::max(dst.max, src.max);
  dst.sum += src.sum;
  dst.count += src.count;
  dst.mean = dst.sum / static_cast<double>(dst.count);
  if (!dst.buckets.empty() && !src.buckets.empty()) {
    for (std::size_t i = 0; i < dst.buckets.size(); ++i) {
      dst.buckets[i] += src.buckets[i];
    }
    // Sketches cannot be merged; re-derive the tail from the exact merged
    // bucket counts instead of averaging two unmergeable estimates.
    dst.p50 = bucket_quantile(dst.buckets, dst.count, 0.50, dst.max);
    dst.p95 = bucket_quantile(dst.buckets, dst.count, 0.95, dst.max);
    dst.p99 = bucket_quantile(dst.buckets, dst.count, 0.99, dst.max);
  } else {
    // No bucket data to merge on: keep the side with more observations as
    // the (approximate) tail estimate; counts and sums above stay exact.
    if (src.count > dst.count - src.count) {
      dst.p50 = src.p50;
      dst.p95 = src.p95;
      dst.p99 = src.p99;
    }
    dst.buckets.clear();
  }
}

}  // namespace

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  // Entries are sorted by name within each kind (registry snapshot order);
  // merge preserves that invariant so repeated merges stay deterministic.
  for (const CounterEntry& c : other.counters) {
    const auto it = std::lower_bound(
        counters.begin(), counters.end(), c.name,
        [](const CounterEntry& e, const std::string& n) { return e.name < n; });
    if (it != counters.end() && it->name == c.name) {
      it->value += c.value;
    } else {
      counters.insert(it, c);
    }
  }
  for (const GaugeEntry& g : other.gauges) {
    const auto it = std::lower_bound(
        gauges.begin(), gauges.end(), g.name,
        [](const GaugeEntry& e, const std::string& n) { return e.name < n; });
    if (it != gauges.end() && it->name == g.name) {
      it->value = g.value;  // the incoming snapshot is newer
    } else {
      gauges.insert(it, g);
    }
  }
  for (const HistogramEntry& h : other.histograms) {
    const auto it = std::lower_bound(histograms.begin(), histograms.end(),
                                     h.name,
                                     [](const HistogramEntry& e,
                                        const std::string& n) {
                                       return e.name < n;
                                     });
    if (it != histograms.end() && it->name == h.name) {
      merge_histogram_entry(*it, h);
    } else {
      histograms.insert(it, h);
    }
  }
}

namespace {

/// Locale-pinned numeric formatting: JSON must not grow ',' decimal
/// points under a European global locale.
class JsonWriter {
 public:
  JsonWriter() {
    out_.imbue(std::locale::classic());
    out_ << std::setprecision(12);
  }
  template <typename T>
  JsonWriter& operator<<(const T& v) {
    out_ << v;
    return *this;
  }
  [[nodiscard]] std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
};

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  w << "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    w << (i ? "," : "") << '"' << escape(c.name) << "\":" << c.value;
  }
  w << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    w << (i ? "," : "") << '"' << escape(g.name) << "\":" << g.value;
  }
  w << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    w << (i ? "," : "") << '"' << escape(h.name) << "\":{"
      << "\"count\":" << h.count << ",\"sum\":" << h.sum
      << ",\"mean\":" << h.mean << ",\"min\":" << h.min << ",\"max\":" << h.max
      << ",\"p50\":" << h.p50 << ",\"p95\":" << h.p95 << ",\"p99\":" << h.p99
      << '}';
  }
  w << "}}";
  return w.str();
}

std::string to_text(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << std::setprecision(5);
  if (!snapshot.counters.empty()) {
    out << "counters:\n";
    for (const auto& c : snapshot.counters) {
      out << "  " << std::left << std::setw(44) << c.name << ' ' << c.value
          << '\n';
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "gauges:\n";
    for (const auto& g : snapshot.gauges) {
      out << "  " << std::left << std::setw(44) << g.name << ' ' << g.value
          << '\n';
    }
  }
  if (!snapshot.histograms.empty()) {
    out << "histograms (seconds):\n";
    for (const auto& h : snapshot.histograms) {
      out << "  " << std::left << std::setw(44) << h.name << " count "
          << h.count << "  sum " << h.sum << "  mean " << h.mean << "  p50 "
          << h.p50 << "  p95 " << h.p95 << "  max " << h.max << '\n';
    }
  }
  return out.str();
}

namespace {

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; dotted le names
/// map dots (and anything else) to underscores under an "le_" prefix.
std::string prom_name(const std::string& name) {
  std::string out = "le_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << std::setprecision(12);
  for (const auto& c : snapshot.counters) {
    const std::string name = prom_name(c.name) + "_total";
    out << "# TYPE " << name << " counter\n"
        << name << ' ' << c.value << '\n';
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = prom_name(g.name);
    out << "# TYPE " << name << " gauge\n" << name << ' ' << g.value << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = prom_name(h.name) + "_seconds";
    out << "# TYPE " << name << " summary\n"
        << name << "{quantile=\"0.5\"} " << h.p50 << '\n'
        << name << "{quantile=\"0.95\"} " << h.p95 << '\n'
        << name << "{quantile=\"0.99\"} " << h.p99 << '\n'
        << name << "_sum " << h.sum << '\n'
        << name << "_count " << h.count << '\n';
  }
  return std::move(out).str();
}

}  // namespace le::obs
