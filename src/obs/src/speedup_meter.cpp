#include "le/obs/speedup_meter.hpp"

#include <iomanip>
#include <locale>
#include <sstream>

namespace le::obs {

void EffectiveSpeedupMeter::record_lookups(std::size_t n,
                                           double total_seconds) noexcept {
  if (n == 0) return;
  n_lookup_.fetch_add(n, std::memory_order_relaxed);
  lookup_seconds_.fetch_add(total_seconds, std::memory_order_relaxed);
}

void EffectiveSpeedupMeter::record_train(double seconds) noexcept {
  n_train_.fetch_add(1, std::memory_order_relaxed);
  train_seconds_.fetch_add(seconds, std::memory_order_relaxed);
}

void EffectiveSpeedupMeter::record_learn(double seconds) noexcept {
  learn_seconds_.fetch_add(seconds, std::memory_order_relaxed);
}

void EffectiveSpeedupMeter::record_seq_baseline(double seconds) noexcept {
  n_seq_.fetch_add(1, std::memory_order_relaxed);
  seq_seconds_.fetch_add(seconds, std::memory_order_relaxed);
}

double EffectiveSpeedupMeter::Snapshot::t_lookup() const noexcept {
  return n_lookup == 0 ? 0.0
                       : lookup_seconds / static_cast<double>(n_lookup);
}

double EffectiveSpeedupMeter::Snapshot::t_train() const noexcept {
  return n_train == 0 ? 0.0 : train_seconds / static_cast<double>(n_train);
}

double EffectiveSpeedupMeter::Snapshot::t_learn() const noexcept {
  // The model amortizes learning cost over the training samples it consumed.
  return n_train == 0 ? 0.0 : learn_seconds / static_cast<double>(n_train);
}

double EffectiveSpeedupMeter::Snapshot::t_seq() const noexcept {
  if (seq_samples > 0) return seq_seconds / static_cast<double>(seq_samples);
  return t_train();
}

double EffectiveSpeedupMeter::Snapshot::speedup() const noexcept {
  const double work = static_cast<double>(n_lookup + n_train);
  // Accumulated denominators, not per-unit times re-multiplied: with
  // N_train = 0 this is exactly lookup_seconds, so S == lookup_limit().
  const double denom = t_lookup() * static_cast<double>(n_lookup) +
                       (t_train() + t_learn()) * static_cast<double>(n_train);
  if (work == 0.0 || denom <= 0.0) return 0.0;
  return t_seq() * work / denom;
}

double EffectiveSpeedupMeter::Snapshot::no_ml_limit() const noexcept {
  const double denom = t_train() + t_learn();
  return denom <= 0.0 ? 0.0 : t_seq() / denom;
}

double EffectiveSpeedupMeter::Snapshot::lookup_limit() const noexcept {
  const double denom = t_lookup();
  return denom <= 0.0 ? 0.0 : t_seq() / denom;
}

std::string EffectiveSpeedupMeter::Snapshot::summary() const {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out << std::setprecision(4) << "S=" << speedup()
      << " (no-ML limit " << no_ml_limit() << ", lookup limit "
      << lookup_limit() << "; N_lookup=" << n_lookup
      << ", N_train=" << n_train << ", T_seq=" << t_seq()
      << "s, T_train=" << t_train() << "s, T_learn=" << t_learn()
      << "s, T_lookup=" << t_lookup() << "s)";
  return out.str();
}

void EffectiveSpeedupMeter::Snapshot::merge(const Snapshot& other) noexcept {
  n_lookup += other.n_lookup;
  n_train += other.n_train;
  seq_samples += other.seq_samples;
  lookup_seconds += other.lookup_seconds;
  train_seconds += other.train_seconds;
  learn_seconds += other.learn_seconds;
  seq_seconds += other.seq_seconds;
}

EffectiveSpeedupMeter::Snapshot EffectiveSpeedupMeter::snapshot()
    const noexcept {
  Snapshot snap;
  snap.n_lookup = n_lookup_.load(std::memory_order_relaxed);
  snap.n_train = n_train_.load(std::memory_order_relaxed);
  snap.seq_samples = n_seq_.load(std::memory_order_relaxed);
  snap.lookup_seconds = lookup_seconds_.load(std::memory_order_relaxed);
  snap.train_seconds = train_seconds_.load(std::memory_order_relaxed);
  snap.learn_seconds = learn_seconds_.load(std::memory_order_relaxed);
  snap.seq_seconds = seq_seconds_.load(std::memory_order_relaxed);
  return snap;
}

void EffectiveSpeedupMeter::reset() noexcept {
  n_lookup_.store(0, std::memory_order_relaxed);
  n_train_.store(0, std::memory_order_relaxed);
  n_seq_.store(0, std::memory_order_relaxed);
  lookup_seconds_.store(0.0, std::memory_order_relaxed);
  train_seconds_.store(0.0, std::memory_order_relaxed);
  learn_seconds_.store(0.0, std::memory_order_relaxed);
  seq_seconds_.store(0.0, std::memory_order_relaxed);
}

void EffectiveSpeedupMeter::restore(const Snapshot& snap) noexcept {
  n_lookup_.store(snap.n_lookup, std::memory_order_relaxed);
  n_train_.store(snap.n_train, std::memory_order_relaxed);
  n_seq_.store(snap.seq_samples, std::memory_order_relaxed);
  lookup_seconds_.store(snap.lookup_seconds, std::memory_order_relaxed);
  train_seconds_.store(snap.train_seconds, std::memory_order_relaxed);
  learn_seconds_.store(snap.learn_seconds, std::memory_order_relaxed);
  seq_seconds_.store(snap.seq_seconds, std::memory_order_relaxed);
}

EffectiveSpeedupMeter& EffectiveSpeedupMeter::global() {
  static EffectiveSpeedupMeter meter;
  return meter;
}

}  // namespace le::obs
