/// @file
/// Deep ensembles: M independently initialized and trained replicas whose
/// prediction spread estimates epistemic uncertainty.  The paper's Section
/// III-B calls model averaging the ideal resolution of the bias-variance
/// trade-off but notes its training cost; this class is that reference
/// point, against which MC-dropout is the cheap approximation
/// (bench_uq compares the two).
#pragma once

#include <vector>

#include "le/data/dataset.hpp"
#include "le/nn/network.hpp"
#include "le/nn/train.hpp"
#include "le/uq/uq_model.hpp"

namespace le::uq {

class DeepEnsemble final : public UqModel {
 public:
  /// Takes ownership of already-trained member networks (>= 2).
  explicit DeepEnsemble(std::vector<nn::Network> members);

  [[nodiscard]] Prediction predict(std::span<const double> input) override;
  /// Batched ensemble inference: one matrix-matrix forward per member.
  [[nodiscard]] std::vector<Prediction> predict_batch(
      const tensor::Matrix& inputs) override;
  [[nodiscard]] std::size_t input_dim() const override;
  [[nodiscard]] std::size_t output_dim() const override;
  [[nodiscard]] std::size_t member_count() const noexcept { return members_.size(); }

  /// Tunes every member's per-layer GEMM plans; choices concatenate in
  /// member order (see UqModel).
  std::vector<nn::LayerPlanChoice> autotune_inference(
      std::size_t batch_hint) override {
    std::vector<nn::LayerPlanChoice> all;
    for (nn::Network& member : members_) {
      auto choices = member.autotune_inference(batch_hint);
      all.insert(all.end(), choices.begin(), choices.end());
    }
    return all;
  }

 private:
  std::vector<nn::Network> members_;
};

/// Trains `members` replicas of the MLP described by `config` on the same
/// dataset with different init/shuffle seeds and returns the ensemble.
[[nodiscard]] DeepEnsemble train_deep_ensemble(
    const nn::MlpConfig& config, std::size_t members,
    const data::Dataset& train_data, const nn::TrainConfig& train_config,
    stats::Rng& rng);

}  // namespace le::uq
