/// @file
/// Data-acquisition policies for the UQ-gated training loop.
///
/// "Creating more examples to train a better ML model is a conflicting
/// requirement as the purpose of training the ML surrogate is to avoid such
/// computation.  The UQ scheme can play a role here ... once [uncertainty]
/// is low enough, the training routine might less likely need more data."
/// (Section III-B.)  These policies decide (a) whether more simulation runs
/// are needed at all and (b) which candidate state points to simulate next.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "le/uq/uq_model.hpp"

namespace le::uq {

/// Scalarizes a multi-output uncertainty into one score (max over outputs).
[[nodiscard]] double uncertainty_score(const Prediction& p);

/// True when the mean uncertainty over the probe points is below the
/// threshold — the "we have enough data" gate.
[[nodiscard]] bool uncertainty_converged(
    UqModel& model, std::span<const std::vector<double>> probe_points,
    double threshold);

/// Mean and max uncertainty score over probe points.
struct UncertaintySurvey {
  double mean_score = 0.0;
  double max_score = 0.0;
};

[[nodiscard]] UncertaintySurvey survey_uncertainty(
    UqModel& model, std::span<const std::vector<double>> probe_points);

/// Active learning: returns the indices of the `budget` candidates with the
/// highest uncertainty score (the paper's "iteratively adding training data
/// ... for regions of chemical space where the current ML model could not
/// make good predictions").
[[nodiscard]] std::vector<std::size_t> select_most_uncertain(
    UqModel& model, std::span<const std::vector<double>> candidates,
    std::size_t budget);

}  // namespace le::uq
