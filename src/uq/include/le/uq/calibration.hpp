/// @file
/// Calibration diagnostics for uncertainty estimates.
///
/// Research issue 10 of the paper warns that dropout-based UQ "does not
/// always mean that the quality of the distribution is dependent on the
/// quality/quantity of data" — two dropout rates can give different spreads
/// for the same data.  These diagnostics make that failure measurable:
/// a calibrated model's standardized residuals z = (y - mu)/sigma should be
/// ~N(0,1), i.e. ~68% within 1 sigma and ~95% within 2 sigma.
#pragma once

#include <span>
#include <vector>

#include "le/data/dataset.hpp"
#include "le/uq/uq_model.hpp"

namespace le::uq {

struct CalibrationReport {
  /// Fraction of targets inside mu +/- 1 sigma (ideal ~0.683).
  double coverage_1sigma = 0.0;
  /// Fraction of targets inside mu +/- 2 sigma (ideal ~0.954).
  double coverage_2sigma = 0.0;
  /// Mean of standardized residuals (ideal 0).
  double z_mean = 0.0;
  /// Standard deviation of standardized residuals (ideal 1; > 1 means
  /// overconfident, < 1 means underconfident).
  double z_stddev = 0.0;
  /// Pearson correlation between predicted sigma and |error| — positive
  /// values mean the spread is informative about the actual error.
  double uncertainty_error_correlation = 0.0;
  /// Mean predicted sigma, averaged over points and output dims.
  double mean_sigma = 0.0;
  /// RMSE of the predictive means.
  double rmse = 0.0;
  std::size_t points = 0;
};

/// Evaluates a UqModel against a labelled dataset.
[[nodiscard]] CalibrationReport calibrate(UqModel& model,
                                          const data::Dataset& dataset);

/// One point of a reliability (calibration) curve.
struct ReliabilityPoint {
  double z = 0.0;         ///< interval half-width, in predicted sigmas
  double nominal = 0.0;   ///< coverage a calibrated Gaussian would give
  double empirical = 0.0; ///< observed fraction inside mu +/- z sigma
};

/// Sweeps interval half-widths and compares nominal Gaussian coverage
/// (erf(z/sqrt(2))) with empirical coverage — the standard reliability
/// diagram for regression UQ.  Points above the diagonal (empirical >
/// nominal) are underconfident, below are overconfident.  Dimensions with
/// sigma = 0 count as covered only on an exact match.  `z_values` defaults
/// to 0.5..3.0 in steps of 0.5.
[[nodiscard]] std::vector<ReliabilityPoint> reliability_curve(
    UqModel& model, const data::Dataset& dataset,
    std::span<const double> z_values = {});

}  // namespace le::uq
