/// @file
/// UqModel adapter for int8 post-training-quantized surrogates.
///
/// A QuantizedNetwork is a deterministic snapshot: it carries no epistemic
/// spread of its own, but it does carry a *known* error bound — the
/// calibration residual measured against the fp network it was quantized
/// from.  This adapter reports that bound as a constant per-output stddev,
/// so the dispatcher's existing UQ gate (score <= threshold) naturally
/// bounds quantization error: a quantized model whose residual exceeds the
/// gate can never answer, and one inside the gate answers with its honest
/// added-error margin attached (cache entries inherit it too).
#pragma once

#include <memory>

#include "le/nn/quantized.hpp"
#include "le/uq/uq_model.hpp"

namespace le::uq {

class QuantizedSurrogate final : public UqModel {
 public:
  /// `added_error` defaults to the network's measured calibration residual;
  /// pass a larger value to serve with extra margin (e.g. residual measured
  /// on a held-out set).  Throws std::invalid_argument on null network or a
  /// non-finite/negative margin.
  explicit QuantizedSurrogate(std::shared_ptr<const nn::QuantizedNetwork> net,
                              double added_error = -1.0);

  [[nodiscard]] Prediction predict(std::span<const double> input) override;
  [[nodiscard]] std::vector<Prediction> predict_batch(
      const tensor::Matrix& inputs) override;

  [[nodiscard]] std::size_t input_dim() const override {
    return net_->input_dim();
  }
  [[nodiscard]] std::size_t output_dim() const override {
    return net_->output_dim();
  }

  /// The constant stddev this adapter reports (the quantization bound).
  [[nodiscard]] double added_error() const noexcept { return added_error_; }
  [[nodiscard]] const nn::QuantizedNetwork& network() const noexcept {
    return *net_;
  }

 private:
  std::shared_ptr<const nn::QuantizedNetwork> net_;
  double added_error_;
};

}  // namespace le::uq
