/// @file
/// Uncertainty-aware prediction interface (Section III-B).
///
/// The paper argues a learned surrogate must report not just a prediction
/// but whether the prediction "is valid enough to be used".  Everything that
/// consumes uncertainty — the SurrogateDispatcher's accept/reject gate, the
/// adaptive training loop, the acquisition policies — programs against this
/// interface; MC-dropout and deep ensembles implement it.
#pragma once

#include <span>
#include <vector>

#include "le/nn/network.hpp"
#include "le/tensor/matrix.hpp"

namespace le::uq {

/// Predictive mean and spread, one entry per output dimension.
struct Prediction {
  std::vector<double> mean;
  std::vector<double> stddev;
};

class UqModel {
 public:
  virtual ~UqModel() = default;

  /// Predictive distribution for one input point.
  [[nodiscard]] virtual Prediction predict(std::span<const double> input) = 0;

  /// Predictive distributions for a batch of points, one per row of
  /// `inputs`.  The base implementation loops predict(); models with a
  /// batched forward override it so per-query dispatch cost amortizes over
  /// the whole batch (the le::serve / dispatcher batch path relies on it).
  [[nodiscard]] virtual std::vector<Prediction> predict_batch(
      const tensor::Matrix& inputs);

  [[nodiscard]] virtual std::size_t input_dim() const = 0;
  [[nodiscard]] virtual std::size_t output_dim() const = 0;

  /// Startup kernel autotuning hook (the paper's ATLAS example applied to
  /// serving): implementations that own nn::Networks forward to
  /// Network::autotune_inference on each, so every dense layer gets the
  /// fastest (kernel, blocking) plan for its shape at `batch_hint` rows.
  /// Returns the per-layer decisions, concatenated over member networks;
  /// the default no-op suits models with no tunable GEMM.
  virtual std::vector<nn::LayerPlanChoice> autotune_inference(
      std::size_t batch_hint) {
    (void)batch_hint;
    return {};
  }
};

}  // namespace le::uq
