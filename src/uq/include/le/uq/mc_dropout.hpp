/// @file
/// MC-dropout uncertainty quantification (Gal & Ghahramani, paper refs
/// [42][43]): dropout masks stay active at inference, so T stochastic
/// forward passes form an implicit ensemble of thinned networks whose
/// spread is the epistemic-uncertainty estimate.
#pragma once

#include <cstddef>

#include "le/nn/network.hpp"
#include "le/uq/uq_model.hpp"

namespace le::uq {

/// Wraps a dropout-bearing network as a UqModel.  The wrapped network must
/// contain at least one DropoutLayer with rate > 0, otherwise all passes
/// coincide and the reported spread is zero (the constructor rejects
/// networks without dropout to prevent that silent failure).
class McDropoutEnsemble final : public UqModel {
 public:
  /// `forward_passes` is T, the implicit-ensemble size.
  McDropoutEnsemble(nn::Network network, std::size_t forward_passes = 32);

  [[nodiscard]] Prediction predict(std::span<const double> input) override;

  /// Batched MC-dropout: T stochastic matrix-matrix passes over the whole
  /// batch instead of rows x T single-row passes.  The per-row statistics
  /// use different (but identically distributed) mask draws than row-wise
  /// predict(), so means/spreads agree statistically, not bitwise.
  [[nodiscard]] std::vector<Prediction> predict_batch(
      const tensor::Matrix& inputs) override;

  [[nodiscard]] std::size_t input_dim() const override;
  [[nodiscard]] std::size_t output_dim() const override;
  [[nodiscard]] std::size_t forward_passes() const noexcept { return passes_; }

  /// Deterministic point prediction (dropout off), for accuracy metrics.
  [[nodiscard]] std::vector<double> predict_mean_only(
      std::span<const double> input);

  /// Tunes the wrapped network's per-layer GEMM plans (see UqModel).
  std::vector<nn::LayerPlanChoice> autotune_inference(
      std::size_t batch_hint) override {
    return network_.autotune_inference(batch_hint);
  }

  [[nodiscard]] nn::Network& network() noexcept { return network_; }

 private:
  nn::Network network_;
  std::size_t passes_;
};

}  // namespace le::uq
