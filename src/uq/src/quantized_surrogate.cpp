#include "le/uq/quantized_surrogate.hpp"

#include <cmath>
#include <stdexcept>

namespace le::uq {

QuantizedSurrogate::QuantizedSurrogate(
    std::shared_ptr<const nn::QuantizedNetwork> net, double added_error)
    : net_(std::move(net)) {
  if (!net_) {
    throw std::invalid_argument("QuantizedSurrogate: null network");
  }
  added_error_ =
      added_error < 0.0 ? net_->report().max_abs_residual : added_error;
  if (!std::isfinite(added_error_) || added_error_ < 0.0) {
    throw std::invalid_argument("QuantizedSurrogate: bad added_error");
  }
}

Prediction QuantizedSurrogate::predict(std::span<const double> input) {
  Prediction p;
  p.mean = net_->predict(input);
  p.stddev.assign(p.mean.size(), added_error_);
  return p;
}

std::vector<Prediction> QuantizedSurrogate::predict_batch(
    const tensor::Matrix& inputs) {
  if (inputs.cols() != input_dim()) {
    throw std::invalid_argument(
        "QuantizedSurrogate::predict_batch: input dim mismatch");
  }
  thread_local tensor::Matrix out;
  net_->predict_batch(inputs, out);
  std::vector<Prediction> predictions(inputs.rows());
  for (std::size_t r = 0; r < inputs.rows(); ++r) {
    predictions[r].mean.assign(out.data() + r * out.cols(),
                               out.data() + (r + 1) * out.cols());
    predictions[r].stddev.assign(out.cols(), added_error_);
  }
  return predictions;
}

}  // namespace le::uq
