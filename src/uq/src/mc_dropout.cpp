#include "le/uq/mc_dropout.hpp"

#include <cmath>
#include <stdexcept>

namespace le::uq {

namespace {
bool has_active_dropout(nn::Network& net) {
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    if (auto* d = dynamic_cast<nn::DropoutLayer*>(&net.layer(i))) {
      if (d->rate() > 0.0) return true;
    }
  }
  return false;
}
}  // namespace

McDropoutEnsemble::McDropoutEnsemble(nn::Network network,
                                     std::size_t forward_passes)
    : network_(std::move(network)), passes_(forward_passes) {
  if (passes_ < 2) {
    throw std::invalid_argument("McDropoutEnsemble: need >= 2 forward passes");
  }
  if (!has_active_dropout(network_)) {
    throw std::invalid_argument(
        "McDropoutEnsemble: network has no active dropout layer; "
        "its MC spread would be identically zero");
  }
  network_.set_training(false);
}

Prediction McDropoutEnsemble::predict(std::span<const double> input) {
  network_.set_training(false);
  network_.set_mc_dropout(true);
  const std::size_t out_dim = network_.output_dim();
  std::vector<double> sum(out_dim, 0.0), sum_sq(out_dim, 0.0);
  for (std::size_t t = 0; t < passes_; ++t) {
    const std::vector<double> y = network_.predict(input);
    for (std::size_t k = 0; k < out_dim; ++k) {
      sum[k] += y[k];
      sum_sq[k] += y[k] * y[k];
    }
  }
  network_.set_mc_dropout(false);

  Prediction p;
  p.mean.resize(out_dim);
  p.stddev.resize(out_dim);
  const double n = static_cast<double>(passes_);
  for (std::size_t k = 0; k < out_dim; ++k) {
    p.mean[k] = sum[k] / n;
    const double var =
        std::max(0.0, (sum_sq[k] - n * p.mean[k] * p.mean[k]) / (n - 1.0));
    p.stddev[k] = std::sqrt(var);
  }
  return p;
}

std::vector<Prediction> McDropoutEnsemble::predict_batch(
    const tensor::Matrix& inputs) {
  if (inputs.cols() != network_.input_dim()) {
    throw std::invalid_argument(
        "McDropoutEnsemble::predict_batch: input dim mismatch");
  }
  network_.set_training(false);
  network_.set_mc_dropout(true);
  const std::size_t rows = inputs.rows();
  const std::size_t out_dim = network_.output_dim();
  tensor::Matrix sum(rows, out_dim), sum_sq(rows, out_dim), y;
  for (std::size_t t = 0; t < passes_; ++t) {
    network_.predict_batch(inputs, y);
    for (std::size_t i = 0; i < y.size(); ++i) {
      const double v = y.data()[i];
      sum.data()[i] += v;
      sum_sq.data()[i] += v * v;
    }
  }
  network_.set_mc_dropout(false);

  std::vector<Prediction> out(rows);
  const double n = static_cast<double>(passes_);
  for (std::size_t r = 0; r < rows; ++r) {
    Prediction& p = out[r];
    p.mean.resize(out_dim);
    p.stddev.resize(out_dim);
    for (std::size_t k = 0; k < out_dim; ++k) {
      p.mean[k] = sum(r, k) / n;
      const double var =
          std::max(0.0, (sum_sq(r, k) - n * p.mean[k] * p.mean[k]) / (n - 1.0));
      p.stddev[k] = std::sqrt(var);
    }
  }
  return out;
}

std::size_t McDropoutEnsemble::input_dim() const { return network_.input_dim(); }

std::size_t McDropoutEnsemble::output_dim() const { return network_.output_dim(); }

std::vector<double> McDropoutEnsemble::predict_mean_only(
    std::span<const double> input) {
  network_.set_training(false);
  network_.set_mc_dropout(false);
  return network_.predict(input);
}

}  // namespace le::uq
