#include "le/uq/deep_ensemble.hpp"

#include <cmath>
#include <stdexcept>

#include "le/nn/loss.hpp"
#include "le/nn/optimizer.hpp"

namespace le::uq {

DeepEnsemble::DeepEnsemble(std::vector<nn::Network> members)
    : members_(std::move(members)) {
  if (members_.size() < 2) {
    throw std::invalid_argument("DeepEnsemble: need >= 2 members");
  }
  for (auto& m : members_) {
    if (m.input_dim() != members_.front().input_dim() ||
        m.output_dim() != members_.front().output_dim()) {
      throw std::invalid_argument("DeepEnsemble: member shape mismatch");
    }
    m.set_training(false);
  }
}

Prediction DeepEnsemble::predict(std::span<const double> input) {
  const std::size_t out_dim = output_dim();
  std::vector<double> sum(out_dim, 0.0), sum_sq(out_dim, 0.0);
  for (auto& member : members_) {
    const std::vector<double> y = member.predict(input);
    for (std::size_t k = 0; k < out_dim; ++k) {
      sum[k] += y[k];
      sum_sq[k] += y[k] * y[k];
    }
  }
  Prediction p;
  p.mean.resize(out_dim);
  p.stddev.resize(out_dim);
  const double n = static_cast<double>(members_.size());
  for (std::size_t k = 0; k < out_dim; ++k) {
    p.mean[k] = sum[k] / n;
    const double var =
        std::max(0.0, (sum_sq[k] - n * p.mean[k] * p.mean[k]) / (n - 1.0));
    p.stddev[k] = std::sqrt(var);
  }
  return p;
}

std::vector<Prediction> DeepEnsemble::predict_batch(
    const tensor::Matrix& inputs) {
  if (inputs.cols() != input_dim()) {
    throw std::invalid_argument("DeepEnsemble::predict_batch: input dim mismatch");
  }
  const std::size_t rows = inputs.rows();
  const std::size_t out_dim = output_dim();
  tensor::Matrix sum(rows, out_dim), sum_sq(rows, out_dim), y;
  for (auto& member : members_) {
    member.predict_batch(inputs, y);
    for (std::size_t i = 0; i < y.size(); ++i) {
      const double v = y.data()[i];
      sum.data()[i] += v;
      sum_sq.data()[i] += v * v;
    }
  }

  std::vector<Prediction> out(rows);
  const double n = static_cast<double>(members_.size());
  for (std::size_t r = 0; r < rows; ++r) {
    Prediction& p = out[r];
    p.mean.resize(out_dim);
    p.stddev.resize(out_dim);
    for (std::size_t k = 0; k < out_dim; ++k) {
      p.mean[k] = sum(r, k) / n;
      const double var =
          std::max(0.0, (sum_sq(r, k) - n * p.mean[k] * p.mean[k]) / (n - 1.0));
      p.stddev[k] = std::sqrt(var);
    }
  }
  return out;
}

std::size_t DeepEnsemble::input_dim() const {
  return members_.front().input_dim();
}

std::size_t DeepEnsemble::output_dim() const {
  return members_.front().output_dim();
}

DeepEnsemble train_deep_ensemble(const nn::MlpConfig& config,
                                 std::size_t members,
                                 const data::Dataset& train_data,
                                 const nn::TrainConfig& train_config,
                                 stats::Rng& rng) {
  std::vector<nn::Network> nets;
  nets.reserve(members);
  const nn::MseLoss loss;
  for (std::size_t m = 0; m < members; ++m) {
    stats::Rng member_rng = rng.split(1000 + m);
    nn::Network net = nn::make_mlp(config, member_rng);
    nn::AdamOptimizer opt(1e-2);
    nn::fit(net, train_data, loss, opt, train_config, member_rng);
    nets.push_back(std::move(net));
  }
  return DeepEnsemble(std::move(nets));
}

}  // namespace le::uq
