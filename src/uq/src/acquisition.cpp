#include "le/uq/acquisition.hpp"

#include <algorithm>
#include <numeric>

namespace le::uq {

double uncertainty_score(const Prediction& p) {
  double score = 0.0;
  for (double s : p.stddev) score = std::max(score, s);
  return score;
}

UncertaintySurvey survey_uncertainty(
    UqModel& model, std::span<const std::vector<double>> probe_points) {
  UncertaintySurvey survey;
  if (probe_points.empty()) return survey;
  for (const auto& point : probe_points) {
    const double s = uncertainty_score(model.predict(point));
    survey.mean_score += s;
    survey.max_score = std::max(survey.max_score, s);
  }
  survey.mean_score /= static_cast<double>(probe_points.size());
  return survey;
}

bool uncertainty_converged(UqModel& model,
                           std::span<const std::vector<double>> probe_points,
                           double threshold) {
  return survey_uncertainty(model, probe_points).mean_score <= threshold;
}

std::vector<std::size_t> select_most_uncertain(
    UqModel& model, std::span<const std::vector<double>> candidates,
    std::size_t budget) {
  std::vector<double> scores(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = uncertainty_score(model.predict(candidates[i]));
  }
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  order.resize(std::min(budget, order.size()));
  return order;
}

}  // namespace le::uq
