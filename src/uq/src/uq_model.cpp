#include "le/uq/uq_model.hpp"

#include <stdexcept>

namespace le::uq {

std::vector<Prediction> UqModel::predict_batch(const tensor::Matrix& inputs) {
  if (inputs.cols() != input_dim()) {
    throw std::invalid_argument("UqModel::predict_batch: input dim mismatch");
  }
  std::vector<Prediction> out;
  out.reserve(inputs.rows());
  for (std::size_t r = 0; r < inputs.rows(); ++r) {
    out.push_back(predict(inputs.row(r)));
  }
  return out;
}

}  // namespace le::uq
