#include "le/uq/calibration.hpp"

#include <cmath>
#include <stdexcept>

#include "le/stats/descriptive.hpp"

namespace le::uq {

CalibrationReport calibrate(UqModel& model, const data::Dataset& dataset) {
  if (dataset.empty()) throw std::invalid_argument("calibrate: empty dataset");
  if (dataset.input_dim() != model.input_dim() ||
      dataset.target_dim() != model.output_dim()) {
    throw std::invalid_argument("calibrate: dataset/model shape mismatch");
  }

  std::vector<double> zs;
  std::vector<double> sigmas;
  std::vector<double> abs_errors;
  double se_sum = 0.0;
  std::size_t inside1 = 0, inside2 = 0, counted = 0;

  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const Prediction p = model.predict(dataset.input(i));
    const auto target = dataset.target(i);
    for (std::size_t k = 0; k < target.size(); ++k) {
      const double err = target[k] - p.mean[k];
      se_sum += err * err;
      sigmas.push_back(p.stddev[k]);
      abs_errors.push_back(std::abs(err));
      if (p.stddev[k] > 0.0) {
        const double z = err / p.stddev[k];
        zs.push_back(z);
        if (std::abs(z) <= 1.0) ++inside1;
        if (std::abs(z) <= 2.0) ++inside2;
        ++counted;
      }
    }
  }

  CalibrationReport report;
  report.points = dataset.size();
  report.rmse = std::sqrt(se_sum / static_cast<double>(sigmas.size()));
  report.mean_sigma = stats::mean(sigmas);
  if (counted > 0) {
    report.coverage_1sigma = static_cast<double>(inside1) / static_cast<double>(counted);
    report.coverage_2sigma = static_cast<double>(inside2) / static_cast<double>(counted);
    report.z_mean = stats::mean(zs);
    report.z_stddev = stats::stddev(zs);
  }
  report.uncertainty_error_correlation = stats::correlation(sigmas, abs_errors);
  return report;
}

std::vector<ReliabilityPoint> reliability_curve(
    UqModel& model, const data::Dataset& dataset,
    std::span<const double> z_values) {
  if (dataset.empty()) {
    throw std::invalid_argument("reliability_curve: empty dataset");
  }
  if (dataset.input_dim() != model.input_dim() ||
      dataset.target_dim() != model.output_dim()) {
    throw std::invalid_argument("reliability_curve: shape mismatch");
  }
  static constexpr double kDefaultZ[] = {0.5, 1.0, 1.5, 2.0, 2.5, 3.0};
  if (z_values.empty()) z_values = kDefaultZ;

  // One prediction pass; coverage for every z is counted from the same
  // residual/sigma pairs.
  std::vector<double> errs;
  std::vector<double> sigmas;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const Prediction p = model.predict(dataset.input(i));
    const auto target = dataset.target(i);
    for (std::size_t k = 0; k < target.size(); ++k) {
      errs.push_back(std::abs(target[k] - p.mean[k]));
      sigmas.push_back(p.stddev[k]);
    }
  }

  std::vector<ReliabilityPoint> curve;
  curve.reserve(z_values.size());
  for (const double z : z_values) {
    if (!(z > 0.0)) {
      throw std::invalid_argument("reliability_curve: z values must be > 0");
    }
    ReliabilityPoint point;
    point.z = z;
    point.nominal = std::erf(z / std::sqrt(2.0));
    std::size_t inside = 0;
    for (std::size_t j = 0; j < errs.size(); ++j) {
      if (errs[j] <= z * sigmas[j]) ++inside;
    }
    point.empirical =
        static_cast<double>(inside) / static_cast<double>(errs.size());
    curve.push_back(point);
  }
  return curve;
}

}  // namespace le::uq
