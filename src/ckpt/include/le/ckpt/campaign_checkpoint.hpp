/// @file
/// Campaign-level checkpoint/restart (le::ckpt).
///
/// CampaignState is everything a crashed MLaroundHPC campaign needs to
/// continue with bounded lost work: the completed-task set, the accumulated
/// labelled dataset, the latest surrogate (nn::save_network text) with the
/// normalizer state it was trained against, the driver's RNG stream, and
/// the EffectiveSpeedupMeter counters so the live Section III-D accounting
/// survives the restart.  CampaignCheckpointer persists snapshots through
/// the CRC-framed atomic container (container.hpp), rotates a bounded set
/// of good snapshots, and on restart returns the newest snapshot that
/// passes integrity checks — corrupt or torn files are skipped, not fatal.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "le/ckpt/container.hpp"
#include "le/data/dataset.hpp"
#include "le/obs/speedup_meter.hpp"
#include "le/stats/rng.hpp"

namespace le::obs {
class Counter;
class Histogram;
}  // namespace le::obs

namespace le::ckpt {

/// Serializes an Rng (seed + engine position) for exact stream resume.
[[nodiscard]] std::string encode_rng(const stats::Rng& rng);
/// Rebuilds an Rng from encode_rng output (throws CheckpointError on
/// malformed state).
[[nodiscard]] stats::Rng decode_rng(const std::string& text);

/// One restartable campaign snapshot.  `kind` guards against resuming a
/// checkpoint into the wrong driver; `progress` is the driver-defined
/// resume cursor (budget spent, rounds completed, ...).
struct CampaignState {
  std::string kind;
  std::uint64_t sequence = 0;  ///< stamped by CampaignCheckpointer::save
  std::uint64_t progress = 0;
  std::uint64_t simulations_run = 0;
  std::uint64_t simulations_failed = 0;
  /// Driver-defined completed-task ids (e.g. warmup/initial-sample
  /// indices already attempted), so interrupted fan-out phases rerun only
  /// the missing tasks.
  std::vector<std::uint64_t> completed_tasks;
  /// Accumulated labelled samples (the campaign's training investment).
  data::Dataset dataset;
  /// Driver RNG at the snapshot point (encode_rng format).
  std::string rng_state;
  /// Latest trained surrogate, verbatim nn::save_network text; empty
  /// before the first training.
  std::string network_text;
  /// Input/output scaler state the network was trained against (MinMax
  /// lo/hi per column); empty when no network was trained yet.
  std::vector<double> input_scale_lo, input_scale_hi;
  std::vector<double> output_scale_lo, output_scale_hi;
  /// Driver-defined scalars and series (best objective, trace, ...).
  std::vector<double> scalars;
  std::vector<double> series;
  /// Live effective-speedup accounting at the snapshot point.
  obs::EffectiveSpeedupMeter::Snapshot meter;

  /// Container round trip.  decode throws CheckpointError on any
  /// malformed or missing section.
  [[nodiscard]] std::vector<Section> encode() const;
  [[nodiscard]] static CampaignState decode(
      const std::vector<Section>& sections);
};

struct CheckpointerConfig {
  /// Directory the snapshots live in (created if missing).
  std::string directory;
  /// File-name stem: snapshots are `<campaign_id>.<sequence>.ckpt`.
  std::string campaign_id = "campaign";
  /// Completed tasks between snapshots — the lost-work bound.  due()
  /// compares against the task count at the last save.
  std::uint64_t interval = 8;
  /// Good snapshots retained; older ones are deleted after each save.
  /// Keeping >= 2 is what makes corrupt-newest recovery possible.
  std::size_t keep = 3;

  void validate() const;
};

/// What the checkpointer did this process lifetime (also exported through
/// le::obs when metrics are enabled: ckpt.saves, ckpt.bytes_written,
/// ckpt.save_seconds, ckpt.restores, ckpt.corrupt_skipped,
/// ckpt.load_seconds).
struct CheckpointerStats {
  std::size_t saves = 0;
  std::size_t bytes_written = 0;
  std::size_t restores = 0;        ///< successful load_latest() calls
  std::size_t corrupt_skipped = 0; ///< snapshots rejected by integrity checks
  double save_seconds = 0.0;
  double load_seconds = 0.0;
};

/// Snapshot store for one campaign.  Not thread-safe: campaign drivers
/// checkpoint from the driver thread only (simulations may still fan out
/// over a pool between snapshots).
class CampaignCheckpointer {
 public:
  explicit CampaignCheckpointer(CheckpointerConfig config);

  [[nodiscard]] const CheckpointerConfig& config() const noexcept {
    return config_;
  }

  /// True when at least `interval` tasks completed since the last save
  /// (task count = simulations run + failed).  Drivers may also save
  /// unconditionally at coarse boundaries (round ends, campaign end).
  [[nodiscard]] bool due(std::uint64_t completed_tasks) const noexcept;

  /// Stamps `state.sequence`, writes it atomically, then prunes snapshots
  /// beyond config().keep.  Returns the file path written.
  std::string save(CampaignState& state);

  /// Newest snapshot that passes framing + CRC + decode checks; corrupt
  /// or torn candidates are counted in stats().corrupt_skipped and
  /// skipped.  Empty when no valid snapshot exists.
  [[nodiscard]] std::optional<CampaignState> load_latest();

  [[nodiscard]] const CheckpointerStats& stats() const noexcept {
    return stats_;
  }

  /// Snapshot files currently on disk, oldest first.
  [[nodiscard]] std::vector<std::string> list_snapshots() const;

 private:
  [[nodiscard]] std::string path_for(std::uint64_t sequence) const;
  /// (sequence, path) pairs present on disk, ascending by sequence.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::string>>
  scan() const;
  void prune();

  CheckpointerConfig config_;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t last_saved_tasks_ = 0;
  bool saved_or_loaded_ = false;
  CheckpointerStats stats_;

  /// Metric handles, null unless metrics were enabled at construction.
  obs::Counter* m_saves_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_restores_ = nullptr;
  obs::Counter* m_corrupt_ = nullptr;
  obs::Histogram* m_save_seconds_ = nullptr;
  obs::Histogram* m_load_seconds_ = nullptr;
};

}  // namespace le::ckpt
