/// @file
/// Crash-consistent checkpoint container (le::ckpt).
///
/// Long MLaroundHPC campaigns only amortize their training investment over
/// thousands of runs (Section III-D), and "AI-coupled HPC Workflows"
/// (arXiv:2208.11745) names persistent, restartable learning state a
/// prerequisite for production coupling.  This header provides the storage
/// layer: a versioned container of named sections, each framed with its
/// byte length and a CRC32, terminated by an end marker — so a truncated
/// (torn) file fails to parse and a bit-flipped one fails its checksum —
/// plus an atomic durable write (temp file in the same directory, flush,
/// fsync, rename) so a crash at any instant leaves either the previous
/// complete checkpoint or the new complete checkpoint, never a hybrid.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace le::ckpt {

/// Thrown when a checkpoint cannot be read back: truncation, checksum
/// mismatch, version/magic mismatch or malformed framing.  Recovery policy
/// (skip to an older snapshot) lives in CampaignCheckpointer, not here.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte
/// string; crc32("123456789") == 0xCBF43926.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes) noexcept;

/// One named payload inside a checkpoint.  Payloads are arbitrary bytes
/// (framed by length, not delimiters), so embedded newlines and NULs are
/// fine — nn::save_network output goes in verbatim.
struct Section {
  std::string name;
  std::string payload;
};

/// Serializes sections into the framed container format:
///
///   le-ckpt-v1\n
///   sections <count>\n
///   section <name> <payload_bytes> <crc32 hex>\n
///   <payload bytes>\n            (repeated per section)
///   end\n
void write_container(std::ostream& out, const std::vector<Section>& sections);

/// Parses a container, verifying framing and every CRC.  Throws
/// CheckpointError on any corruption (truncation, bad CRC, bad header).
[[nodiscard]] std::vector<Section> read_container(std::istream& in);

/// Durably replaces `path` with `bytes`: writes `<path>.tmp`, flushes and
/// fsyncs it, renames it over `path`, then fsyncs the directory.  A crash
/// anywhere in the sequence leaves `path` either absent/old or fully new.
/// Traverses runtime crash points "ckpt.temp_written" (temp durable, not
/// yet renamed) and "ckpt.renamed" for kill-mid-write tests.
void atomic_write_file(const std::string& path, std::string_view bytes);

/// atomic_write_file of a framed container.  Returns bytes written.
std::size_t write_checkpoint(const std::string& path,
                             const std::vector<Section>& sections);

/// Reads and verifies a checkpoint file written by write_checkpoint.
[[nodiscard]] std::vector<Section> read_checkpoint(const std::string& path);

}  // namespace le::ckpt
