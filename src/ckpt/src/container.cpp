#include "le/ckpt/container.hpp"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "le/runtime/fault.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define LE_CKPT_POSIX 1
#endif

namespace le::ckpt {

namespace {

constexpr const char* kMagic = "le-ckpt-v1";

/// The CRC-32 lookup table, built once (reflected 0xEDB88320 polynomial).
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

[[noreturn]] void corrupt(const std::string& what) {
  throw CheckpointError("checkpoint: " + what);
}

std::string read_line(std::istream& in, const char* context) {
  std::string line;
  if (!std::getline(in, line)) {
    corrupt(std::string("truncated at ") + context);
  }
  // Every line the writer emits is newline-terminated; getline only sets
  // eofbit here when the final '\n' was torn off (truncated file).
  if (in.eof()) {
    corrupt(std::string("unterminated line at ") + context);
  }
  return line;
}

/// Validates a section name: one token, no whitespace (names share the
/// frame header line with the length and CRC fields).
void check_name(const std::string& name) {
  if (name.empty() || name.find_first_of(" \t\r\n") != std::string::npos) {
    throw std::invalid_argument("checkpoint: bad section name '" + name + "'");
  }
}

#ifdef LE_CKPT_POSIX
/// fsync a path (file or directory); best effort for directories where
/// some filesystems refuse O_RDONLY directory syncs.
void fsync_path(const std::string& path, bool required) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (required) {
      corrupt("cannot open for fsync: " + path + " (" +
              std::strerror(errno) + ")");
    }
    return;
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && required) {
    corrupt("fsync failed: " + path + " (" + std::strerror(errno) + ")");
  }
}
#endif

}  // namespace

std::uint32_t crc32(std::string_view bytes) noexcept {
  const auto& table = crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (unsigned char byte : bytes) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void write_container(std::ostream& out, const std::vector<Section>& sections) {
  out << kMagic << '\n' << "sections " << sections.size() << '\n';
  for (const Section& s : sections) {
    check_name(s.name);
    char crc_hex[16];
    std::snprintf(crc_hex, sizeof(crc_hex), "%08x", crc32(s.payload));
    out << "section " << s.name << ' ' << s.payload.size() << ' ' << crc_hex
        << '\n';
    out.write(s.payload.data(),
              static_cast<std::streamsize>(s.payload.size()));
    out << '\n';
  }
  out << "end\n";
  if (!out) corrupt("stream write failed");
}

std::vector<Section> read_container(std::istream& in) {
  if (read_line(in, "magic") != kMagic) corrupt("bad magic/version header");
  std::size_t count = 0;
  {
    std::istringstream header(read_line(in, "section count"));
    std::string tag;
    if (!(header >> tag >> count) || tag != "sections") {
      corrupt("bad section-count header");
    }
  }
  std::vector<Section> sections;
  sections.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::istringstream frame(read_line(in, "frame header"));
    std::string tag, name, crc_hex;
    std::size_t size = 0;
    if (!(frame >> tag >> name >> size >> crc_hex) || tag != "section") {
      corrupt("bad frame header for section " + std::to_string(i));
    }
    Section s;
    s.name = std::move(name);
    s.payload.resize(size);
    if (size > 0) {
      in.read(s.payload.data(), static_cast<std::streamsize>(size));
      if (static_cast<std::size_t>(in.gcount()) != size) {
        corrupt("truncated payload in section '" + s.name + "'");
      }
    }
    if (in.get() != '\n') corrupt("missing frame terminator after '" +
                                  s.name + "'");
    const std::uint32_t expected =
        static_cast<std::uint32_t>(std::stoul(crc_hex, nullptr, 16));
    if (crc32(s.payload) != expected) {
      corrupt("CRC mismatch in section '" + s.name + "'");
    }
    sections.push_back(std::move(s));
  }
  if (read_line(in, "end marker") != "end") corrupt("missing end marker");
  return sections;
}

void atomic_write_file(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
#ifdef LE_CKPT_POSIX
  // O_TRUNC: a stale temp file from an earlier crash is simply overwritten.
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) corrupt("cannot create " + tmp + " (" + std::strerror(errno) + ")");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ::ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      corrupt("write failed: " + tmp + " (" + std::strerror(err) + ")");
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    corrupt("fsync failed: " + tmp + " (" + std::strerror(err) + ")");
  }
  ::close(fd);
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) corrupt("cannot create " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) corrupt("write failed: " + tmp);
  }
#endif
  // The temp file is durable but invisible to readers; a kill here must
  // leave the previous checkpoint intact (tests arm this point).
  runtime::crash_point("ckpt.temp_written");
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) corrupt("rename " + tmp + " -> " + path + ": " + ec.message());
  runtime::crash_point("ckpt.renamed");
#ifdef LE_CKPT_POSIX
  // Make the rename itself durable: sync the containing directory.
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  fsync_path(dir.empty() ? "." : dir, /*required=*/false);
#endif
}

std::size_t write_checkpoint(const std::string& path,
                             const std::vector<Section>& sections) {
  std::ostringstream buffer(std::ios::binary);
  write_container(buffer, sections);
  const std::string bytes = std::move(buffer).str();
  atomic_write_file(path, bytes);
  return bytes.size();
}

std::vector<Section> read_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) corrupt("cannot open " + path);
  return read_container(in);
}

}  // namespace le::ckpt
