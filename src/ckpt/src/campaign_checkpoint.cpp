#include "le/ckpt/campaign_checkpoint.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <locale>
#include <sstream>

#include "le/obs/metrics.hpp"

namespace le::ckpt {

namespace {

namespace fs = std::filesystem;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Classic-locale text stream: checkpoint payloads must round-trip
/// bit-exactly regardless of the host's global locale.
std::ostringstream make_out() {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out.precision(17);
  return out;
}

std::istringstream make_in(const std::string& text) {
  std::istringstream in(text);
  in.imbue(std::locale::classic());
  return in;
}

[[noreturn]] void bad_section(const std::string& name) {
  throw CheckpointError("checkpoint: malformed section '" + name + "'");
}

template <typename T>
std::string encode_values(const std::vector<T>& values) {
  auto out = make_out();
  out << values.size();
  for (const T& v : values) out << ' ' << v;
  return std::move(out).str();
}

template <typename T>
std::vector<T> decode_values(const std::string& text, const char* name) {
  auto in = make_in(text);
  std::size_t count = 0;
  if (!(in >> count)) bad_section(name);
  std::vector<T> values(count);
  for (T& v : values) {
    if (!(in >> v)) bad_section(name);
  }
  return values;
}

const Section& find_section(const std::vector<Section>& sections,
                            const std::string& name) {
  for (const Section& s : sections) {
    if (s.name == name) return s;
  }
  throw CheckpointError("checkpoint: missing section '" + name + "'");
}

std::string encode_dataset(const data::Dataset& dataset) {
  auto out = make_out();
  out << dataset.input_dim() << ' ' << dataset.target_dim() << ' '
      << dataset.size() << '\n';
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    for (double v : dataset.input(i)) out << v << ' ';
    for (double v : dataset.target(i)) out << v << ' ';
    out << '\n';
  }
  return std::move(out).str();
}

data::Dataset decode_dataset(const std::string& text) {
  auto in = make_in(text);
  std::size_t input_dim = 0, target_dim = 0, count = 0;
  if (!(in >> input_dim >> target_dim >> count)) bad_section("dataset");
  data::Dataset dataset(input_dim, target_dim);
  std::vector<double> input(input_dim), target(target_dim);
  for (std::size_t i = 0; i < count; ++i) {
    for (double& v : input) {
      if (!(in >> v)) bad_section("dataset");
    }
    for (double& v : target) {
      if (!(in >> v)) bad_section("dataset");
    }
    dataset.add(input, target);
  }
  return dataset;
}

}  // namespace

std::string encode_rng(const stats::Rng& rng) {
  auto out = make_out();
  // mt19937_64 streams its full 312-word state; seed_ is carried
  // separately because split() derives children from it, not the engine.
  out << rng.seed() << ' ';
  stats::Rng copy = rng;  // operator<< on the engine is non-const
  out << copy.engine();
  return std::move(out).str();
}

stats::Rng decode_rng(const std::string& text) {
  auto in = make_in(text);
  std::uint64_t seed = 0;
  if (!(in >> seed)) throw CheckpointError("checkpoint: bad rng state");
  stats::Rng rng(seed);
  if (!(in >> rng.engine())) {
    throw CheckpointError("checkpoint: bad rng engine state");
  }
  return rng;
}

std::vector<Section> CampaignState::encode() const {
  std::vector<Section> sections;
  {
    auto out = make_out();
    out << kind << ' ' << sequence << ' ' << progress << ' '
        << simulations_run << ' ' << simulations_failed;
    sections.push_back({"meta", std::move(out).str()});
  }
  sections.push_back({"completed", encode_values(completed_tasks)});
  sections.push_back({"dataset", encode_dataset(dataset)});
  sections.push_back({"rng", rng_state});
  sections.push_back({"network", network_text});
  {
    auto out = make_out();
    out << encode_values(input_scale_lo) << '\n'
        << encode_values(input_scale_hi) << '\n'
        << encode_values(output_scale_lo) << '\n'
        << encode_values(output_scale_hi);
    sections.push_back({"normalizer", std::move(out).str()});
  }
  sections.push_back({"scalars", encode_values(scalars)});
  sections.push_back({"series", encode_values(series)});
  {
    auto out = make_out();
    out << meter.n_lookup << ' ' << meter.n_train << ' ' << meter.seq_samples
        << ' ' << meter.lookup_seconds << ' ' << meter.train_seconds << ' '
        << meter.learn_seconds << ' ' << meter.seq_seconds;
    sections.push_back({"meter", std::move(out).str()});
  }
  return sections;
}

CampaignState CampaignState::decode(const std::vector<Section>& sections) {
  CampaignState state;
  {
    auto in = make_in(find_section(sections, "meta").payload);
    if (!(in >> state.kind >> state.sequence >> state.progress >>
          state.simulations_run >> state.simulations_failed)) {
      bad_section("meta");
    }
  }
  state.completed_tasks = decode_values<std::uint64_t>(
      find_section(sections, "completed").payload, "completed");
  state.dataset = decode_dataset(find_section(sections, "dataset").payload);
  state.rng_state = find_section(sections, "rng").payload;
  state.network_text = find_section(sections, "network").payload;
  {
    auto in = make_in(find_section(sections, "normalizer").payload);
    std::string line;
    const auto next_vector = [&] {
      if (!std::getline(in, line)) bad_section("normalizer");
      return decode_values<double>(line, "normalizer");
    };
    state.input_scale_lo = next_vector();
    state.input_scale_hi = next_vector();
    state.output_scale_lo = next_vector();
    state.output_scale_hi = next_vector();
  }
  state.scalars = decode_values<double>(
      find_section(sections, "scalars").payload, "scalars");
  state.series = decode_values<double>(
      find_section(sections, "series").payload, "series");
  {
    auto in = make_in(find_section(sections, "meter").payload);
    if (!(in >> state.meter.n_lookup >> state.meter.n_train >>
          state.meter.seq_samples >> state.meter.lookup_seconds >>
          state.meter.train_seconds >> state.meter.learn_seconds >>
          state.meter.seq_seconds)) {
      bad_section("meter");
    }
  }
  // The rng section must be replayable now, not when the campaign first
  // draws from it (fail at restore, where fallback is still possible).
  if (!state.rng_state.empty()) (void)decode_rng(state.rng_state);
  return state;
}

void CheckpointerConfig::validate() const {
  if (directory.empty()) {
    throw std::invalid_argument("CampaignCheckpointer: empty directory");
  }
  if (campaign_id.empty() ||
      campaign_id.find_first_of("/ \t\n") != std::string::npos) {
    throw std::invalid_argument("CampaignCheckpointer: bad campaign_id '" +
                                campaign_id + "'");
  }
  if (interval == 0) {
    throw std::invalid_argument("CampaignCheckpointer: interval == 0");
  }
  if (keep == 0) {
    throw std::invalid_argument("CampaignCheckpointer: keep == 0");
  }
}

CampaignCheckpointer::CampaignCheckpointer(CheckpointerConfig config)
    : config_(std::move(config)) {
  config_.validate();
  fs::create_directories(config_.directory);
  // Continue the sequence past anything already on disk, including
  // corrupt files — their numbers are burned, never reused.
  for (const auto& entry : scan()) {
    next_sequence_ = std::max(next_sequence_, entry.first + 1);
  }
  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    m_saves_ = &registry.counter("ckpt.saves");
    m_bytes_ = &registry.counter("ckpt.bytes_written");
    m_restores_ = &registry.counter("ckpt.restores");
    m_corrupt_ = &registry.counter("ckpt.corrupt_skipped");
    m_save_seconds_ = &registry.histogram("ckpt.save_seconds");
    m_load_seconds_ = &registry.histogram("ckpt.load_seconds");
  }
}

bool CampaignCheckpointer::due(std::uint64_t completed_tasks) const noexcept {
  if (!saved_or_loaded_) return completed_tasks >= config_.interval;
  return completed_tasks >= last_saved_tasks_ + config_.interval;
}

std::string CampaignCheckpointer::path_for(std::uint64_t sequence) const {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".%08llu.ckpt",
                static_cast<unsigned long long>(sequence));
  return (fs::path(config_.directory) / (config_.campaign_id + suffix))
      .string();
}

std::vector<std::pair<std::uint64_t, std::string>> CampaignCheckpointer::scan()
    const {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  const std::string prefix = config_.campaign_id + ".";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.directory, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + 5 || name.rfind(prefix, 0) != 0 ||
        name.substr(name.size() - 5) != ".ckpt") {
      continue;
    }
    const std::string_view digits(name.data() + prefix.size(),
                                  name.size() - prefix.size() - 5);
    std::uint64_t sequence = 0;
    const auto [ptr, err] = std::from_chars(
        digits.data(), digits.data() + digits.size(), sequence);
    if (err != std::errc{} || ptr != digits.data() + digits.size()) continue;
    found.emplace_back(sequence, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

std::string CampaignCheckpointer::save(CampaignState& state) {
  const auto t0 = std::chrono::steady_clock::now();
  state.sequence = next_sequence_++;
  const std::string path = path_for(state.sequence);
  const std::size_t bytes = write_checkpoint(path, state.encode());
  prune();
  const double seconds = seconds_since(t0);
  ++stats_.saves;
  stats_.bytes_written += bytes;
  stats_.save_seconds += seconds;
  last_saved_tasks_ = state.simulations_run + state.simulations_failed;
  saved_or_loaded_ = true;
  if (m_saves_) m_saves_->add();
  if (m_bytes_) m_bytes_->add(bytes);
  if (m_save_seconds_) m_save_seconds_->record(seconds);
  return path;
}

void CampaignCheckpointer::prune() {
  auto snapshots = scan();
  if (snapshots.size() <= config_.keep) return;
  for (std::size_t i = 0; i + config_.keep < snapshots.size(); ++i) {
    std::error_code ec;
    fs::remove(snapshots[i].second, ec);  // best effort
  }
}

std::optional<CampaignState> CampaignCheckpointer::load_latest() {
  const auto t0 = std::chrono::steady_clock::now();
  auto snapshots = scan();
  std::optional<CampaignState> result;
  // Newest first; the first snapshot that reads, checksums and decodes
  // cleanly wins.  Everything newer that failed is recovery debt the
  // atomic-write protocol bounds to interval tasks.
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    try {
      result = CampaignState::decode(read_checkpoint(it->second));
      break;
    } catch (const CheckpointError&) {
      ++stats_.corrupt_skipped;
      if (m_corrupt_) m_corrupt_->add();
    }
  }
  stats_.load_seconds += seconds_since(t0);
  if (m_load_seconds_) m_load_seconds_->record(seconds_since(t0));
  if (result) {
    ++stats_.restores;
    if (m_restores_) m_restores_->add();
    last_saved_tasks_ = result->simulations_run + result->simulations_failed;
    saved_or_loaded_ = true;
  }
  return result;
}

std::vector<std::string> CampaignCheckpointer::list_snapshots() const {
  std::vector<std::string> paths;
  for (const auto& entry : scan()) paths.push_back(entry.second);
  return paths;
}

}  // namespace le::ckpt
