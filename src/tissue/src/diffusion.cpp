#include "le/tissue/diffusion.hpp"

#include <cmath>
#include <stdexcept>

namespace le::tissue {

DiffusionSolver::DiffusionSolver(DiffusionParams params) : params_(params) {
  if (params_.diffusivity <= 0.0) {
    throw std::invalid_argument("DiffusionSolver: diffusivity must be > 0");
  }
  if (params_.dx <= 0.0) {
    throw std::invalid_argument("DiffusionSolver: dx must be > 0");
  }
}

double DiffusionSolver::stable_dt() const noexcept {
  // FTCS 2-D stability: dt <= dx^2 / (4 D); use 80% of the limit.
  return 0.2 * params_.dx * params_.dx / params_.diffusivity;
}

double DiffusionSolver::sweep(Grid2D& field, const Grid2D& sources,
                              const Grid2D& cells) const {
  if (field.nx() != sources.nx() || field.ny() != sources.ny() ||
      field.nx() != cells.nx() || field.ny() != cells.ny()) {
    throw std::invalid_argument("DiffusionSolver::sweep: grid shape mismatch");
  }
  const std::size_t nx = field.nx(), ny = field.ny();
  const double dt = stable_dt();
  const double alpha = params_.diffusivity * dt / (params_.dx * params_.dx);

  Grid2D next(nx, ny);
  double max_change = 0.0;
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      const double c = field.at(x, y);
      // Zero-flux boundaries: mirror the edge value.
      const double cl = x > 0 ? field.at(x - 1, y) : c;
      const double cr = x + 1 < nx ? field.at(x + 1, y) : c;
      const double cd = y > 0 ? field.at(x, y - 1) : c;
      const double cu = y + 1 < ny ? field.at(x, y + 1) : c;
      const double lap = cl + cr + cd + cu - 4.0 * c;
      const double reaction = sources.at(x, y) -
                              params_.uptake_rate * cells.at(x, y) * c -
                              params_.decay_rate * c;
      double v = c + alpha * lap + dt * reaction;
      if (v < 0.0) v = 0.0;
      next.at(x, y) = v;
      max_change = std::max(max_change, std::abs(v - c));
    }
  }
  field = std::move(next);
  return max_change;
}

SteadyStateResult DiffusionSolver::steady_state(const Grid2D& initial,
                                                const Grid2D& sources,
                                                const Grid2D& cells) const {
  SteadyStateResult result;
  result.field = initial;
  for (std::size_t s = 0; s < params_.max_sweeps; ++s) {
    const double change = sweep(result.field, sources, cells);
    ++result.sweeps;
    if (change < params_.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace le::tissue
