#include "le/tissue/surrogate.hpp"

#include <cmath>
#include <stdexcept>

#include "le/nn/loss.hpp"
#include "le/nn/optimizer.hpp"
#include "le/stats/metrics.hpp"
#include "le/stats/rng.hpp"

namespace le::tissue {

DiffusionSurrogate::DiffusionSurrogate(std::size_t full_nx, std::size_t full_ny,
                                       std::size_t coarse, nn::Network net)
    : full_nx_(full_nx), full_ny_(full_ny), coarse_(coarse),
      net_(std::move(net)) {
  if (net_.input_dim() != coarse * coarse ||
      net_.output_dim() != coarse * coarse) {
    throw std::invalid_argument("DiffusionSurrogate: network shape mismatch");
  }
  net_.set_training(false);
}

Grid2D DiffusionSurrogate::predict(const Grid2D& cells) {
  const Grid2D coarse_cells = cells.downsample(coarse_, coarse_);
  const std::vector<double> out =
      net_.predict(coarse_cells.flat());
  Grid2D coarse_field(coarse_, coarse_);
  for (std::size_t i = 0; i < out.size(); ++i) {
    coarse_field.flat()[i] = std::max(0.0, out[i]);
  }
  return coarse_field.upsample(full_nx_, full_ny_);
}

NutrientFieldProvider DiffusionSurrogate::provider() {
  return [this](const Grid2D& /*sources*/, const Grid2D& cells) {
    SteadyStateResult r;
    r.field = predict(cells);
    r.sweeps = 0;
    r.converged = true;
    return r;
  };
}

namespace {

/// A random colony: a few elliptical blobs of occupied sites.
Grid2D random_colony(std::size_t nx, std::size_t ny, stats::Rng& rng) {
  Grid2D cells(nx, ny, 0.0);
  const std::size_t blobs = 1 + rng.index(3);
  for (std::size_t b = 0; b < blobs; ++b) {
    const double cx = rng.uniform(0.2, 0.8) * static_cast<double>(nx);
    const double cy = rng.uniform(0.2, 0.8) * static_cast<double>(ny);
    const double rx = rng.uniform(0.05, 0.25) * static_cast<double>(nx);
    const double ry = rng.uniform(0.05, 0.25) * static_cast<double>(ny);
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const double ddx = (static_cast<double>(x) - cx) / rx;
        const double ddy = (static_cast<double>(y) - cy) / ry;
        if (ddx * ddx + ddy * ddy <= 1.0) cells.at(x, y) = 1.0;
      }
    }
  }
  return cells;
}

}  // namespace

SurrogateTrainingResult train_diffusion_surrogate(
    const DiffusionSolver& solver, const Grid2D& sources,
    const SurrogateTrainingConfig& config) {
  const std::size_t nx = sources.nx(), ny = sources.ny();
  if (nx % config.coarse != 0 || ny % config.coarse != 0) {
    throw std::invalid_argument(
        "train_diffusion_surrogate: coarse must divide grid dims");
  }
  stats::Rng rng(config.seed);
  const std::size_t dim = config.coarse * config.coarse;

  data::Dataset train_set(dim, dim);
  data::Dataset test_set(dim, dim);
  double total_sweeps = 0.0;

  for (std::size_t k = 0; k < config.training_configs; ++k) {
    const Grid2D cells = random_colony(nx, ny, rng);
    const Grid2D initial(nx, ny, 0.0);
    const SteadyStateResult ss = solver.steady_state(initial, sources, cells);
    total_sweeps += static_cast<double>(ss.sweeps);

    const Grid2D in = cells.downsample(config.coarse, config.coarse);
    const Grid2D out = ss.field.downsample(config.coarse, config.coarse);
    if (k % 6 == 5) {
      test_set.add(in.flat(), out.flat());
    } else {
      train_set.add(in.flat(), out.flat());
    }
  }

  nn::MlpConfig mlp;
  mlp.input_dim = dim;
  mlp.hidden = config.hidden;
  mlp.output_dim = dim;
  mlp.activation = nn::Activation::kRelu;
  stats::Rng net_rng = rng.split(1);
  nn::Network net = nn::make_mlp(mlp, net_rng);
  nn::AdamOptimizer opt(2e-3);
  const nn::MseLoss loss;
  stats::Rng fit_rng = rng.split(2);
  nn::fit(net, train_set, loss, opt, config.train, fit_rng);

  // Held-out coarse-field RMSE.
  double test_rmse = 0.0;
  if (!test_set.empty()) {
    net.set_training(false);
    std::vector<double> preds, truths;
    for (std::size_t i = 0; i < test_set.size(); ++i) {
      const auto p = net.predict(test_set.input(i));
      const auto t = test_set.target(i);
      preds.insert(preds.end(), p.begin(), p.end());
      truths.insert(truths.end(), t.begin(), t.end());
    }
    test_rmse = stats::rmse(preds, truths);
  }

  DiffusionSurrogate surrogate(nx, ny, config.coarse, std::move(net));
  return {std::move(surrogate), test_rmse,
          total_sweeps / static_cast<double>(config.training_configs),
          train_set.size()};
}

}  // namespace le::tissue
