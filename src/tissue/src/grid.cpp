#include "le/tissue/grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace le::tissue {

double Grid2D::sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

double Grid2D::max_value() const {
  if (data_.empty()) return 0.0;
  return *std::max_element(data_.begin(), data_.end());
}

Grid2D Grid2D::downsample(std::size_t fx, std::size_t fy) const {
  if (fx == 0 || fy == 0 || nx_ % fx != 0 || ny_ % fy != 0) {
    throw std::invalid_argument("Grid2D::downsample: target must divide dims");
  }
  const std::size_t bx = nx_ / fx, by = ny_ / fy;
  Grid2D out(fx, fy);
  for (std::size_t oy = 0; oy < fy; ++oy) {
    for (std::size_t ox = 0; ox < fx; ++ox) {
      double acc = 0.0;
      for (std::size_t y = oy * by; y < (oy + 1) * by; ++y) {
        for (std::size_t x = ox * bx; x < (ox + 1) * bx; ++x) {
          acc += at(x, y);
        }
      }
      out.at(ox, oy) = acc / static_cast<double>(bx * by);
    }
  }
  return out;
}

Grid2D Grid2D::upsample(std::size_t nx, std::size_t ny) const {
  if (nx_ == 0 || ny_ == 0) throw std::logic_error("Grid2D::upsample: empty grid");
  Grid2D out(nx, ny);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      // Map the output pixel centre into source coordinates.
      const double sx = (static_cast<double>(x) + 0.5) *
                            static_cast<double>(nx_) / static_cast<double>(nx) -
                        0.5;
      const double sy = (static_cast<double>(y) + 0.5) *
                            static_cast<double>(ny_) / static_cast<double>(ny) -
                        0.5;
      const double cx = std::clamp(sx, 0.0, static_cast<double>(nx_ - 1));
      const double cy = std::clamp(sy, 0.0, static_cast<double>(ny_ - 1));
      const std::size_t x0 = static_cast<std::size_t>(cx);
      const std::size_t y0 = static_cast<std::size_t>(cy);
      const std::size_t x1 = std::min(x0 + 1, nx_ - 1);
      const std::size_t y1 = std::min(y0 + 1, ny_ - 1);
      const double tx = cx - static_cast<double>(x0);
      const double ty = cy - static_cast<double>(y0);
      out.at(x, y) = (1 - tx) * (1 - ty) * at(x0, y0) +
                     tx * (1 - ty) * at(x1, y0) +
                     (1 - tx) * ty * at(x0, y1) + tx * ty * at(x1, y1);
    }
  }
  return out;
}

}  // namespace le::tissue
