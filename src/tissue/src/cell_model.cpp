#include "le/tissue/cell_model.hpp"

#include <array>
#include <chrono>
#include <stdexcept>

namespace le::tissue {

TissueSimulation::TissueSimulation(TissueParams params, Grid2D sources)
    : params_(params), sources_(std::move(sources)),
      cells_(params.nx, params.ny, 0.0), biomass_(params.nx, params.ny, 0.0),
      rng_(params.seed) {
  if (sources_.nx() != params_.nx || sources_.ny() != params_.ny) {
    throw std::invalid_argument("TissueSimulation: source grid shape mismatch");
  }
}

void TissueSimulation::seed_colony(std::size_t count, stats::Rng& rng) {
  const std::size_t cx = params_.nx / 2, cy = params_.ny / 2;
  std::size_t placed = 0;
  const auto radius = static_cast<std::ptrdiff_t>(
      std::max<std::size_t>(2, params_.nx / 8));
  for (std::size_t tries = 0; placed < count && tries < 100 * count; ++tries) {
    const auto dx = static_cast<std::ptrdiff_t>(rng.uniform_int(-radius, radius));
    const auto dy = static_cast<std::ptrdiff_t>(rng.uniform_int(-radius, radius));
    const auto x = static_cast<std::ptrdiff_t>(cx) + dx;
    const auto y = static_cast<std::ptrdiff_t>(cy) + dy;
    if (x < 0 || y < 0 || x >= static_cast<std::ptrdiff_t>(params_.nx) ||
        y >= static_cast<std::ptrdiff_t>(params_.ny)) {
      continue;
    }
    auto& cell = cells_.at(static_cast<std::size_t>(x), static_cast<std::size_t>(y));
    if (cell == 0.0) {
      cell = 1.0;
      biomass_.at(static_cast<std::size_t>(x), static_cast<std::size_t>(y)) = 0.5;
      ++placed;
    }
  }
}

NutrientFieldProvider TissueSimulation::explicit_solver_provider() const {
  const DiffusionSolver solver(params_.diffusion);
  return [solver](const Grid2D& sources, const Grid2D& cells) {
    const Grid2D initial(sources.nx(), sources.ny(), 0.0);
    return solver.steady_state(initial, sources, cells);
  };
}

TissueResult TissueSimulation::run(const NutrientFieldProvider& nutrient_provider) {
  const auto t0 = std::chrono::steady_clock::now();
  TissueResult result;
  Grid2D nutrient(params_.nx, params_.ny, 0.0);

  constexpr std::array<std::array<int, 2>, 4> kNeighbours{
      {{1, 0}, {-1, 0}, {0, 1}, {0, -1}}};

  for (std::size_t step = 0; step < params_.steps; ++step) {
    // --- Field solve (the expensive module) --------------------------
    const auto f0 = std::chrono::steady_clock::now();
    const SteadyStateResult field = nutrient_provider(sources_, cells_);
    const auto f1 = std::chrono::steady_clock::now();
    result.field_seconds += std::chrono::duration<double>(f1 - f0).count();
    nutrient = field.field;

    // --- Cell behaviours ---------------------------------------------
    std::vector<std::pair<std::size_t, std::size_t>> divisions;
    std::size_t live = 0;
    double total_biomass = 0.0;
    for (std::size_t y = 0; y < params_.ny; ++y) {
      for (std::size_t x = 0; x < params_.nx; ++x) {
        if (cells_.at(x, y) == 0.0) continue;
        const double local = nutrient.at(x, y);
        double& mass = biomass_.at(x, y);
        if (local >= params_.growth_threshold) {
          mass += params_.biomass_per_step;
        } else if (local < params_.starvation_threshold) {
          mass -= params_.biomass_per_step;
        }
        if (mass <= 0.0) {
          cells_.at(x, y) = 0.0;  // starvation death
          mass = 0.0;
          continue;
        }
        if (mass >= params_.division_biomass) divisions.emplace_back(x, y);
        ++live;
        total_biomass += mass;
      }
    }

    // Division into a random free von-Neumann neighbour.
    for (const auto& [x, y] : divisions) {
      std::array<std::pair<std::size_t, std::size_t>, 4> free_sites;
      std::size_t n_free = 0;
      for (const auto& d : kNeighbours) {
        const auto nx = static_cast<std::ptrdiff_t>(x) + d[0];
        const auto ny = static_cast<std::ptrdiff_t>(y) + d[1];
        if (nx < 0 || ny < 0 || nx >= static_cast<std::ptrdiff_t>(params_.nx) ||
            ny >= static_cast<std::ptrdiff_t>(params_.ny)) {
          continue;
        }
        const auto ux = static_cast<std::size_t>(nx);
        const auto uy = static_cast<std::size_t>(ny);
        if (cells_.at(ux, uy) == 0.0) free_sites[n_free++] = {ux, uy};
      }
      if (n_free == 0) continue;  // contact inhibition
      const auto& site = free_sites[rng_.index(n_free)];
      cells_.at(site.first, site.second) = 1.0;
      const double half = 0.5 * biomass_.at(x, y);
      biomass_.at(x, y) = half;
      biomass_.at(site.first, site.second) = half;
      ++live;
    }

    TissueSnapshot snap;
    snap.step = step;
    snap.live_cells = live;
    snap.total_biomass = total_biomass;
    snap.mean_nutrient = nutrient.sum() / static_cast<double>(nutrient.size());
    snap.diffusion_sweeps = field.sweeps;
    result.trajectory.push_back(snap);
  }

  result.final_cells = cells_;
  result.final_nutrient = nutrient;
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

Grid2D make_vessel_sources(std::size_t nx, std::size_t ny, double strength) {
  Grid2D sources(nx, ny, 0.0);
  const std::size_t left = nx / 8;
  const std::size_t right = nx - 1 - nx / 8;
  for (std::size_t y = 0; y < ny; ++y) {
    sources.at(left, y) = strength;
    sources.at(right, y) = strength;
  }
  return sources;
}

}  // namespace le::tissue
