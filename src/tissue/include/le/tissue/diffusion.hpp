/// @file
/// Explicit reaction–diffusion solver — the compute-intensive transport
/// module of the virtual-tissue simulation ("Modeling transport and
/// diffusion is compute intensive", paper Section II-B), and the module the
/// ML short-circuit experiment replaces ("The elimination of short time
/// scales, e.g., short-circuit the calculations of advection-diffusion").
///
/// dc/dt = D lap(c) + S(x,y) - k_u * u(x,y) * c - k_d * c
///
/// with S a fixed source field (vasculature), u the cell-occupancy field
/// (Michaelis-style linear uptake) and k_d a background decay.  Neumann
/// (zero-flux) boundaries.  steady_state() iterates FTCS sweeps until the
/// field stops changing — the expensive inner loop of every tissue step.
#pragma once

#include <cstddef>

#include "le/tissue/grid.hpp"

namespace le::tissue {

struct DiffusionParams {
  double diffusivity = 1.0;
  double uptake_rate = 0.3;   ///< k_u per unit cell occupancy
  double decay_rate = 0.01;   ///< k_d
  double dx = 1.0;            ///< lattice spacing
  double tolerance = 1e-6;    ///< steady-state max-change threshold
  std::size_t max_sweeps = 20000;
};

struct SteadyStateResult {
  Grid2D field;
  std::size_t sweeps = 0;
  bool converged = false;
};

class DiffusionSolver {
 public:
  explicit DiffusionSolver(DiffusionParams params);

  /// One FTCS sweep with the stability-limited timestep; returns the max
  /// absolute change.
  double sweep(Grid2D& field, const Grid2D& sources, const Grid2D& cells) const;

  /// Iterates sweeps from `initial` until convergence.
  [[nodiscard]] SteadyStateResult steady_state(const Grid2D& initial,
                                               const Grid2D& sources,
                                               const Grid2D& cells) const;

  [[nodiscard]] const DiffusionParams& params() const noexcept { return params_; }
  /// The stability-limited explicit timestep used internally.
  [[nodiscard]] double stable_dt() const noexcept;

 private:
  DiffusionParams params_;
};

}  // namespace le::tissue
