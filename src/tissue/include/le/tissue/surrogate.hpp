/// @file
/// The diffusion short-circuit surrogate (paper Section II-B, item 1:
/// "Short-circuiting: The replacement of computationally costly modules
/// with learned analogues").
///
/// An MLP maps the coarse-grained cell-occupancy field to the coarse
/// steady-state nutrient field; bilinear upsampling restores full
/// resolution.  The surrogate is trained for a fixed vasculature (source)
/// layout — the live degree of freedom during a tissue simulation is where
/// the cells are, which is exactly what changes step to step.
#pragma once

#include <cstdint>

#include "le/data/normalizer.hpp"
#include "le/nn/network.hpp"
#include "le/nn/train.hpp"
#include "le/tissue/cell_model.hpp"
#include "le/tissue/diffusion.hpp"

namespace le::tissue {

struct SurrogateTrainingConfig {
  /// Coarse grid edge (input/output resolution of the network).
  std::size_t coarse = 8;
  /// Number of random cell configurations to label with the solver.
  std::size_t training_configs = 150;
  std::vector<std::size_t> hidden = {96, 96};
  nn::TrainConfig train;
  std::uint64_t seed = 47;
};

class DiffusionSurrogate {
 public:
  DiffusionSurrogate(std::size_t full_nx, std::size_t full_ny,
                     std::size_t coarse, nn::Network net);

  /// Predicts the full-resolution steady-state nutrient field.
  [[nodiscard]] Grid2D predict(const Grid2D& cells);

  /// Drop-in NutrientFieldProvider (reports 0 sweeps: no solve happened).
  [[nodiscard]] NutrientFieldProvider provider();

  [[nodiscard]] std::size_t coarse() const noexcept { return coarse_; }

 private:
  std::size_t full_nx_;
  std::size_t full_ny_;
  std::size_t coarse_;
  nn::Network net_;
};

struct SurrogateTrainingResult {
  DiffusionSurrogate surrogate;
  /// RMSE of the coarse field prediction on held-out configurations.
  double test_rmse = 0.0;
  /// Mean solver sweeps per training configuration (the cost short-circuited).
  double mean_solver_sweeps = 0.0;
  std::size_t training_samples = 0;
};

/// Generates random colony configurations, labels them with the explicit
/// solver, and trains the surrogate.
[[nodiscard]] SurrogateTrainingResult train_diffusion_surrogate(
    const DiffusionSolver& solver, const Grid2D& sources,
    const SurrogateTrainingConfig& config);

}  // namespace le::tissue
