/// @file
/// 2-D scalar field on a regular lattice, the state container for the
/// virtual-tissue substrate (nutrient concentration, cell density, ...).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace le::tissue {

class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(std::size_t nx, std::size_t ny, double fill = 0.0)
      : nx_(nx), ny_(ny), data_(nx * ny, fill) {}

  [[nodiscard]] std::size_t nx() const noexcept { return nx_; }
  [[nodiscard]] std::size_t ny() const noexcept { return ny_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] double& at(std::size_t x, std::size_t y) noexcept {
    return data_[y * nx_ + x];
  }
  [[nodiscard]] double at(std::size_t x, std::size_t y) const noexcept {
    return data_[y * nx_ + x];
  }

  [[nodiscard]] std::span<double> flat() noexcept { return {data_}; }
  [[nodiscard]] std::span<const double> flat() const noexcept { return {data_}; }

  void fill(double value) { data_.assign(data_.size(), value); }

  [[nodiscard]] double sum() const;
  [[nodiscard]] double max_value() const;

  /// Block-average downsample to (fx x fy); grid dims must be divisible.
  [[nodiscard]] Grid2D downsample(std::size_t fx, std::size_t fy) const;

  /// Bilinear upsample to (nx x ny).
  [[nodiscard]] Grid2D upsample(std::size_t nx, std::size_t ny) const;

  bool operator==(const Grid2D&) const = default;

 private:
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::vector<double> data_;
};

}  // namespace le::tissue
