/// @file
/// Lattice tissue model (paper Section II-B): agent cells that consume
/// nutrient, grow, divide into free neighbouring sites, and die when
/// starved.  Each tissue step needs the nutrient field at quasi-steady
/// state — nutrient diffusion is much faster than cell-cycle time — which
/// makes the diffusion solve the dominant cost and the natural target for
/// ML short-circuiting.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "le/stats/rng.hpp"
#include "le/tissue/diffusion.hpp"
#include "le/tissue/grid.hpp"

namespace le::tissue {

struct TissueParams {
  std::size_t nx = 32;
  std::size_t ny = 32;
  DiffusionParams diffusion;
  /// Nutrient level above which a cell accumulates biomass.
  double growth_threshold = 0.4;
  /// Nutrient level below which a cell loses biomass and may die.
  double starvation_threshold = 0.1;
  double biomass_per_step = 0.25;  ///< accumulation rate when fed
  double division_biomass = 1.0;   ///< divide on reaching this biomass
  std::size_t steps = 30;
  std::uint64_t seed = 41;
};

/// Per-step record of the tissue trajectory.
struct TissueSnapshot {
  std::size_t step = 0;
  std::size_t live_cells = 0;
  double total_biomass = 0.0;
  double mean_nutrient = 0.0;
  std::size_t diffusion_sweeps = 0;  ///< cost of this step's field solve
};

struct TissueResult {
  std::vector<TissueSnapshot> trajectory;
  Grid2D final_cells;      ///< occupancy (0/1)
  Grid2D final_nutrient;
  double wall_seconds = 0.0;
  double field_seconds = 0.0;  ///< time spent in the nutrient-field provider
};

/// Callback that produces the quasi-steady nutrient field for the current
/// cell configuration.  The explicit solver and the learned surrogate are
/// interchangeable implementations (the paper's "short-circuiting").
using NutrientFieldProvider =
    std::function<SteadyStateResult(const Grid2D& sources, const Grid2D& cells)>;

class TissueSimulation {
 public:
  /// `sources` is the fixed nutrient source field (vasculature layout).
  TissueSimulation(TissueParams params, Grid2D sources);

  /// Seeds an initial colony of `count` cells around the grid centre.
  void seed_colony(std::size_t count, stats::Rng& rng);

  /// Runs the full trajectory with the given nutrient-field provider.
  [[nodiscard]] TissueResult run(const NutrientFieldProvider& nutrient_provider);

  /// Default provider: the explicit DiffusionSolver.
  [[nodiscard]] NutrientFieldProvider explicit_solver_provider() const;

  [[nodiscard]] const Grid2D& sources() const noexcept { return sources_; }
  [[nodiscard]] const TissueParams& params() const noexcept { return params_; }
  [[nodiscard]] const Grid2D& cells() const noexcept { return cells_; }

 private:
  TissueParams params_;
  Grid2D sources_;
  Grid2D cells_;    ///< 0/1 occupancy
  Grid2D biomass_;  ///< per-site accumulated biomass
  stats::Rng rng_;
};

/// Standard two-vessel source layout used by the experiments: two vertical
/// high-concentration strips, nutrient must diffuse into the interior.
[[nodiscard]] Grid2D make_vessel_sources(std::size_t nx, std::size_t ny,
                                         double strength = 1.0);

}  // namespace le::tissue
