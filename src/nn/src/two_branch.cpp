#include "le/nn/two_branch.hpp"

#include <algorithm>
#include <stdexcept>

namespace le::nn {

TwoBranchLayer::TwoBranchLayer(Network branch_a, Network branch_b)
    : a_(std::move(branch_a)), b_(std::move(branch_b)) {
  if (a_.layer_count() == 0 || b_.layer_count() == 0) {
    throw std::invalid_argument("TwoBranchLayer: branches must be non-empty");
  }
}

tensor::Matrix TwoBranchLayer::forward(const tensor::Matrix& input) {
  const std::size_t split = a_.input_dim();
  if (input.cols() != split + b_.input_dim()) {
    throw std::invalid_argument("TwoBranchLayer::forward: input dim mismatch");
  }
  tensor::Matrix xa(input.rows(), split);
  tensor::Matrix xb(input.rows(), b_.input_dim());
  for (std::size_t r = 0; r < input.rows(); ++r) {
    auto row = input.row(r);
    std::copy(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(split),
              xa.row(r).begin());
    std::copy(row.begin() + static_cast<std::ptrdiff_t>(split), row.end(),
              xb.row(r).begin());
  }
  tensor::Matrix ya = a_.forward(xa);
  tensor::Matrix yb = b_.forward(xb);
  tensor::Matrix out(input.rows(), ya.cols() + yb.cols());
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto arow = ya.row(r);
    auto brow = yb.row(r);
    auto orow = out.row(r);
    std::copy(arow.begin(), arow.end(), orow.begin());
    std::copy(brow.begin(), brow.end(),
              orow.begin() + static_cast<std::ptrdiff_t>(arow.size()));
  }
  return out;
}

tensor::Matrix TwoBranchLayer::backward(const tensor::Matrix& grad_output) {
  const std::size_t a_out = a_.output_dim();
  const std::size_t b_out = b_.output_dim();
  if (grad_output.cols() != a_out + b_out) {
    throw std::invalid_argument("TwoBranchLayer::backward: grad dim mismatch");
  }
  tensor::Matrix ga(grad_output.rows(), a_out);
  tensor::Matrix gb(grad_output.rows(), b_out);
  for (std::size_t r = 0; r < grad_output.rows(); ++r) {
    auto row = grad_output.row(r);
    std::copy(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(a_out),
              ga.row(r).begin());
    std::copy(row.begin() + static_cast<std::ptrdiff_t>(a_out), row.end(),
              gb.row(r).begin());
  }
  tensor::Matrix dxa = a_.backward(ga);
  tensor::Matrix dxb = b_.backward(gb);
  tensor::Matrix dx(grad_output.rows(), dxa.cols() + dxb.cols());
  for (std::size_t r = 0; r < dx.rows(); ++r) {
    auto arow = dxa.row(r);
    auto brow = dxb.row(r);
    auto orow = dx.row(r);
    std::copy(arow.begin(), arow.end(), orow.begin());
    std::copy(brow.begin(), brow.end(),
              orow.begin() + static_cast<std::ptrdiff_t>(arow.size()));
  }
  return dx;
}

std::vector<ParamView> TwoBranchLayer::parameters() {
  auto views = a_.parameters();
  auto vb = b_.parameters();
  views.insert(views.end(), vb.begin(), vb.end());
  return views;
}

void TwoBranchLayer::zero_grad() {
  a_.zero_grad();
  b_.zero_grad();
}

void TwoBranchLayer::set_training(bool training) {
  Layer::set_training(training);
  a_.set_training(training);
  b_.set_training(training);
}

std::size_t TwoBranchLayer::input_dim() const {
  return a_.input_dim() + b_.input_dim();
}

std::size_t TwoBranchLayer::output_dim() const {
  return a_.output_dim() + b_.output_dim();
}

std::unique_ptr<Layer> TwoBranchLayer::clone() const {
  return std::make_unique<TwoBranchLayer>(a_.clone(), b_.clone());
}

Network make_two_branch_network(const TwoBranchConfig& config, stats::Rng& rng) {
  stats::Rng rng_a = rng.split(11);
  stats::Rng rng_b = rng.split(22);
  stats::Rng rng_h = rng.split(33);
  Network branch_a = make_mlp(config.branch_a, rng_a);
  Network branch_b = make_mlp(config.branch_b, rng_b);
  const std::size_t merged =
      branch_a.output_dim() + branch_b.output_dim();

  Network model;
  model.add(std::make_unique<TwoBranchLayer>(std::move(branch_a),
                                             std::move(branch_b)));
  MlpConfig head;
  head.input_dim = merged;
  head.hidden = config.head_hidden;
  head.output_dim = config.output_dim;
  head.activation = config.head_activation;
  head.dropout_rate = config.head_dropout;
  Network head_net = make_mlp(head, rng_h);
  for (std::size_t i = 0; i < head_net.layer_count(); ++i) {
    model.add(head_net.layer(i).clone());
  }
  return model;
}

}  // namespace le::nn
