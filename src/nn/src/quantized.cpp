#include "le/nn/quantized.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "le/tensor/ops.hpp"

namespace le::nn {

namespace {

std::int8_t clamp_s8(double v) {
  const double r = std::nearbyint(v);
  if (r < -128.0) return -128;
  if (r > 127.0) return 127;
  return static_cast<std::int8_t>(r);
}

/// Picks (sa, za) so a ~= sa * (aq - za) maps [lo, hi] onto the int8 range.
void calibrate_affine(double lo, double hi, double& sa, std::int32_t& za) {
  if (!(lo <= hi)) {  // empty/NaN calibration — neutral scale
    lo = -1.0;
    hi = 1.0;
  }
  lo = std::min(lo, 0.0);  // keep 0 exactly representable (relu, padding)
  hi = std::max(hi, 0.0);
  const double range = hi - lo;
  if (range < 1e-12) {
    sa = std::max(std::abs(hi), 1.0) / 127.0;
    za = 0;
    return;
  }
  sa = range / 255.0;
  za = static_cast<std::int32_t>(std::nearbyint(-128.0 - lo / sa));
}

}  // namespace

QuantizedNetwork::QuantizedNetwork(Network& net,
                                   const tensor::Matrix& calibration) {
  if (net.layer_count() == 0) {
    throw std::invalid_argument("QuantizedNetwork: empty network");
  }
  if (calibration.rows() == 0) {
    throw std::invalid_argument("QuantizedNetwork: empty calibration set");
  }
  if (calibration.cols() != net.input_dim()) {
    throw std::invalid_argument("QuantizedNetwork: calibration width mismatch");
  }
  input_dim_ = net.input_dim();
  output_dim_ = net.output_dim();

  // Walk the layers, quantizing each DenseLayer against the fp activations
  // that actually reach it on the calibration set.
  tensor::Matrix act = calibration;
  tensor::Matrix next;
  for (std::size_t li = 0; li < net.layer_count(); ++li) {
    Layer& layer = net.layer(li);
    if (auto* dense = dynamic_cast<DenseLayer*>(&layer)) {
      Stage stage;
      stage.in_dim = dense->input_dim();
      stage.out_dim = dense->output_dim();
      const tensor::Matrix& w = dense->weights();
      stage.wq.resize(stage.in_dim * stage.out_dim);
      stage.colsum.assign(stage.out_dim, 0);
      stage.wscale.assign(stage.out_dim, 1.0);
      stage.bias.assign(dense->bias().begin(), dense->bias().end());
      for (std::size_t c = 0; c < stage.out_dim; ++c) {
        double maxabs = 0.0;
        for (std::size_t p = 0; p < stage.in_dim; ++p) {
          maxabs = std::max(maxabs, std::abs(w(p, c)));
        }
        stage.wscale[c] = maxabs > 0.0 ? maxabs / 127.0 : 1.0;
        for (std::size_t p = 0; p < stage.in_dim; ++p) {
          const std::int8_t q = clamp_s8(w(p, c) / stage.wscale[c]);
          stage.wq[p * stage.out_dim + c] = q;
          stage.colsum[c] += q;
        }
      }
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (std::size_t e = 0; e < act.size(); ++e) {
        lo = std::min(lo, act.data()[e]);
        hi = std::max(hi, act.data()[e]);
      }
      calibrate_affine(lo, hi, stage.ascale, stage.azero);
      stages_.push_back(std::move(stage));
    } else if (auto* activation = dynamic_cast<ActivationLayer*>(&layer)) {
      if (stages_.empty()) {
        throw std::invalid_argument(
            "QuantizedNetwork: activation before first dense layer");
      }
      stages_.back().activation = activation->kind();
    } else if (dynamic_cast<DropoutLayer*>(&layer) != nullptr) {
      // Deterministic-eval dropout is the identity; quantized serving only
      // targets gate-accepted deterministic snapshots.
    } else {
      throw std::invalid_argument("QuantizedNetwork: unsupported layer " +
                                  layer.name());
    }
    layer.infer(act, next);  // fp reference activations for the next stage
    std::swap(act, next);
  }
  if (stages_.empty()) {
    throw std::invalid_argument("QuantizedNetwork: no dense layers");
  }

  // Residual vs the fp network on the calibration set (act now holds the fp
  // outputs after the loop above).
  tensor::Matrix qout;
  predict_batch(calibration, qout);
  double max_abs = 0.0, sum_sq = 0.0;
  for (std::size_t e = 0; e < act.size(); ++e) {
    const double d = std::abs(act.data()[e] - qout.data()[e]);
    max_abs = std::max(max_abs, d);
    sum_sq += d * d;
  }
  report_.layers = stages_.size();
  report_.calibration_rows = calibration.rows();
  report_.max_abs_residual = max_abs;
  report_.rms_residual =
      act.size() > 0 ? std::sqrt(sum_sq / static_cast<double>(act.size())) : 0.0;
}

void QuantizedNetwork::predict_batch(const tensor::Matrix& inputs,
                                     tensor::Matrix& outputs) const {
  if (&inputs == &outputs) {
    throw std::invalid_argument(
        "QuantizedNetwork::predict_batch: outputs alias inputs");
  }
  if (inputs.cols() != input_dim_) {
    throw std::invalid_argument(
        "QuantizedNetwork::predict_batch: input dim mismatch");
  }
  const std::size_t rows = inputs.rows();
  thread_local std::vector<std::int8_t> aq;
  thread_local std::vector<std::int32_t> acc;
  thread_local tensor::Matrix fp[2];

  const tensor::Matrix* cur = &inputs;
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const Stage& st = stages_[s];
    const double inv_ascale = 1.0 / st.ascale;
    const double azero = static_cast<double>(st.azero);
    aq.resize(rows * st.in_dim);
    for (std::size_t e = 0; e < rows * st.in_dim; ++e) {
      aq[e] = clamp_s8(cur->data()[e] * inv_ascale + azero);
    }
    acc.resize(rows * st.out_dim);
    tensor::gemm_s8_s32(aq.data(), st.wq.data(), acc.data(), rows, st.in_dim,
                        st.out_dim);
    tensor::Matrix& dst =
        s + 1 == stages_.size()
            ? outputs
            : (cur == &fp[0] ? fp[1] : fp[0]);
    dst.resize(rows, st.out_dim);
    for (std::size_t r = 0; r < rows; ++r) {
      double* orow = dst.data() + r * st.out_dim;
      const std::int32_t* arow = acc.data() + r * st.out_dim;
      for (std::size_t c = 0; c < st.out_dim; ++c) {
        orow[c] = st.ascale * st.wscale[c] *
                      static_cast<double>(arow[c] - st.azero * st.colsum[c]) +
                  st.bias[c];
      }
    }
    // Activation over the whole stage output; tanh/relu ride the vector
    // kernels (exact in-place aliasing is part of their contract).
    const std::span<double> flat{dst.data(), dst.size()};
    switch (st.activation) {
      case Activation::kIdentity:
        break;
      case Activation::kTanh:
        tensor::vtanh(flat, flat);
        break;
      case Activation::kRelu:
        tensor::vrelu(flat, flat);
        break;
      default:
        for (double& v : flat) v = activation_apply(st.activation, v);
        break;
    }
    cur = &dst;
  }
}

std::vector<double> QuantizedNetwork::predict(
    std::span<const double> input) const {
  thread_local tensor::Matrix in_row;
  thread_local tensor::Matrix out_row;
  in_row.resize(1, input.size());
  for (std::size_t i = 0; i < input.size(); ++i) in_row(0, i) = input[i];
  predict_batch(in_row, out_row);
  return {out_row.data(), out_row.data() + out_row.cols()};
}

}  // namespace le::nn
