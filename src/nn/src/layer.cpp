#include "le/nn/layer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "le/tensor/ops.hpp"

namespace le::nn {

// ---------------------------------------------------------------------------
// DenseLayer

DenseLayer::DenseLayer(std::size_t in_dim, std::size_t out_dim, stats::Rng& rng)
    : weights_(in_dim, out_dim),
      weight_grads_(in_dim, out_dim),
      bias_(out_dim, 0.0),
      bias_grads_(out_dim, 0.0) {
  if (in_dim == 0 || out_dim == 0) {
    throw std::invalid_argument("DenseLayer: zero dimension");
  }
  // Glorot-uniform: U(-limit, limit), limit = sqrt(6 / (fan_in + fan_out)).
  const double limit =
      std::sqrt(6.0 / static_cast<double>(in_dim + out_dim));
  for (double& w : weights_.flat()) w = rng.uniform(-limit, limit);
}

tensor::Matrix DenseLayer::forward(const tensor::Matrix& input) {
  if (input.cols() != weights_.rows()) {
    throw std::invalid_argument("DenseLayer::forward: input dim mismatch");
  }
  cached_input_ = input;
  tensor::Matrix out(input.rows(), weights_.cols());
  tensor::gemm_naive(input, weights_, out);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] += bias_[c];
  }
  return out;
}

void DenseLayer::infer(const tensor::Matrix& input, tensor::Matrix& out) {
  if (input.cols() != weights_.rows()) {
    throw std::invalid_argument("DenseLayer::infer: input dim mismatch");
  }
  out.resize(input.rows(), weights_.cols());
  tensor::gemm(input, weights_, out, infer_plan_);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] += bias_[c];
  }
}

tensor::Matrix DenseLayer::backward(const tensor::Matrix& grad_output) {
  if (grad_output.rows() != cached_input_.rows() ||
      grad_output.cols() != weights_.cols()) {
    throw std::invalid_argument("DenseLayer::backward: grad shape mismatch");
  }
  // dW += X^T * dY ; db += colsum(dY) ; dX = dY * W^T
  tensor::Matrix xt = cached_input_.transposed();
  tensor::Matrix dw(weights_.rows(), weights_.cols());
  tensor::gemm_naive(xt, grad_output, dw);
  for (std::size_t i = 0; i < dw.size(); ++i) {
    weight_grads_.data()[i] += dw.data()[i];
  }
  for (std::size_t r = 0; r < grad_output.rows(); ++r) {
    auto row = grad_output.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) bias_grads_[c] += row[c];
  }
  tensor::Matrix wt = weights_.transposed();
  tensor::Matrix dx(grad_output.rows(), weights_.rows());
  tensor::gemm_naive(grad_output, wt, dx);
  return dx;
}

std::vector<ParamView> DenseLayer::parameters() {
  return {
      {weights_.flat(), weight_grads_.flat()},
      {std::span<double>{bias_}, std::span<double>{bias_grads_}},
  };
}

void DenseLayer::zero_grad() {
  weight_grads_.fill(0.0);
  bias_grads_.assign(bias_grads_.size(), 0.0);
}

std::unique_ptr<Layer> DenseLayer::clone() const {
  auto copy = std::make_unique<DenseLayer>(*this);
  return copy;
}

// ---------------------------------------------------------------------------
// ActivationLayer

std::string to_string(Activation a) {
  switch (a) {
    case Activation::kIdentity: return "identity";
    case Activation::kRelu: return "relu";
    case Activation::kLeakyRelu: return "leaky_relu";
    case Activation::kTanh: return "tanh";
    case Activation::kSigmoid: return "sigmoid";
  }
  return "unknown";
}

Activation activation_from_string(const std::string& s) {
  if (s == "identity") return Activation::kIdentity;
  if (s == "relu") return Activation::kRelu;
  if (s == "leaky_relu") return Activation::kLeakyRelu;
  if (s == "tanh") return Activation::kTanh;
  if (s == "sigmoid") return Activation::kSigmoid;
  throw std::invalid_argument("unknown activation: " + s);
}

double activation_apply(Activation kind, double x) {
  switch (kind) {
    case Activation::kIdentity: return x;
    case Activation::kRelu: return x > 0.0 ? x : 0.0;
    case Activation::kLeakyRelu: return x > 0.0 ? x : 0.01 * x;
    case Activation::kTanh: return std::tanh(x);
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
  }
  return x;
}

namespace {

double activation_grad(Activation kind, double x) {
  switch (kind) {
    case Activation::kIdentity: return 1.0;
    case Activation::kRelu: return x > 0.0 ? 1.0 : 0.0;
    case Activation::kLeakyRelu: return x > 0.0 ? 1.0 : 0.01;
    case Activation::kTanh: {
      const double t = std::tanh(x);
      return 1.0 - t * t;
    }
    case Activation::kSigmoid: {
      const double s = 1.0 / (1.0 + std::exp(-x));
      return s * (1.0 - s);
    }
  }
  return 1.0;
}

}  // namespace

tensor::Matrix ActivationLayer::forward(const tensor::Matrix& input) {
  if (input.cols() != dim_) {
    throw std::invalid_argument("ActivationLayer::forward: dim mismatch");
  }
  cached_input_ = input;
  tensor::Matrix out(input.rows(), input.cols());
  for (std::size_t i = 0; i < input.size(); ++i) {
    out.data()[i] = activation_apply(kind_, input.data()[i]);
  }
  return out;
}

void ActivationLayer::infer(const tensor::Matrix& input, tensor::Matrix& out) {
  if (input.cols() != dim_) {
    throw std::invalid_argument("ActivationLayer::infer: dim mismatch");
  }
  out.resize(input.rows(), input.cols());
  // tanh and relu dominate the serving hot path; route them through the
  // kernel layer (AVX2 when active, scalar std::tanh otherwise).  The other
  // activations stay on the scalar reference.
  const std::span<const double> in_flat{input.data(), input.size()};
  const std::span<double> out_flat{out.data(), out.size()};
  switch (kind_) {
    case Activation::kTanh:
      tensor::vtanh(in_flat, out_flat);
      return;
    case Activation::kRelu:
      tensor::vrelu(in_flat, out_flat);
      return;
    default:
      break;
  }
  for (std::size_t i = 0; i < input.size(); ++i) {
    out.data()[i] = activation_apply(kind_, input.data()[i]);
  }
}

tensor::Matrix ActivationLayer::backward(const tensor::Matrix& grad_output) {
  if (grad_output.rows() != cached_input_.rows() ||
      grad_output.cols() != cached_input_.cols()) {
    throw std::invalid_argument("ActivationLayer::backward: shape mismatch");
  }
  tensor::Matrix dx(grad_output.rows(), grad_output.cols());
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    dx.data()[i] =
        grad_output.data()[i] * activation_grad(kind_, cached_input_.data()[i]);
  }
  return dx;
}

// ---------------------------------------------------------------------------
// DropoutLayer

DropoutLayer::DropoutLayer(double rate, std::size_t dim, stats::Rng rng)
    : rate_(rate), dim_(dim), rng_(rng) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("DropoutLayer: rate must be in [0,1)");
  }
}

tensor::Matrix DropoutLayer::forward(const tensor::Matrix& input) {
  if (input.cols() != dim_) {
    throw std::invalid_argument("DropoutLayer::forward: dim mismatch");
  }
  if (!stochastic() || rate_ == 0.0) {
    mask_ = tensor::Matrix();  // identity pass; backward passes grads through
    return input;
  }
  const double keep = 1.0 - rate_;
  mask_.resize(input.rows(), input.cols());
  tensor::Matrix out(input.rows(), input.cols());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const double m = rng_.bernoulli(keep) ? 1.0 / keep : 0.0;
    mask_.data()[i] = m;
    out.data()[i] = input.data()[i] * m;
  }
  return out;
}

void DropoutLayer::infer(const tensor::Matrix& input, tensor::Matrix& out) {
  if (input.cols() != dim_) {
    throw std::invalid_argument("DropoutLayer::infer: dim mismatch");
  }
  out.resize(input.rows(), input.cols());
  if (!stochastic() || rate_ == 0.0) {
    std::copy(input.data(), input.data() + input.size(), out.data());
    return;
  }
  const double keep = 1.0 - rate_;
  for (std::size_t i = 0; i < input.size(); ++i) {
    out.data()[i] = input.data()[i] * (rng_.bernoulli(keep) ? 1.0 / keep : 0.0);
  }
}

tensor::Matrix DropoutLayer::backward(const tensor::Matrix& grad_output) {
  if (mask_.empty()) return grad_output;
  if (grad_output.rows() != mask_.rows() || grad_output.cols() != mask_.cols()) {
    throw std::invalid_argument("DropoutLayer::backward: shape mismatch");
  }
  tensor::Matrix dx(grad_output.rows(), grad_output.cols());
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    dx.data()[i] = grad_output.data()[i] * mask_.data()[i];
  }
  return dx;
}

std::unique_ptr<Layer> DropoutLayer::clone() const {
  return std::make_unique<DropoutLayer>(*this);
}

}  // namespace le::nn
