#include "le/nn/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <locale>
#include <sstream>
#include <stdexcept>

#include "le/nn/two_branch.hpp"

namespace le::nn {

namespace {

constexpr const char* kMagic = "le-network-v1";

void save_layers(std::ostream& out, Network& net);

void save_layer(std::ostream& out, Layer& layer) {
  if (auto* dense = dynamic_cast<DenseLayer*>(&layer)) {
    out << "dense " << dense->input_dim() << ' ' << dense->output_dim() << '\n';
    out << std::setprecision(17);
    for (double w : dense->weights().flat()) out << w << ' ';
    out << '\n';
    for (double b : dense->bias()) out << b << ' ';
    out << '\n';
    return;
  }
  if (auto* act = dynamic_cast<ActivationLayer*>(&layer)) {
    out << "activation " << to_string(act->kind()) << ' ' << act->input_dim()
        << '\n';
    return;
  }
  if (auto* drop = dynamic_cast<DropoutLayer*>(&layer)) {
    out << "dropout " << std::setprecision(17) << drop->rate() << ' '
        << drop->input_dim() << '\n';
    return;
  }
  if (auto* tb = dynamic_cast<TwoBranchLayer*>(&layer)) {
    out << "two_branch\n";
    save_layers(out, tb->branch_a());
    save_layers(out, tb->branch_b());
    return;
  }
  throw std::runtime_error("save_network: unsupported layer " + layer.name());
}

void save_layers(std::ostream& out, Network& net) {
  out << "layers " << net.layer_count() << '\n';
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    save_layer(out, net.layer(i));
  }
}

Network load_layers(std::istream& in, stats::Rng& rng);

std::unique_ptr<Layer> load_layer(std::istream& in, stats::Rng& rng,
                                  std::uint64_t salt) {
  std::string kind;
  if (!(in >> kind)) throw std::runtime_error("load_network: truncated stream");
  if (kind == "dense") {
    std::size_t in_dim = 0, out_dim = 0;
    if (!(in >> in_dim >> out_dim)) {
      throw std::runtime_error("load_network: bad dense header");
    }
    stats::Rng init = rng.split(salt);
    auto layer = std::make_unique<DenseLayer>(in_dim, out_dim, init);
    for (double& w : layer->weights().flat()) {
      if (!(in >> w)) throw std::runtime_error("load_network: bad weights");
    }
    for (double& b : layer->bias()) {
      if (!(in >> b)) throw std::runtime_error("load_network: bad biases");
    }
    return layer;
  }
  if (kind == "activation") {
    std::string act;
    std::size_t dim = 0;
    if (!(in >> act >> dim)) {
      throw std::runtime_error("load_network: bad activation header");
    }
    return std::make_unique<ActivationLayer>(activation_from_string(act), dim);
  }
  if (kind == "dropout") {
    double rate = 0.0;
    std::size_t dim = 0;
    if (!(in >> rate >> dim)) {
      throw std::runtime_error("load_network: bad dropout header");
    }
    return std::make_unique<DropoutLayer>(rate, dim, rng.split(salt + 1000));
  }
  if (kind == "two_branch") {
    Network a = load_layers(in, rng);
    Network b = load_layers(in, rng);
    return std::make_unique<TwoBranchLayer>(std::move(a), std::move(b));
  }
  throw std::runtime_error("load_network: unknown layer kind '" + kind + "'");
}

Network load_layers(std::istream& in, stats::Rng& rng) {
  std::string tag;
  std::size_t count = 0;
  if (!(in >> tag >> count) || tag != "layers") {
    throw std::runtime_error("load_network: expected layer-count header");
  }
  Network net;
  for (std::size_t i = 0; i < count; ++i) {
    net.add(load_layer(in, rng, i));
  }
  return net;
}

}  // namespace

void save_network(std::ostream& out, Network& net) {
  // Pin the C locale: under a ','-decimal global or stream locale the
  // formatted weights would be written (or later parsed) with comma
  // decimal points and silently corrupt the model.  Covers the recursive
  // two_branch path too — all nested layers share this stream.
  out.imbue(std::locale::classic());
  out << kMagic << '\n';
  save_layers(out, net);
}

Network load_network(std::istream& in, stats::Rng& rng) {
  in.imbue(std::locale::classic());
  std::string magic;
  if (!(in >> magic) || magic != kMagic) {
    throw std::runtime_error("load_network: bad magic header");
  }
  Network net = load_layers(in, rng);
  net.set_training(false);
  return net;
}

void save_network_file(const std::string& path, Network& net) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_network_file: cannot open " + path);
  save_network(out, net);
}

Network load_network_file(const std::string& path, stats::Rng& rng) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_network_file: cannot open " + path);
  return load_network(in, rng);
}

}  // namespace le::nn
