#include "le/nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace le::nn {

namespace {

void ensure_state(std::vector<std::vector<double>>& state,
                  const std::vector<ParamView>& params) {
  if (state.empty()) {
    state.reserve(params.size());
    for (const auto& p : params) state.emplace_back(p.values.size(), 0.0);
    return;
  }
  if (state.size() != params.size()) {
    throw std::invalid_argument("optimizer: parameter list changed between steps");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (state[i].size() != params[i].values.size()) {
      throw std::invalid_argument("optimizer: parameter shape changed between steps");
    }
  }
}

}  // namespace

SgdOptimizer::SgdOptimizer(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("SgdOptimizer: lr must be > 0");
  if (momentum < 0.0 || momentum >= 1.0) {
    throw std::invalid_argument("SgdOptimizer: momentum must be in [0,1)");
  }
  if (weight_decay < 0.0) {
    throw std::invalid_argument("SgdOptimizer: weight_decay must be >= 0");
  }
}

void SgdOptimizer::step(const std::vector<ParamView>& params) {
  ensure_state(velocity_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& vel = velocity_[i];
    const auto& p = params[i];
    for (std::size_t j = 0; j < p.values.size(); ++j) {
      vel[j] = momentum_ * vel[j] - lr_ * p.grads[j];
      p.values[j] += vel[j];
      if (weight_decay_ > 0.0) p.values[j] *= 1.0 - lr_ * weight_decay_;
    }
  }
}

AdamOptimizer::AdamOptimizer(double lr, double beta1, double beta2, double eps,
                             double weight_decay)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("AdamOptimizer: lr must be > 0");
  if (weight_decay < 0.0) {
    throw std::invalid_argument("AdamOptimizer: weight_decay must be >= 0");
  }
}

void AdamOptimizer::step(const std::vector<ParamView>& params) {
  ensure_state(m_, params);
  ensure_state(v_, params);
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto& p = params[i];
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < p.values.size(); ++j) {
      const double g = p.grads[j];
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g * g;
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      p.values[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      if (weight_decay_ > 0.0) p.values[j] *= 1.0 - lr_ * weight_decay_;
    }
  }
}

}  // namespace le::nn
