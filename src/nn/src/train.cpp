#include "le/nn/train.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "le/obs/metrics.hpp"
#include "le/obs/timer.hpp"

namespace le::nn {

namespace {

tensor::Matrix gather_rows(const data::Dataset& ds,
                           std::span<const std::size_t> idx, bool inputs) {
  const std::size_t dim = inputs ? ds.input_dim() : ds.target_dim();
  tensor::Matrix m(idx.size(), dim);
  for (std::size_t r = 0; r < idx.size(); ++r) {
    auto row = inputs ? ds.input(idx[r]) : ds.target(idx[r]);
    std::copy(row.begin(), row.end(), m.row(r).begin());
  }
  return m;
}

void clip_gradients(const std::vector<ParamView>& params, double clip) {
  for (const auto& p : params) {
    for (double& g : p.grads) g = std::clamp(g, -clip, clip);
  }
}

}  // namespace

TrainResult fit(Network& net, const data::Dataset& train_data,
                const Loss& loss, Optimizer& optimizer,
                const TrainConfig& config, stats::Rng& rng) {
  if (train_data.empty()) throw std::invalid_argument("fit: empty dataset");
  if (config.batch_size == 0) throw std::invalid_argument("fit: batch_size == 0");

  // Optional validation holdout.
  data::Dataset train = train_data;
  data::Dataset val;
  const bool has_val = config.validation_fraction > 0.0;
  if (has_val) {
    auto [tr, va] = train_data.split(1.0 - config.validation_fraction, rng);
    train = std::move(tr);
    val = std::move(va);
    if (train.empty() || val.empty()) {
      throw std::invalid_argument("fit: validation split produced empty set");
    }
  }

  TrainResult result;
  double best_val = std::numeric_limits<double>::infinity();
  std::vector<double> best_weights;
  std::size_t epochs_without_improvement = 0;

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  // Per-epoch wall time feeds the observability layer (T_learn in the
  // Section III-D model); both handles stay null when metrics are off.
  obs::Histogram* epoch_seconds = nullptr;
  obs::Counter* epochs_counter = nullptr;
  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    epoch_seconds = &registry.histogram("nn.fit.epoch_seconds");
    epochs_counter = &registry.counter("nn.fit.epochs");
  }

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    obs::ScopedTimer epoch_timer(epoch_seconds);
    if (epochs_counter) epochs_counter->add();
    net.set_training(true);
    rng.shuffle(std::span<std::size_t>{order});

    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t count = std::min(config.batch_size, order.size() - start);
      const std::span<const std::size_t> idx{order.data() + start, count};
      tensor::Matrix x = gather_rows(train, idx, /*inputs=*/true);
      tensor::Matrix y = gather_rows(train, idx, /*inputs=*/false);

      net.zero_grad();
      tensor::Matrix pred = net.forward(x);
      LossResult lr = loss.evaluate(pred, y);
      net.backward(lr.grad);
      if (config.gradient_clip > 0.0) {
        clip_gradients(net.parameters(), config.gradient_clip);
      }
      optimizer.step(net.parameters());
      ++result.steps;
      epoch_loss += lr.value;
      ++batches;
    }
    epoch_loss /= static_cast<double>(std::max<std::size_t>(batches, 1));

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = epoch_loss;
    result.final_train_loss = epoch_loss;

    if (has_val) {
      const double vloss = evaluate(net, val, loss);
      stats.validation_loss = vloss;
      if (vloss < best_val) {
        best_val = vloss;
        best_weights = net.get_weights();
        epochs_without_improvement = 0;
      } else {
        ++epochs_without_improvement;
      }
      if (config.early_stopping_patience > 0 &&
          epochs_without_improvement >= config.early_stopping_patience) {
        result.history.push_back(stats);
        result.stopped_early = true;
        break;
      }
    }
    result.history.push_back(stats);

    if (config.lr_decay != 1.0) {
      optimizer.set_learning_rate(optimizer.learning_rate() * config.lr_decay);
    }
  }

  if (has_val && !best_weights.empty()) {
    net.set_weights(best_weights);
    result.best_validation_loss = best_val;
  }
  net.set_training(false);
  return result;
}

double evaluate(Network& net, const data::Dataset& dataset, const Loss& loss) {
  if (dataset.empty()) throw std::invalid_argument("evaluate: empty dataset");
  net.set_training(false);
  tensor::Matrix pred = predict_all(net, dataset);
  return loss.evaluate(pred, dataset.target_matrix()).value;
}

tensor::Matrix predict_all(Network& net, const data::Dataset& dataset) {
  net.set_training(false);
  return net.forward(dataset.input_matrix());
}

}  // namespace le::nn
