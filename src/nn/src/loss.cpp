#include "le/nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace le::nn {

namespace {
void check_shapes(const tensor::Matrix& p, const tensor::Matrix& t) {
  if (p.rows() != t.rows() || p.cols() != t.cols()) {
    throw std::invalid_argument("loss: prediction/target shape mismatch");
  }
  if (p.empty()) throw std::invalid_argument("loss: empty batch");
}
}  // namespace

LossResult MseLoss::evaluate(const tensor::Matrix& predicted,
                             const tensor::Matrix& target) const {
  check_shapes(predicted, target);
  const double n = static_cast<double>(predicted.size());
  LossResult res;
  res.grad.resize(predicted.rows(), predicted.cols());
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted.data()[i] - target.data()[i];
    acc += d * d;
    res.grad.data()[i] = 2.0 * d / n;
  }
  res.value = acc / n;
  return res;
}

LossResult MaeLoss::evaluate(const tensor::Matrix& predicted,
                             const tensor::Matrix& target) const {
  check_shapes(predicted, target);
  const double n = static_cast<double>(predicted.size());
  LossResult res;
  res.grad.resize(predicted.rows(), predicted.cols());
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted.data()[i] - target.data()[i];
    acc += std::abs(d);
    res.grad.data()[i] = (d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0)) / n;
  }
  res.value = acc / n;
  return res;
}

HuberLoss::HuberLoss(double delta) : delta_(delta) {
  if (delta <= 0.0) throw std::invalid_argument("HuberLoss: delta must be > 0");
}

LossResult HuberLoss::evaluate(const tensor::Matrix& predicted,
                               const tensor::Matrix& target) const {
  check_shapes(predicted, target);
  const double n = static_cast<double>(predicted.size());
  LossResult res;
  res.grad.resize(predicted.rows(), predicted.cols());
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted.data()[i] - target.data()[i];
    if (std::abs(d) <= delta_) {
      acc += 0.5 * d * d;
      res.grad.data()[i] = d / n;
    } else {
      acc += delta_ * (std::abs(d) - 0.5 * delta_);
      res.grad.data()[i] = delta_ * (d > 0.0 ? 1.0 : -1.0) / n;
    }
  }
  res.value = acc / n;
  return res;
}

}  // namespace le::nn
