#include "le/nn/network.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "le/tensor/ops.hpp"

namespace le::nn {

void Network::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Network::add: null layer");
  if (!layers_.empty() && layers_.back()->output_dim() != layer->input_dim()) {
    throw std::invalid_argument("Network::add: layer dimension mismatch");
  }
  layers_.push_back(std::move(layer));
}

tensor::Matrix Network::forward(const tensor::Matrix& input) {
  if (layers_.empty()) throw std::logic_error("Network::forward: empty network");
  tensor::Matrix x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

tensor::Matrix Network::backward(const tensor::Matrix& grad_output) {
  if (layers_.empty()) throw std::logic_error("Network::backward: empty network");
  tensor::Matrix g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Network::predict_batch(const tensor::Matrix& inputs,
                            tensor::Matrix& outputs) {
  if (layers_.empty()) {
    throw std::logic_error("Network::predict_batch: empty network");
  }
  if (&inputs == &outputs) {
    throw std::invalid_argument("Network::predict_batch: outputs alias inputs");
  }
  const tensor::Matrix* cur = &inputs;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    tensor::Matrix& dst = i + 1 == layers_.size()
                              ? outputs
                              : (cur == &infer_scratch_[0] ? infer_scratch_[1]
                                                           : infer_scratch_[0]);
    layers_[i]->infer(*cur, dst);
    cur = &dst;
  }
}

tensor::Matrix Network::predict_batch(const tensor::Matrix& inputs) {
  tensor::Matrix outputs;
  predict_batch(inputs, outputs);
  return outputs;
}

std::vector<double> Network::predict(std::span<const double> input) {
  // Thread-local row buffers: the historical implementation allocated a
  // fresh 1-row batch (and one matrix per layer) per call, which dominated
  // T_lookup for the paper's microsecond-scale surrogate queries.
  thread_local tensor::Matrix in_row;
  thread_local tensor::Matrix out_row;
  in_row.resize(1, input.size());
  for (std::size_t i = 0; i < input.size(); ++i) in_row(0, i) = input[i];
  predict_batch(in_row, out_row);
  return {out_row.data(), out_row.data() + out_row.cols()};
}

std::vector<ParamView> Network::parameters() {
  std::vector<ParamView> all;
  for (auto& layer : layers_) {
    auto views = layer->parameters();
    all.insert(all.end(), views.begin(), views.end());
  }
  return all;
}

void Network::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

void Network::set_training(bool training) {
  for (auto& layer : layers_) layer->set_training(training);
}

void Network::set_mc_dropout(bool on) {
  for (auto& layer : layers_) {
    if (auto* d = dynamic_cast<DropoutLayer*>(layer.get())) d->set_mc_mode(on);
  }
}

std::size_t Network::input_dim() const {
  if (layers_.empty()) throw std::logic_error("Network::input_dim: empty network");
  return layers_.front()->input_dim();
}

std::size_t Network::output_dim() const {
  if (layers_.empty()) throw std::logic_error("Network::output_dim: empty network");
  return layers_.back()->output_dim();
}

std::size_t Network::parameter_count() {
  std::size_t n = 0;
  for (const auto& view : parameters()) n += view.values.size();
  return n;
}

std::vector<double> Network::get_weights() {
  std::vector<double> flat;
  for (const auto& view : parameters()) {
    flat.insert(flat.end(), view.values.begin(), view.values.end());
  }
  return flat;
}

void Network::set_weights(std::span<const double> flat) {
  std::size_t offset = 0;
  for (const auto& view : parameters()) {
    if (offset + view.values.size() > flat.size()) {
      throw std::invalid_argument("Network::set_weights: vector too short");
    }
    for (std::size_t i = 0; i < view.values.size(); ++i) {
      view.values[i] = flat[offset + i];
    }
    offset += view.values.size();
  }
  if (offset != flat.size()) {
    throw std::invalid_argument("Network::set_weights: vector too long");
  }
}

std::vector<LayerPlanChoice> Network::autotune_inference(
    std::size_t batch_hint, const std::vector<tensor::GemmBlocking>& blockings,
    std::size_t repeats) {
  if (batch_hint == 0 || repeats == 0) {
    throw std::invalid_argument(
        "Network::autotune_inference: batch_hint and repeats must be positive");
  }
  const std::vector<tensor::GemmBlocking> candidates_blocking =
      blockings.empty() ? std::vector<tensor::GemmBlocking>{{}} : blockings;
  std::vector<tensor::GemmKernel> candidate_kernels{
      tensor::GemmKernel::kScalar};
  if (tensor::cpu_has_avx2_fma()) {
    candidate_kernels.push_back(tensor::GemmKernel::kAvx2);
  }

  const auto time_plan = [&](const tensor::Matrix& a, const tensor::Matrix& b,
                             tensor::Matrix& out, const tensor::GemmPlan& plan) {
    tensor::gemm(a, b, out, plan);  // warm-up (touches out, loads code)
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < repeats; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      tensor::gemm(a, b, out, plan);
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(
          best, std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
    return best;
  };

  std::vector<LayerPlanChoice> choices;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    auto* dense = dynamic_cast<DenseLayer*>(layers_[i].get());
    if (dense == nullptr) continue;
    const std::size_t k = dense->input_dim(), n = dense->output_dim();
    tensor::Matrix a(batch_hint, k);
    for (std::size_t e = 0; e < a.size(); ++e) {
      a.data()[e] = std::sin(0.7 * static_cast<double>(e + 1));
    }
    tensor::Matrix out(batch_hint, n);

    LayerPlanChoice choice;
    choice.layer_index = i;
    choice.rows = batch_hint;
    choice.inner = k;
    choice.cols = n;
    choice.best_us = std::numeric_limits<double>::infinity();
    for (const tensor::GemmKernel kernel : candidate_kernels) {
      for (const tensor::GemmBlocking& blocking : candidates_blocking) {
        const tensor::GemmPlan plan{kernel, blocking};
        const double us = time_plan(a, dense->weights(), out, plan);
        if (kernel == tensor::GemmKernel::kScalar) {
          choice.scalar_us =
              choice.scalar_us == 0.0 ? us : std::min(choice.scalar_us, us);
        }
        if (us < choice.best_us) {
          choice.best_us = us;
          choice.plan = plan;
        }
      }
    }
    dense->set_infer_plan(choice.plan);
    choices.push_back(choice);
  }
  return choices;
}

Network Network::clone() const {
  Network copy;
  for (const auto& layer : layers_) copy.layers_.push_back(layer->clone());
  return copy;
}

Network make_mlp(const MlpConfig& config, stats::Rng& rng) {
  Network net;
  std::size_t prev = config.input_dim;
  std::uint64_t salt = 1;
  for (std::size_t width : config.hidden) {
    net.add(std::make_unique<DenseLayer>(prev, width, rng));
    net.add(std::make_unique<ActivationLayer>(config.activation, width));
    if (config.dropout_rate > 0.0) {
      net.add(std::make_unique<DropoutLayer>(config.dropout_rate, width,
                                             rng.split(salt++)));
    }
    prev = width;
  }
  net.add(std::make_unique<DenseLayer>(prev, config.output_dim, rng));
  return net;
}

}  // namespace le::nn
