/// @file
/// Two-branch composite layer, the architecture of DEFSI (Section II-A).
///
/// DEFSI feeds two signal groups through separate sub-networks whose
/// embeddings are concatenated before a shared head.  Here the branches are
/// themselves Networks and the composite is itself a Layer, so a full DEFSI
/// model is an ordinary Network:
///
///   Network model;
///   model.add(make_two_branch(branch_a, branch_b, split));
///   model.add(... head layers ...);
///
/// and trains with the ordinary fit() loop.
#pragma once

#include <memory>

#include "le/nn/network.hpp"

namespace le::nn {

/// Splits each input row at `split_index`: columns [0, split) feed branch A,
/// the rest feed branch B; the output row is concat(A(x_a), B(x_b)).
class TwoBranchLayer final : public Layer {
 public:
  /// Both branches must be non-empty networks; split_index must equal
  /// branch_a.input_dim().
  TwoBranchLayer(Network branch_a, Network branch_b);

  tensor::Matrix forward(const tensor::Matrix& input) override;
  tensor::Matrix backward(const tensor::Matrix& grad_output) override;
  std::vector<ParamView> parameters() override;
  void zero_grad() override;
  void set_training(bool training) override;

  [[nodiscard]] std::size_t input_dim() const override;
  [[nodiscard]] std::size_t output_dim() const override;
  [[nodiscard]] std::string name() const override { return "two_branch"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  [[nodiscard]] Network& branch_a() noexcept { return a_; }
  [[nodiscard]] Network& branch_b() noexcept { return b_; }

 private:
  Network a_;
  Network b_;
};

/// Configuration for the standard DEFSI-style model: two MLP branches plus
/// an MLP head over the concatenated embeddings.
struct TwoBranchConfig {
  MlpConfig branch_a;
  MlpConfig branch_b;
  std::vector<std::size_t> head_hidden = {32};
  std::size_t output_dim = 1;
  Activation head_activation = Activation::kRelu;
  double head_dropout = 0.0;
};

/// Builds the full two-branch network (branches + head) as one Network.
[[nodiscard]] Network make_two_branch_network(const TwoBranchConfig& config,
                                              stats::Rng& rng);

}  // namespace le::nn
