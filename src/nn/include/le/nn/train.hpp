/// @file
/// Mini-batch training loop with validation tracking and early stopping.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "le/data/dataset.hpp"
#include "le/nn/loss.hpp"
#include "le/nn/network.hpp"
#include "le/nn/optimizer.hpp"
#include "le/stats/rng.hpp"

namespace le::nn {

struct TrainConfig {
  std::size_t epochs = 100;
  std::size_t batch_size = 32;
  /// Fraction of the training set held out for validation; 0 disables.
  double validation_fraction = 0.0;
  /// Stop if validation loss fails to improve for this many epochs;
  /// 0 disables early stopping.  Requires validation_fraction > 0.
  std::size_t early_stopping_patience = 0;
  /// Multiplies the learning rate by this factor each epoch (1 = constant).
  double lr_decay = 1.0;
  /// Clips each parameter gradient element to [-clip, clip]; 0 disables.
  double gradient_clip = 0.0;
};

/// Per-epoch record of the training history.
struct EpochStats {
  std::size_t epoch = 0;
  double train_loss = 0.0;
  std::optional<double> validation_loss;
};

struct TrainResult {
  std::vector<EpochStats> history;
  double final_train_loss = 0.0;
  std::optional<double> best_validation_loss;
  /// True when early stopping triggered before the epoch budget ran out.
  bool stopped_early = false;
  /// Total number of optimizer steps taken.
  std::size_t steps = 0;
};

/// Trains `net` in place.  Shuffles each epoch with `rng`; restores the
/// best validation-loss weights when early stopping is active.
TrainResult fit(Network& net, const data::Dataset& train_data,
                const Loss& loss, Optimizer& optimizer,
                const TrainConfig& config, stats::Rng& rng);

/// Mean loss of `net` over a dataset (evaluation mode, no dropout).
[[nodiscard]] double evaluate(Network& net, const data::Dataset& dataset,
                              const Loss& loss);

/// Batch prediction over a dataset's inputs -> (n x output_dim) matrix.
[[nodiscard]] tensor::Matrix predict_all(Network& net,
                                         const data::Dataset& dataset);

}  // namespace le::nn
