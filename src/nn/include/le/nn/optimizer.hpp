/// @file
/// First-order optimizers operating on ParamView lists.
///
/// Optimizer state (momentum / Adam moments) is keyed by parameter order, so
/// a given optimizer instance must always be stepped with the views of the
/// same network in the same order — which Network::parameters() guarantees.
#pragma once

#include <vector>

#include "le/nn/layer.hpp"

namespace le::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update using the gradients currently held in the views.
  virtual void step(const std::vector<ParamView>& params) = 0;
  /// Learning-rate access so schedules/autotuners can adjust it mid-run.
  virtual void set_learning_rate(double lr) = 0;
  [[nodiscard]] virtual double learning_rate() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Stochastic gradient descent with classical momentum and optional
/// decoupled weight decay (the regularization knob of the paper's
/// Section III-B bias-variance discussion).
class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(double lr, double momentum = 0.0,
                        double weight_decay = 0.0);
  void step(const std::vector<ParamView>& params) override;
  void set_learning_rate(double lr) override { lr_ = lr; }
  [[nodiscard]] double learning_rate() const override { return lr_; }
  [[nodiscard]] const char* name() const override { return "sgd"; }

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<std::vector<double>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction and optional decoupled weight
/// decay (AdamW-style: decay applied directly to the parameters, not
/// through the moment estimates).
class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(double lr = 1e-3, double beta1 = 0.9,
                         double beta2 = 0.999, double eps = 1e-8,
                         double weight_decay = 0.0);
  void step(const std::vector<ParamView>& params) override;
  void set_learning_rate(double lr) override { lr_ = lr; }
  [[nodiscard]] double learning_rate() const override { return lr_; }
  [[nodiscard]] const char* name() const override { return "adam"; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  long t_ = 0;
  std::vector<std::vector<double>> m_;
  std::vector<std::vector<double>> v_;
};

}  // namespace le::nn
