/// @file
/// Post-training int8 quantization of gate-accepted MLP surrogates.
///
/// The serving hot path is a handful of small GEMMs (E13's math floor);
/// int8 inference halves the weight footprint four ways and runs on the
/// exact gemm_s8_s32 kernel, trading a bounded dequantization error for
/// throughput.  The scheme is the standard affine one:
///
///   weights:      per-output-column symmetric, wq[p,c] = round(W[p,c]/sw[c]),
///                 sw[c] = maxabs(W[:,c]) / 127   (int8, no zero point)
///   activations:  per-layer asymmetric, a ~= sa * (aq - za), with sa/za
///                 calibrated from min/max of the layer's input over a
///                 calibration set (the retraining corpus in serving)
///   accumulate:   acc[i,c] = sum_p aq[i,p] * wq[p,c]   (int32, exact)
///   dequantize:   out[i,c] = sa * sw[c] * (acc[i,c] - za * colsum[c]) + b[c]
///
/// colsum[c] = sum_p wq[p,c] is precomputed, so the zero-point correction is
/// one multiply per output.  The calibration residual (max |fp - int8| over
/// the calibration set) is measured at build time and reported; the serving
/// dispatcher admits the quantized model only if that residual fits inside
/// the UQ acceptance gate (core::SurrogateDispatcher::enable_quantized_serving).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "le/nn/network.hpp"
#include "le/tensor/matrix.hpp"

namespace le::nn {

/// Build-time record of what quantization cost on the calibration set.
struct QuantizationReport {
  std::size_t layers = 0;             ///< quantized dense stages
  std::size_t calibration_rows = 0;   ///< rows in the calibration matrix
  double max_abs_residual = 0.0;      ///< max |fp - int8| network output
  double rms_residual = 0.0;          ///< RMS of the same residuals
};

/// An int8 snapshot of a (Dense -> Activation -> [Dropout])* Dense MLP.
/// Immutable after construction; predict paths are const and safe to call
/// from multiple threads (scratch is thread-local).
class QuantizedNetwork {
 public:
  /// Quantizes `net` using `calibration` (rows of network inputs) to set
  /// the per-layer activation scales, then measures the residual vs the fp
  /// network on that same set.  `net` is run in inference mode during
  /// calibration (its training caches are untouched) and is not retained.
  /// Throws std::invalid_argument if the network contains layers other
  /// than Dense/Activation/Dropout, or if `calibration` is empty or has
  /// the wrong width.
  QuantizedNetwork(Network& net, const tensor::Matrix& calibration);

  /// int8 batch inference; same contract as Network::predict_batch.
  void predict_batch(const tensor::Matrix& inputs,
                     tensor::Matrix& outputs) const;

  /// Single-sample convenience on the batch path.
  [[nodiscard]] std::vector<double> predict(std::span<const double> input) const;

  [[nodiscard]] std::size_t input_dim() const noexcept { return input_dim_; }
  [[nodiscard]] std::size_t output_dim() const noexcept { return output_dim_; }
  [[nodiscard]] const QuantizationReport& report() const noexcept {
    return report_;
  }

 private:
  /// One dense layer plus the pointwise activation that follows it.
  struct Stage {
    std::size_t in_dim = 0, out_dim = 0;
    std::vector<std::int8_t> wq;        ///< in_dim x out_dim, row-major
    std::vector<std::int32_t> colsum;   ///< per-column sum of wq
    std::vector<double> wscale;         ///< per-column sw
    std::vector<double> bias;           ///< fp bias
    double ascale = 1.0;                ///< sa for this stage's input
    std::int32_t azero = 0;             ///< za for this stage's input
    Activation activation = Activation::kIdentity;
  };

  std::vector<Stage> stages_;
  std::size_t input_dim_ = 0;
  std::size_t output_dim_ = 0;
  QuantizationReport report_;
};

}  // namespace le::nn
