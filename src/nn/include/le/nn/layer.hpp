/// @file
/// Neural-network layers.
///
/// The paper's case-study networks are small multilayer perceptrons (30 and
/// 48 hidden units for the autotuning net; similar for the nanoconfinement
/// surrogate), optionally with dropout for MC-dropout uncertainty
/// quantification (Section III-B).  Layers process batches stored as
/// (batch x features) row-major matrices and cache what backward() needs.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "le/stats/rng.hpp"
#include "le/tensor/matrix.hpp"
#include "le/tensor/ops.hpp"

namespace le::nn {

/// A mutable view of one parameter tensor and its gradient, exposed to
/// optimizers.  Both spans alias layer-owned storage of equal length.
struct ParamView {
  std::span<double> values;
  std::span<double> grads;
};

/// Abstract batch layer.  forward() must be called before backward(); the
/// layer caches activations internally between the two calls.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a (batch x in_dim) input.
  virtual tensor::Matrix forward(const tensor::Matrix& input) = 0;

  /// Propagates (batch x out_dim) output gradients; accumulates parameter
  /// gradients internally and returns (batch x in_dim) input gradients.
  virtual tensor::Matrix backward(const tensor::Matrix& grad_output) = 0;

  /// Inference-only forward into a caller-owned buffer: identical math to
  /// forward() but nothing is cached for backward() and, once `out` has
  /// reached its steady-state shape, nothing is allocated.  The serving
  /// layer (le::serve) and Network::predict_batch run on this path so
  /// per-call overhead amortizes over the batch.  `out` must not alias
  /// `input`.  The default falls back to forward() for composite layers.
  virtual void infer(const tensor::Matrix& input, tensor::Matrix& out) {
    out = forward(input);
  }

  /// Parameter/gradient views for optimizers; empty for stateless layers.
  virtual std::vector<ParamView> parameters() { return {}; }

  /// Zeroes accumulated parameter gradients.
  virtual void zero_grad() {}

  /// Training-mode switch (dropout becomes active in training mode).
  virtual void set_training(bool training) { training_ = training; }
  [[nodiscard]] bool training() const noexcept { return training_; }

  [[nodiscard]] virtual std::size_t input_dim() const = 0;
  [[nodiscard]] virtual std::size_t output_dim() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

 protected:
  bool training_ = true;
};

/// Fully connected layer: out = in * W + b, W is (in_dim x out_dim).
class DenseLayer final : public Layer {
 public:
  /// Glorot-uniform initialization driven by the given stream.
  DenseLayer(std::size_t in_dim, std::size_t out_dim, stats::Rng& rng);

  tensor::Matrix forward(const tensor::Matrix& input) override;
  tensor::Matrix backward(const tensor::Matrix& grad_output) override;
  /// Forward through tensor::gemm under this layer's GemmPlan (kernel +
  /// blocking), with no input caching.  The default plan defers the kernel
  /// choice to active_gemm_kernel(); Network::autotune_inference installs a
  /// measured per-layer plan (the ATLAS example generalized to kernel
  /// selection).  Accumulation order depends on the chosen kernel; paths
  /// agree to the DESIGN.md section 13 tolerance.
  void infer(const tensor::Matrix& input, tensor::Matrix& out) override;
  std::vector<ParamView> parameters() override;
  void zero_grad() override;

  [[nodiscard]] std::size_t input_dim() const override { return weights_.rows(); }
  [[nodiscard]] std::size_t output_dim() const override { return weights_.cols(); }
  [[nodiscard]] std::string name() const override { return "dense"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  [[nodiscard]] tensor::Matrix& weights() noexcept { return weights_; }
  [[nodiscard]] const tensor::Matrix& weights() const noexcept { return weights_; }
  [[nodiscard]] std::span<double> bias() noexcept { return {bias_}; }
  [[nodiscard]] std::span<const double> bias() const noexcept { return {bias_}; }

  /// The GEMM plan infer() runs under; default defers to the process-wide
  /// active kernel with default blocking.
  [[nodiscard]] const tensor::GemmPlan& infer_plan() const noexcept {
    return infer_plan_;
  }
  void set_infer_plan(const tensor::GemmPlan& plan) noexcept {
    infer_plan_ = plan;
  }

 private:
  tensor::Matrix weights_;
  tensor::Matrix weight_grads_;
  std::vector<double> bias_;
  std::vector<double> bias_grads_;
  tensor::Matrix cached_input_;
  tensor::GemmPlan infer_plan_{};
};

/// Supported pointwise nonlinearities.
enum class Activation { kIdentity, kRelu, kLeakyRelu, kTanh, kSigmoid };

[[nodiscard]] std::string to_string(Activation a);
[[nodiscard]] Activation activation_from_string(const std::string& s);

/// Scalar reference for one activation value (what forward() applies
/// elementwise).  Public so the quantized-inference path can share the exact
/// same nonlinearity definition.
[[nodiscard]] double activation_apply(Activation kind, double x);

/// Pointwise activation layer.
class ActivationLayer final : public Layer {
 public:
  ActivationLayer(Activation kind, std::size_t dim)
      : kind_(kind), dim_(dim) {}

  tensor::Matrix forward(const tensor::Matrix& input) override;
  tensor::Matrix backward(const tensor::Matrix& grad_output) override;
  void infer(const tensor::Matrix& input, tensor::Matrix& out) override;

  [[nodiscard]] std::size_t input_dim() const override { return dim_; }
  [[nodiscard]] std::size_t output_dim() const override { return dim_; }
  [[nodiscard]] std::string name() const override { return "activation:" + to_string(kind_); }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ActivationLayer>(kind_, dim_);
  }
  [[nodiscard]] Activation kind() const noexcept { return kind_; }

 private:
  Activation kind_;
  std::size_t dim_;
  tensor::Matrix cached_input_;
};

/// Inverted dropout.  Active in training mode; in evaluation mode it is the
/// identity unless mc_mode is set, which keeps the stochastic masks on so
/// repeated forward passes form an MC-dropout ensemble (Section III-B).
class DropoutLayer final : public Layer {
 public:
  DropoutLayer(double rate, std::size_t dim, stats::Rng rng);

  tensor::Matrix forward(const tensor::Matrix& input) override;
  tensor::Matrix backward(const tensor::Matrix& grad_output) override;
  /// In deterministic evaluation this is a copy; in training/MC mode it
  /// draws masks exactly like forward() (same RNG stream consumption) but
  /// does not retain them, since no backward() follows inference.
  void infer(const tensor::Matrix& input, tensor::Matrix& out) override;

  void set_mc_mode(bool on) noexcept { mc_mode_ = on; }
  [[nodiscard]] bool mc_mode() const noexcept { return mc_mode_; }
  [[nodiscard]] double rate() const noexcept { return rate_; }

  [[nodiscard]] std::size_t input_dim() const override { return dim_; }
  [[nodiscard]] std::size_t output_dim() const override { return dim_; }
  [[nodiscard]] std::string name() const override { return "dropout"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

 private:
  [[nodiscard]] bool stochastic() const noexcept { return training_ || mc_mode_; }

  double rate_;
  std::size_t dim_;
  stats::Rng rng_;
  bool mc_mode_ = false;
  tensor::Matrix mask_;
};

}  // namespace le::nn
