/// @file
/// Sequential feed-forward network and the MLP builder used by every
/// surrogate in this repository.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "le/nn/layer.hpp"
#include "le/stats/rng.hpp"
#include "le/tensor/matrix.hpp"

namespace le::nn {

/// One per-layer decision made by Network::autotune_inference: the GEMM
/// shape that layer runs at the tuned batch size, the winning plan, and the
/// measured timings that picked it.
struct LayerPlanChoice {
  std::size_t layer_index = 0;              ///< index into Network::layer()
  std::size_t rows = 0, inner = 0, cols = 0;  ///< timed GEMM shape (m,k,n)
  tensor::GemmPlan plan;                    ///< winner, installed on the layer
  double best_us = 0.0;                     ///< winner's measured time
  double scalar_us = 0.0;                   ///< scalar reference time
};

/// A sequence of layers applied in order.  Owns its layers; copyable via
/// clone().  Thread-compatibility: a Network instance is NOT safe for
/// concurrent use (layers cache activations); clone per worker instead —
/// the runtime sync engines (Section III-A experiments) do exactly that.
class Network {
 public:
  Network() = default;

  void add(std::unique_ptr<Layer> layer);

  /// Batch forward pass through all layers.
  [[nodiscard]] tensor::Matrix forward(const tensor::Matrix& input);

  /// Backward pass; must follow a forward() on the same batch.  Parameter
  /// gradients accumulate until zero_grad().
  tensor::Matrix backward(const tensor::Matrix& grad_output);

  /// Inference-only batch forward: each row of `inputs` is one sample and
  /// `outputs` is resized to (inputs.rows() x output_dim()).  Activations
  /// flow through the layers' infer() path via two network-owned scratch
  /// buffers, so steady-state calls allocate nothing and the training-time
  /// activation caches are left untouched — one matrix-matrix pass through
  /// every layer instead of inputs.rows() single-row dispatches.  `outputs`
  /// must not alias `inputs`.
  void predict_batch(const tensor::Matrix& inputs, tensor::Matrix& outputs);

  /// Allocating predict_batch convenience.
  [[nodiscard]] tensor::Matrix predict_batch(const tensor::Matrix& inputs);

  /// Single-sample inference convenience.  Runs on the predict_batch path
  /// with thread-local row buffers, so repeated calls do not allocate the
  /// 1-row batch they historically did (see bench_serving's before/after).
  [[nodiscard]] std::vector<double> predict(std::span<const double> input);

  /// Concatenated parameter views in layer order.
  [[nodiscard]] std::vector<ParamView> parameters();

  void zero_grad();
  void set_training(bool training);

  /// Switches all dropout layers into Monte-Carlo mode (stochastic masks at
  /// inference), forming the UQ ensemble of Section III-B.
  void set_mc_dropout(bool on);

  [[nodiscard]] std::size_t layer_count() const noexcept { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  [[nodiscard]] std::size_t input_dim() const;
  [[nodiscard]] std::size_t output_dim() const;

  /// Total number of trainable scalars.
  [[nodiscard]] std::size_t parameter_count();

  /// Copies all parameter values out into / in from a flat vector, in the
  /// same order as parameters().  Used by the sync engines to exchange
  /// models between workers.
  [[nodiscard]] std::vector<double> get_weights();
  void set_weights(std::span<const double> flat);

  [[nodiscard]] Network clone() const;

  /// ATLAS-style startup autotuning generalized to kernel selection: for
  /// every DenseLayer, times each runnable kernel (scalar always; AVX2 when
  /// the CPU supports it) crossed with `blockings` on this layer's GEMM
  /// shape at `batch_hint` rows, installs the fastest plan via
  /// set_infer_plan(), and returns the decisions.  Measured per layer
  /// because the winner is shape-dependent: wide hidden layers vectorize
  /// well while narrow output layers can favor scalar.  Empty `blockings`
  /// means the default GemmBlocking only.
  std::vector<LayerPlanChoice> autotune_inference(
      std::size_t batch_hint,
      const std::vector<tensor::GemmBlocking>& blockings = {},
      std::size_t repeats = 20);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  /// Ping-pong activation buffers for predict_batch; transient scratch,
  /// never serialized or cloned.
  tensor::Matrix infer_scratch_[2];
};

/// Configuration of a plain MLP surrogate.
struct MlpConfig {
  std::size_t input_dim = 1;
  std::vector<std::size_t> hidden = {32};
  std::size_t output_dim = 1;
  Activation activation = Activation::kRelu;
  /// Dropout applied after each hidden activation; 0 disables.
  double dropout_rate = 0.0;
};

/// Builds Dense -> Activation -> [Dropout] blocks plus a linear output layer.
[[nodiscard]] Network make_mlp(const MlpConfig& config, stats::Rng& rng);

}  // namespace le::nn
