/// @file
/// Text (de)serialization of sequential networks.
///
/// A trained surrogate is an asset: the MLControl campaign driver and the
/// example applications persist surrogates between phases with these
/// routines.  The format is a line-oriented text format (version header,
/// one line per layer, weights in full precision) — diff-friendly and
/// platform independent.  Composite layers (TwoBranchLayer) serialize
/// recursively.
#pragma once

#include <iosfwd>
#include <string>

#include "le/nn/network.hpp"

namespace le::nn {

/// Writes the network architecture and weights to a stream.
void save_network(std::ostream& out, Network& net);

/// Reads a network written by save_network.  `rng` seeds dropout streams
/// of the reconstructed network (mask randomness is not part of the model).
[[nodiscard]] Network load_network(std::istream& in, stats::Rng& rng);

/// File-path conveniences.
void save_network_file(const std::string& path, Network& net);
[[nodiscard]] Network load_network_file(const std::string& path,
                                        stats::Rng& rng);

}  // namespace le::nn
