/// @file
/// Regression losses.  The surrogate problems in the paper are regression
/// problems (density values, optimal timesteps, weekly incidence), so the
/// default is mean-squared error; Huber is provided for the noisy
/// surveillance targets in the DEFSI experiment.
#pragma once

#include "le/tensor/matrix.hpp"

namespace le::nn {

/// Value and gradient of a batch loss. grad has the prediction's shape and
/// is already divided by the batch size.
struct LossResult {
  double value = 0.0;
  tensor::Matrix grad;
};

class Loss {
 public:
  virtual ~Loss() = default;
  /// Both matrices are (batch x outputs) and must have identical shape.
  [[nodiscard]] virtual LossResult evaluate(const tensor::Matrix& predicted,
                                            const tensor::Matrix& target) const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Mean squared error averaged over batch and output dimensions.
class MseLoss final : public Loss {
 public:
  [[nodiscard]] LossResult evaluate(const tensor::Matrix& predicted,
                                    const tensor::Matrix& target) const override;
  [[nodiscard]] const char* name() const override { return "mse"; }
};

/// Mean absolute error; gradient is the (sub)gradient sign/n.
class MaeLoss final : public Loss {
 public:
  [[nodiscard]] LossResult evaluate(const tensor::Matrix& predicted,
                                    const tensor::Matrix& target) const override;
  [[nodiscard]] const char* name() const override { return "mae"; }
};

/// Huber loss with transition point delta.
class HuberLoss final : public Loss {
 public:
  explicit HuberLoss(double delta = 1.0);
  [[nodiscard]] LossResult evaluate(const tensor::Matrix& predicted,
                                    const tensor::Matrix& target) const override;
  [[nodiscard]] const char* name() const override { return "huber"; }
  [[nodiscard]] double delta() const noexcept { return delta_; }

 private:
  double delta_;
};

}  // namespace le::nn
