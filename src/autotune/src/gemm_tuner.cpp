#include "le/autotune/gemm_tuner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

namespace le::autotune {

namespace {

tensor::Matrix make_operand(std::size_t n, unsigned salt) {
  tensor::Matrix m(n, n);
  // Cheap deterministic fill; values are irrelevant to timing.
  double v = 0.5 + 0.001 * static_cast<double>(salt);
  for (double& x : m.flat()) {
    v = v * 1.0000001 + 0.000001;
    x = v;
  }
  return m;
}

data::ParamSpace blocking_space(const GemmTuneConfig& config) {
  data::ParamSpace space;
  space.add_axis({"mc", static_cast<double>(config.block_min),
                  static_cast<double>(config.block_max), true});
  space.add_axis({"kc", static_cast<double>(config.block_min),
                  static_cast<double>(config.block_max), true});
  space.add_axis({"nc", static_cast<double>(config.block_min),
                  static_cast<double>(config.block_max), true});
  return space;
}

tensor::GemmBlocking to_blocking(const std::vector<double>& point) {
  return {static_cast<std::size_t>(point[0]), static_cast<std::size_t>(point[1]),
          static_cast<std::size_t>(point[2])};
}

}  // namespace

double time_gemm(const GemmTuneConfig& config,
                 const tensor::GemmBlocking& blocking) {
  const tensor::Matrix a = make_operand(config.matrix_size, 1);
  const tensor::Matrix b = make_operand(config.matrix_size, 2);
  tensor::Matrix c(config.matrix_size, config.matrix_size);
  std::vector<double> times;
  times.reserve(config.repetitions);
  const tensor::GemmPlan plan{config.kernel, blocking};
  for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    tensor::gemm(a, b, c, plan);
    const auto t1 = std::chrono::steady_clock::now();
    times.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

GemmTuneOutcome tune_gemm(const GemmTuneConfig& config,
                          const ModelGuidedConfig& search, stats::Rng& rng) {
  const Objective objective = [&](const std::vector<double>& point) {
    return time_gemm(config, to_blocking(point));
  };
  const SearchResult result =
      model_guided_search(blocking_space(config), search, objective, rng);

  GemmTuneOutcome outcome;
  outcome.best = to_blocking(result.best_point);
  outcome.best_seconds = result.best_value;
  outcome.evaluations = result.evaluations;
  outcome.default_seconds = time_gemm(config, tensor::GemmBlocking{});
  {
    const tensor::Matrix a = make_operand(config.matrix_size, 1);
    const tensor::Matrix b = make_operand(config.matrix_size, 2);
    tensor::Matrix c(config.matrix_size, config.matrix_size);
    const auto t0 = std::chrono::steady_clock::now();
    tensor::gemm_naive(a, b, c);
    const auto t1 = std::chrono::steady_clock::now();
    outcome.naive_seconds = std::chrono::duration<double>(t1 - t0).count();
  }
  return outcome;
}

GemmPlanTuneOutcome tune_gemm_plan(const GemmTuneConfig& config,
                                   const ModelGuidedConfig& search,
                                   stats::Rng& rng) {
  std::vector<tensor::GemmKernel> kernels{tensor::GemmKernel::kScalar};
  if (tensor::cpu_has_avx2_fma()) {
    kernels.push_back(tensor::GemmKernel::kAvx2);
  }
  GemmPlanTuneOutcome outcome;
  outcome.best_seconds = std::numeric_limits<double>::infinity();
  for (const tensor::GemmKernel kernel : kernels) {
    GemmTuneConfig per_kernel = config;
    per_kernel.kernel = kernel;
    const GemmTuneOutcome tuned = tune_gemm(per_kernel, search, rng);
    outcome.evaluations += tuned.evaluations;
    if (kernel == tensor::GemmKernel::kScalar) {
      outcome.scalar_best_seconds = tuned.best_seconds;
    }
    if (tuned.best_seconds < outcome.best_seconds) {
      outcome.best_seconds = tuned.best_seconds;
      outcome.best = tensor::GemmPlan{kernel, tuned.best};
    }
  }
  return outcome;
}

GemmTuneOutcome tune_gemm_grid(const GemmTuneConfig& config) {
  GemmTuneOutcome outcome;
  outcome.best_seconds = std::numeric_limits<double>::infinity();
  for (std::size_t mc = config.block_min; mc <= config.block_max; mc *= 2) {
    for (std::size_t kc = config.block_min; kc <= config.block_max; kc *= 2) {
      for (std::size_t nc = config.block_min; nc <= config.block_max; nc *= 2) {
        const tensor::GemmBlocking blocking{mc, kc, nc};
        const double t = time_gemm(config, blocking);
        ++outcome.evaluations;
        if (t < outcome.best_seconds) {
          outcome.best_seconds = t;
          outcome.best = blocking;
        }
      }
    }
  }
  outcome.default_seconds = time_gemm(config, tensor::GemmBlocking{});
  return outcome;
}

}  // namespace le::autotune
