#include "le/autotune/md_autotune.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "le/nn/loss.hpp"
#include "le/nn/optimizer.hpp"
#include "le/stats/autocorr.hpp"

namespace le::autotune {

StabilityCheck check_stability(md::NanoconfinementParams params, double dt,
                               std::size_t trial_steps, double tol) {
  params.dt = dt;
  // The thermostat needs a fixed amount of simulated TIME (~ a few 1/gamma)
  // to relax the random initial configuration, so scale the step count up
  // when dt is small; `trial_steps` is the floor.
  const double min_time = 8.0 / params.friction;
  trial_steps = std::max(trial_steps,
                         static_cast<std::size_t>(min_time / dt));
  params.equilibration_steps = trial_steps / 2;
  params.production_steps = trial_steps;
  params.sample_interval = std::max<std::size_t>(1, trial_steps / 40);

  StabilityCheck check;
  try {
    const md::NanoconfinementResult result = md::run_nanoconfinement(params);
    check.finite = std::isfinite(result.mean_temperature) &&
                   std::isfinite(result.peak_density);
    if (check.finite && result.mean_temperature > 0.0) {
      check.temperature_error =
          std::abs(result.mean_temperature - params.kT) / params.kT;
      check.stable = check.temperature_error < tol;
    }
  } catch (const std::exception&) {
    check.finite = false;
  }
  return check;
}

TunedControls measure_controls(const md::NanoconfinementParams& params,
                               const std::vector<double>& dt_ladder) {
  if (dt_ladder.empty()) {
    throw std::invalid_argument("measure_controls: empty dt ladder");
  }
  TunedControls controls;
  // Ascend the ladder; keep the largest stable dt.
  for (double dt : dt_ladder) {
    const StabilityCheck check = check_stability(params, dt);
    if (check.stable) {
      controls.max_stable_dt = dt;
    } else {
      break;  // past the stability edge
    }
  }
  if (controls.max_stable_dt == 0.0) controls.max_stable_dt = dt_ladder.front();

  // Measure the observable's autocorrelation time at a safe timestep.
  // The probe must cover a fixed amount of PHYSICAL time (many velocity
  // relaxation times 1/friction), not a fixed step count, or the ACF
  // estimate degrades at low friction.
  md::NanoconfinementParams probe = params;
  probe.dt = 0.5 * controls.max_stable_dt;
  probe.sample_interval = 2;
  const double probe_time = 24.0 / params.friction;
  probe.production_steps = static_cast<std::size_t>(probe_time / probe.dt);
  probe.equilibration_steps = probe.production_steps / 6;
  // Two independent probe trajectories, averaged: the integrated-ACF
  // estimator is the noisiest of the three labels.
  double tau_samples = 0.0;
  for (std::uint64_t rep = 0; rep < 2; ++rep) {
    probe.seed = params.seed + 7919 * (rep + 1);
    const md::NanoconfinementResult result = md::run_nanoconfinement(probe);
    tau_samples += 0.5 * stats::integrated_autocorr_time(
                             result.contact_series,
                             result.contact_series.size() / 4);
  }
  controls.autocorrelation_time =
      tau_samples * static_cast<double>(probe.sample_interval) * probe.dt;
  // Rule of thumb: equilibrate for ~20 autocorrelation times.
  controls.equilibration_time =
      std::max(0.5, 20.0 * controls.autocorrelation_time);
  return controls;
}

std::vector<double> autotune_features(const md::NanoconfinementParams& params) {
  return {params.h,
          static_cast<double>(params.z_p),
          static_cast<double>(params.z_n),
          params.c,
          params.d,
          params.friction};
}

data::Dataset build_autotune_dataset(
    const std::vector<md::NanoconfinementParams>& points) {
  data::Dataset dataset(6, 3);
  for (const auto& point : points) {
    const TunedControls controls = measure_controls(point);
    const std::vector<double> target = {controls.max_stable_dt,
                                        controls.autocorrelation_time,
                                        controls.equilibration_time};
    dataset.add(autotune_features(point), target);
  }
  return dataset;
}

MdAutotuner MdAutotuner::train(const data::Dataset& labelled,
                               const MdAutotunerConfig& config) {
  if (labelled.input_dim() != 6 || labelled.target_dim() != 3) {
    throw std::invalid_argument("MdAutotuner::train: expected D=6 -> 3 dataset");
  }
  MdAutotuner tuner;
  tuner.input_scaler_.fit(labelled.input_matrix());
  tuner.output_scaler_.fit(labelled.target_matrix());

  data::Dataset scaled(6, 3);
  std::vector<double> in(6), tg(3);
  for (std::size_t i = 0; i < labelled.size(); ++i) {
    auto is = labelled.input(i);
    auto ts = labelled.target(i);
    in.assign(is.begin(), is.end());
    tg.assign(ts.begin(), ts.end());
    tuner.input_scaler_.transform(in);
    tuner.output_scaler_.transform(tg);
    scaled.add(in, tg);
  }

  nn::MlpConfig mlp;
  mlp.input_dim = 6;
  mlp.hidden = config.hidden;  // the paper's 30 and 48
  mlp.output_dim = 3;
  mlp.activation = nn::Activation::kRelu;
  stats::Rng rng(config.seed);
  tuner.net_ = nn::make_mlp(mlp, rng);
  nn::AdamOptimizer opt(5e-3);
  const nn::MseLoss loss;
  stats::Rng fit_rng = rng.split(1);
  nn::fit(tuner.net_, scaled, loss, opt, config.train, fit_rng);
  return tuner;
}

TunedControls MdAutotuner::predict(
    const md::NanoconfinementParams& params) const {
  std::vector<double> in = autotune_features(params);
  input_scaler_.transform(in);
  std::vector<double> out = net_.predict(in);
  output_scaler_.inverse(out);
  TunedControls controls;
  controls.max_stable_dt = std::max(1e-4, out[0]);
  controls.autocorrelation_time = std::max(1e-3, out[1]);
  controls.equilibration_time = std::max(0.1, out[2]);
  return controls;
}

md::NanoconfinementParams MdAutotuner::tune(md::NanoconfinementParams params,
                                            double dt_safety) const {
  const TunedControls controls = predict(params);
  params.dt = dt_safety * controls.max_stable_dt;
  params.sample_interval = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(controls.autocorrelation_time / params.dt)));
  params.equilibration_steps = std::max<std::size_t>(
      100, static_cast<std::size_t>(
               std::ceil(controls.equilibration_time / params.dt)));
  return params;
}

}  // namespace le::autotune
