#include "le/autotune/search.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "le/data/dataset.hpp"
#include "le/data/normalizer.hpp"
#include "le/nn/loss.hpp"
#include "le/nn/network.hpp"
#include "le/nn/optimizer.hpp"
#include "le/nn/train.hpp"

namespace le::autotune {

namespace {

void record(SearchResult& result, const std::vector<double>& point,
            double value) {
  ++result.evaluations;
  if (result.trace.empty() || value < result.best_value) {
    result.best_value = value;
    result.best_point = point;
  }
  result.trace.push_back(result.best_value);
}

}  // namespace

SearchResult grid_search(const data::ParamSpace& space,
                         const std::vector<std::size_t>& levels,
                         const Objective& objective) {
  SearchResult result;
  for (const auto& point : data::grid_sample(space, levels)) {
    record(result, point, objective(point));
  }
  return result;
}

SearchResult random_search(const data::ParamSpace& space, std::size_t budget,
                           const Objective& objective, stats::Rng& rng) {
  SearchResult result;
  for (const auto& point : data::uniform_sample(space, budget, rng)) {
    record(result, point, objective(point));
  }
  return result;
}

SearchResult model_guided_search(const data::ParamSpace& space,
                                 const ModelGuidedConfig& config,
                                 const Objective& objective, stats::Rng& rng) {
  if (config.warmup == 0 || config.warmup > config.budget) {
    throw std::invalid_argument("model_guided_search: bad warmup/budget");
  }
  SearchResult result;
  data::Dataset evaluated(space.dims(), 1);

  const auto evaluate = [&](const std::vector<double>& point) {
    const double value = objective(point);
    const double target[1] = {value};
    evaluated.add(point, std::span<const double>{target, 1});
    record(result, point, value);
  };

  for (const auto& point : data::uniform_sample(space, config.warmup, rng)) {
    evaluate(point);
  }

  // Adaptive trust region for the exploit rounds: relative width of the
  // local candidate cloud, grown on success and shrunk on failure.
  double trust_width = 0.15;
  constexpr double kMinWidth = 0.02;
  constexpr double kMaxWidth = 0.4;

  while (result.evaluations < config.budget) {
    if (rng.uniform() < config.exploration) {
      evaluate(data::uniform_sample(space, 1, rng).front());
      continue;
    }
    // Fit the surrogate on everything evaluated so far (normalized).
    data::MinMaxNormalizer in_scaler, out_scaler;
    in_scaler.fit(evaluated.input_matrix());
    out_scaler.fit(evaluated.target_matrix());
    data::Dataset scaled(space.dims(), 1);
    {
      std::vector<double> in(space.dims()), tg(1);
      for (std::size_t i = 0; i < evaluated.size(); ++i) {
        auto is = evaluated.input(i);
        in.assign(is.begin(), is.end());
        tg[0] = evaluated.target(i)[0];
        in_scaler.transform(in);
        out_scaler.transform(tg);
        scaled.add(in, tg);
      }
    }
    nn::MlpConfig mlp;
    mlp.input_dim = space.dims();
    mlp.hidden = config.hidden;
    mlp.output_dim = 1;
    mlp.activation = nn::Activation::kTanh;
    stats::Rng net_rng = rng.split(result.evaluations);
    nn::Network surrogate = nn::make_mlp(mlp, net_rng);
    nn::AdamOptimizer opt(1e-2);
    const nn::MseLoss loss;
    nn::TrainConfig tc;
    tc.epochs = config.epochs_per_round;
    tc.batch_size = 16;
    stats::Rng fit_rng = rng.split(10000 + result.evaluations);
    nn::fit(surrogate, scaled, loss, opt, tc, fit_rng);

    // Candidate pool: most exploit rounds refine a Gaussian trust region
    // around the incumbent best (the surrogate ranks local directions);
    // every fourth round the pool is global so a wrong basin can still be
    // escaped.
    const bool global_round = result.evaluations % 4 == 0;
    std::vector<std::vector<double>> pool;
    if (global_round) {
      pool = data::uniform_sample(space, config.pool, rng);
    } else {
      pool.reserve(config.pool);
      for (std::size_t k = 0; k < config.pool; ++k) {
        std::vector<double> local = result.best_point;
        for (std::size_t d = 0; d < space.dims(); ++d) {
          const auto& ax = space.axis(d);
          local[d] += rng.normal(0.0, trust_width * (ax.hi - ax.lo));
        }
        space.clamp(local);
        pool.push_back(std::move(local));
      }
    }

    // Pre-transform the evaluated inputs once for the distance penalty.
    std::vector<std::vector<double>> seen;
    seen.reserve(evaluated.size());
    for (std::size_t i = 0; i < evaluated.size(); ++i) {
      auto is = evaluated.input(i);
      std::vector<double> row(is.begin(), is.end());
      in_scaler.transform(row);
      seen.push_back(std::move(row));
    }
    const auto min_dist = [&](std::span<const double> point) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& row : seen) {
        double d2 = 0.0;
        for (std::size_t k = 0; k < row.size(); ++k) {
          const double d = row[k] - point[k];
          d2 += d * d;
        }
        best = std::min(best, d2);
      }
      return std::sqrt(best);
    };

    // Score the pool, evaluate the best acquisition value.
    surrogate.set_training(false);
    std::vector<double> best_candidate;
    double best_score = std::numeric_limits<double>::infinity();
    std::vector<double> scaled_point(space.dims());
    for (auto& candidate : pool) {
      scaled_point.assign(candidate.begin(), candidate.end());
      in_scaler.transform(scaled_point);
      const double pred = surrogate.predict(scaled_point)[0];
      const double score =
          pred + config.extrapolation_penalty * min_dist(scaled_point);
      if (score < best_score) {
        best_score = score;
        best_candidate = candidate;
      }
    }
#ifdef LE_SEARCH_DEBUG
    std::fprintf(stderr, "[search] eval=%zu global=%d pick=(%.3f", result.evaluations,
                 static_cast<int>(global_round), best_candidate[0]);
    for (std::size_t d = 1; d < best_candidate.size(); ++d) {
      std::fprintf(stderr, ",%.3f", best_candidate[d]);
    }
    std::fprintf(stderr, ") score=%.4f actual=%.4f best=%.4f\n", best_score,
                 objective(best_candidate), result.best_value);
#endif
    const double before = result.best_value;
    evaluate(best_candidate);
    if (!global_round) {
      trust_width = result.best_value < before
                        ? std::min(kMaxWidth, trust_width * 1.5)
                        : std::max(kMinWidth, trust_width * 0.6);
    }
  }
  return result;
}

}  // namespace le::autotune
