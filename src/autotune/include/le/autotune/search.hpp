/// @file
/// Generic configuration search — the MLautotuning primitive.
///
/// "Already, autotuning with systems like ATLAS is hugely successful and
/// gives an initial view of MLautotuning" (paper Section I).  Three search
/// strategies over a rectangular parameter space share one interface so the
/// benches can compare them at equal evaluation budgets:
///
///  - grid / random search: the classical ATLAS-style baselines;
///  - model-guided search: fit an MLP surrogate of the objective on the
///    points evaluated so far, then spend most of each round's budget on
///    the surrogate's most promising candidates (ML choosing where to
///    measure next — MLautotuning proper).
#pragma once

#include <functional>
#include <vector>

#include "le/data/sampler.hpp"
#include "le/stats/rng.hpp"

namespace le::autotune {

/// Objective to MINIMIZE (e.g. runtime; negate throughput).
using Objective = std::function<double(const std::vector<double>&)>;

struct SearchResult {
  std::vector<double> best_point;
  double best_value = 0.0;
  std::size_t evaluations = 0;
  /// Best-so-far value after each evaluation (convergence trace).
  std::vector<double> trace;
};

/// Evaluates every point of a full-factorial grid.
[[nodiscard]] SearchResult grid_search(const data::ParamSpace& space,
                                       const std::vector<std::size_t>& levels,
                                       const Objective& objective);

/// Evaluates `budget` uniform random points.
[[nodiscard]] SearchResult random_search(const data::ParamSpace& space,
                                         std::size_t budget,
                                         const Objective& objective,
                                         stats::Rng& rng);

struct ModelGuidedConfig {
  std::size_t budget = 40;
  /// Random warm-up evaluations before the surrogate takes over.
  std::size_t warmup = 8;
  /// Candidate pool scored by the surrogate each round.
  std::size_t pool = 200;
  /// Fraction of post-warmup picks taken randomly (exploration).
  double exploration = 0.2;
  std::vector<std::size_t> hidden = {16, 16};
  std::size_t epochs_per_round = 400;
  /// Acquisition = prediction + penalty * distance-to-nearest-evaluated
  /// (normalized units).  Guards against the net extrapolating fictitious
  /// minima into unexplored corners of the space.
  double extrapolation_penalty = 0.5;
};

/// Surrogate-guided search: MLP fitted on (point -> objective) pairs picks
/// where to evaluate next.
[[nodiscard]] SearchResult model_guided_search(const data::ParamSpace& space,
                                               const ModelGuidedConfig& config,
                                               const Objective& objective,
                                               stats::Rng& rng);

}  // namespace le::autotune
