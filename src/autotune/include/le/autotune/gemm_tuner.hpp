/// @file
/// Cache-blocking autotuner for GEMM — the ATLAS example of Section I
/// ("choosing block sizes to improve cache use and vectorization").
#pragma once

#include <cstddef>

#include "le/autotune/search.hpp"
#include "le/stats/rng.hpp"
#include "le/tensor/ops.hpp"

namespace le::autotune {

struct GemmTuneConfig {
  std::size_t matrix_size = 192;  ///< square problem size to tune for
  std::size_t block_min = 8;
  std::size_t block_max = 256;
  /// Repetitions per timing measurement (median is used).
  std::size_t repetitions = 3;
};

struct GemmTuneOutcome {
  tensor::GemmBlocking best;
  double best_seconds = 0.0;
  double default_seconds = 0.0;  ///< time with the library default blocking
  double naive_seconds = 0.0;    ///< un-blocked reference kernel
  std::size_t evaluations = 0;
};

/// Median wall time of gemm_blocked at the given blocking.
[[nodiscard]] double time_gemm(const GemmTuneConfig& config,
                               const tensor::GemmBlocking& blocking);

/// Tunes (mc, kc, nc) with the given search strategy.
[[nodiscard]] GemmTuneOutcome tune_gemm(const GemmTuneConfig& config,
                                        const ModelGuidedConfig& search,
                                        stats::Rng& rng);

/// Exhaustive power-of-two grid for comparison.
[[nodiscard]] GemmTuneOutcome tune_gemm_grid(const GemmTuneConfig& config);

}  // namespace le::autotune
