/// @file
/// Cache-blocking autotuner for GEMM — the ATLAS example of Section I
/// ("choosing block sizes to improve cache use and vectorization").
#pragma once

#include <cstddef>

#include "le/autotune/search.hpp"
#include "le/stats/rng.hpp"
#include "le/tensor/ops.hpp"

namespace le::autotune {

struct GemmTuneConfig {
  std::size_t matrix_size = 192;  ///< square problem size to tune for
  std::size_t block_min = 8;
  std::size_t block_max = 256;
  /// Repetitions per timing measurement (median is used).
  std::size_t repetitions = 3;
  /// Micro-kernel family the blocking is tuned for.  kScalar reproduces the
  /// historical behavior; tune_gemm_plan() searches over kernels too.
  tensor::GemmKernel kernel = tensor::GemmKernel::kScalar;
};

struct GemmTuneOutcome {
  tensor::GemmBlocking best;
  double best_seconds = 0.0;
  double default_seconds = 0.0;  ///< time with the library default blocking
  double naive_seconds = 0.0;    ///< un-blocked reference kernel
  std::size_t evaluations = 0;
};

/// Median wall time of config.kernel's GEMM at the given blocking.
[[nodiscard]] double time_gemm(const GemmTuneConfig& config,
                               const tensor::GemmBlocking& blocking);

/// Outcome of the joint (kernel x blocking) search.
struct GemmPlanTuneOutcome {
  tensor::GemmPlan best;              ///< winning kernel + blocking
  double best_seconds = 0.0;
  double scalar_best_seconds = 0.0;   ///< best scalar-only candidate
  std::size_t evaluations = 0;
};

/// The block autotuner extended along the kernel axis: runs the
/// model-guided blocking search once per runnable kernel family (scalar
/// always; AVX2 when CPUID allows) and returns the jointly best plan —
/// what the per-layer serving autotuner (Network::autotune_inference) does
/// at startup, exposed here for offline studies (bench_gemm_blocking E4).
[[nodiscard]] GemmPlanTuneOutcome tune_gemm_plan(const GemmTuneConfig& config,
                                                 const ModelGuidedConfig& search,
                                                 stats::Rng& rng);

/// Tunes (mc, kc, nc) with the given search strategy.
[[nodiscard]] GemmTuneOutcome tune_gemm(const GemmTuneConfig& config,
                                        const ModelGuidedConfig& search,
                                        stats::Rng& rng);

/// Exhaustive power-of-two grid for comparison.
[[nodiscard]] GemmTuneOutcome tune_gemm_grid(const GemmTuneConfig& config);

}  // namespace le::autotune
