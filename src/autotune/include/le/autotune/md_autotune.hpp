/// @file
/// The MD parameter autotuner of the paper's ref [9]: "training an ANN to
/// ensure that the simulation runs at its optimal speed (using for example,
/// the lowest allowable timestep dt and 'good' simulation control
/// parameters for high efficiency) while retaining the accuracy of the
/// final result".
///
/// Labels are measured per state point: the largest stable timestep (by
/// scanning a dt ladder with a physical stability check), the measured
/// autocorrelation time of the observable (which sets the optimal sampling
/// interval, Section III-D's blocking discussion), and the implied
/// equilibration length.  The ANN mirrors the paper's architecture: D = 6
/// inputs, hidden layers of 30 and 48 units, 3 outputs.
#pragma once

#include <cstdint>
#include <vector>

#include "le/data/dataset.hpp"
#include "le/data/normalizer.hpp"
#include "le/md/nanoconfinement.hpp"
#include "le/nn/network.hpp"
#include "le/nn/train.hpp"

namespace le::autotune {

/// Stability verdict of a trial run at a candidate timestep.
struct StabilityCheck {
  bool stable = false;
  double temperature_error = 0.0;  ///< |<T> - kT| / kT over the trial
  bool finite = true;              ///< no NaN/inf positions or energies
};

/// Short trial run at the given dt; stable means finite trajectories and
/// kinetic temperature within `tol` of the thermostat target.
[[nodiscard]] StabilityCheck check_stability(md::NanoconfinementParams params,
                                             double dt,
                                             std::size_t trial_steps = 400,
                                             double tol = 0.2);

/// The three autotuned control parameters (the ANN's 3 outputs).
/// Times are in physical simulation-time units so the labels are
/// independent of whichever dt the measurement probe used.
struct TunedControls {
  double max_stable_dt = 0.0;
  double autocorrelation_time = 0.0;  ///< observable ACF time (sim time units)
  double equilibration_time = 0.0;    ///< recommended equilibration (sim time)
};

/// Measured ground-truth labels for one state point: scans the dt ladder
/// for the stability edge, then measures the observable's autocorrelation.
[[nodiscard]] TunedControls measure_controls(
    const md::NanoconfinementParams& params,
    const std::vector<double>& dt_ladder = {0.002, 0.003, 0.0045, 0.007,
                                            0.010, 0.015, 0.022, 0.033});

/// The D = 6 feature vector of ref [9]: (h, z_p, z_n, c, d, friction).
[[nodiscard]] std::vector<double> autotune_features(
    const md::NanoconfinementParams& params);

struct MdAutotunerConfig {
  /// Hidden sizes — the paper's 30 and 48.
  std::vector<std::size_t> hidden = {30, 48};
  nn::TrainConfig train;
  std::uint64_t seed = 53;
};

/// Trained control-parameter predictor.
class MdAutotuner {
 public:
  static MdAutotuner train(const data::Dataset& labelled,
                           const MdAutotunerConfig& config);

  [[nodiscard]] TunedControls predict(
      const md::NanoconfinementParams& params) const;

  /// Applies the prediction to a parameter set: dt with a safety factor,
  /// sample interval = ceil(autocorr time / dt), equilibration steps =
  /// ceil(equilibration time / dt).
  [[nodiscard]] md::NanoconfinementParams tune(md::NanoconfinementParams params,
                                               double dt_safety = 0.8) const;

 private:
  MdAutotuner() = default;
  mutable nn::Network net_;
  data::MinMaxNormalizer input_scaler_;
  data::MinMaxNormalizer output_scaler_;
};

/// Builds a labelled dataset over the given state points by running the
/// measurement ladder at each.
[[nodiscard]] data::Dataset build_autotune_dataset(
    const std::vector<md::NanoconfinementParams>& points);

}  // namespace le::autotune
