/// @file
/// Deterministic random-number streams.
///
/// Everything stochastic in the repository (MD thermostats, SEIR transitions,
/// NN initialization, dropout masks, samplers) draws from le::stats::Rng so
/// that every experiment is reproducible from a single seed.  Substreams are
/// derived with split(), which uses SplitMix64 on the parent state so sibling
/// streams are statistically independent.
#pragma once

#include <cstdint>
#include <random>
#include <span>

namespace le::stats {

/// Seeded random stream: a thin, value-semantic wrapper over mt19937_64
/// with the draw helpers the rest of the codebase needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed), seed_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal (or scaled) draw.
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).  n must be > 0.
  [[nodiscard]] std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(
        std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_));
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Poisson draw with the given mean.
  [[nodiscard]] int poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Exponential draw with the given rate (lambda).
  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Geometric draw: number of failures before first success.
  [[nodiscard]] int geometric(double p) {
    return std::geometric_distribution<int>(p)(engine_);
  }

  /// Fisher–Yates shuffle of an index span.
  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[index(i)]);
    }
  }

  /// Derives an independent child stream; deterministic in (seed, salt).
  [[nodiscard]] Rng split(std::uint64_t salt) const {
    // SplitMix64 over seed ^ salt.
    std::uint64_t z = seed_ ^ (salt + 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng(z ^ (z >> 31));
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace le::stats
