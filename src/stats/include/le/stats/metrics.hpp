/// @file
/// Regression / forecasting quality metrics shared by the surrogate
/// experiments (E2, E4, E5, E7, E8).
#pragma once

#include <span>

namespace le::stats {

/// Root-mean-square error between predictions and targets.
[[nodiscard]] double rmse(std::span<const double> predicted,
                          std::span<const double> actual);

/// Mean absolute error.
[[nodiscard]] double mae(std::span<const double> predicted,
                         std::span<const double> actual);

/// Coefficient of determination R^2; can be negative for bad fits.
/// Returns 0 when the targets are constant.
[[nodiscard]] double r_squared(std::span<const double> predicted,
                               std::span<const double> actual);

/// Mean absolute percentage error; targets with |y| < eps are skipped.
[[nodiscard]] double mape(std::span<const double> predicted,
                          std::span<const double> actual, double eps = 1e-12);

/// Maximum absolute error.
[[nodiscard]] double max_error(std::span<const double> predicted,
                               std::span<const double> actual);

}  // namespace le::stats
