/// @file
/// Time-series independence diagnostics.
///
/// Section III-D of the paper stresses that training samples harvested from a
/// running simulation must be blocked at intervals longer than the
/// autocorrelation time dc, otherwise consecutive samples are not
/// statistically independent and add no training value.  These routines
/// estimate dc and perform Flyvbjerg–Petersen blocking analysis; the
/// nanoconfinement bench uses them to justify its sample-harvesting interval.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace le::stats {

/// Normalized autocorrelation function C(k)/C(0) for lags 0..max_lag.
/// Returns an empty vector for series shorter than 2 samples.
[[nodiscard]] std::vector<double> autocorrelation(std::span<const double> xs,
                                                  std::size_t max_lag);

/// Integrated autocorrelation time tau = 1 + 2 * sum_k rho(k), with the sum
/// truncated at the first negative rho(k) (initial-positive-sequence rule).
/// tau ~ 1 for independent samples.
[[nodiscard]] double integrated_autocorr_time(std::span<const double> xs,
                                              std::size_t max_lag);

/// One level of Flyvbjerg–Petersen blocking: averages adjacent pairs.
[[nodiscard]] std::vector<double> block_once(std::span<const double> xs);

/// Result of a full blocking analysis.
struct BlockingResult {
  /// Standard error of the mean estimated at each blocking level; the
  /// plateau value is the decorrelated error estimate.
  std::vector<double> se_per_level;
  /// Plateau standard error (maximum over levels with >= 16 blocks).
  double plateau_se = 0.0;
  /// Effective number of independent samples n_eff = var / plateau_se^2.
  double n_effective = 0.0;
};

/// Flyvbjerg–Petersen blocking analysis of the standard error of the mean.
[[nodiscard]] BlockingResult blocking_analysis(std::span<const double> xs);

}  // namespace le::stats
