/// @file
/// Uniform-bin histogram, used for MD density profiles and epidemic
/// incidence distributions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace le::stats {

/// Fixed-range uniform-bin histogram accumulating weighted counts.
///
/// Edge behavior is fully deterministic: -inf counts as underflow, +inf as
/// overflow, NaN in a dedicated invalid() tally (never a bin), and a value
/// exactly on an interior bin boundary always lands in the bin it is the
/// lower edge of — independent of floating-point rounding in the division.
class Histogram {
 public:
  /// Range is [lo, hi); values outside are counted in the overflow tallies.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value, double weight = 1.0);
  void add_all(std::span<const double> values, double weight = 1.0);

  /// Merges another histogram with identical binning; throws otherwise.
  void merge(const Histogram& other);

  void reset();

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double bin_width() const noexcept { return width_; }
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] double count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double total_weight() const noexcept { return total_; }
  [[nodiscard]] double underflow() const noexcept { return underflow_; }
  [[nodiscard]] double overflow() const noexcept { return overflow_; }
  /// Weight of NaN observations (never binned, never under/overflow).
  [[nodiscard]] double invalid() const noexcept { return invalid_; }
  [[nodiscard]] std::span<const double> counts() const noexcept { return {counts_}; }

  /// Probability-density view: counts normalized so the integral over the
  /// range is 1 (ignores under/overflow).  Returns all zeros if empty.
  [[nodiscard]] std::vector<double> density() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<double> counts_;
  double total_ = 0.0;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
  double invalid_ = 0.0;
};

}  // namespace le::stats
