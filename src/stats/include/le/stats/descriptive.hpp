/// @file
/// Descriptive statistics over spans of doubles.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace le::stats {

[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample variance (divides by n-1); returns 0 for n < 2.
[[nodiscard]] double variance(std::span<const double> xs);

[[nodiscard]] double stddev(std::span<const double> xs);

/// Standard error of the mean assuming independent samples.
[[nodiscard]] double standard_error(std::span<const double> xs);

[[nodiscard]] double min(std::span<const double> xs);
[[nodiscard]] double max(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1].  xs need not be sorted.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

[[nodiscard]] double median(std::span<const double> xs);

/// Sample covariance of two equal-length series (divides by n-1).
[[nodiscard]] double covariance(std::span<const double> xs,
                                std::span<const double> ys);

/// Pearson correlation coefficient; returns 0 if either series is constant.
[[nodiscard]] double correlation(std::span<const double> xs,
                                 std::span<const double> ys);

/// Summary bundle used by benches when printing result tables.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> xs);

}  // namespace le::stats
