#include "le/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace le::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double standard_error(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double min(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min: empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max: empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty span");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double covariance(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("covariance: length mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) acc += (xs[i] - mx) * (ys[i] - my);
  return acc / static_cast<double>(xs.size() - 1);
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  const double sx = stddev(xs), sy = stddev(ys);
  if (sx == 0.0 || sy == 0.0) return 0.0;
  return covariance(xs, ys) / (sx * sy);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min(xs);
  s.max = max(xs);
  s.median = median(xs);
  return s;
}

}  // namespace le::stats
