#include "le/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace le::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
}

void Histogram::add(double value, double weight) {
  // NaN compares false against both range checks and would otherwise reach
  // the division (undefined cast): tally it separately, never in a bin.
  if (std::isnan(value)) {
    invalid_ += weight;
    return;
  }
  if (value < lo_) {  // -inf lands here
    underflow_ += weight;
    return;
  }
  if (value >= hi_) {  // +inf lands here
    overflow_ += weight;
    return;
  }
  auto bin = static_cast<std::size_t>((value - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);
  // The division can round either way at an exact bin boundary; pin the
  // half-open convention ([edge_k, edge_{k+1})) by checking the edges.
  if (value < lo_ + static_cast<double>(bin) * width_) {
    --bin;
  } else if (bin + 1 < counts_.size() &&
             value >= lo_ + static_cast<double>(bin + 1) * width_) {
    ++bin;
  }
  counts_[bin] += weight;
  total_ += weight;
}

void Histogram::add_all(std::span<const double> values, double weight) {
  for (double v : values) add(v, weight);
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ || other.counts_.size() != counts_.size()) {
    throw std::invalid_argument("Histogram::merge: binning mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  invalid_ += other.invalid_;
}

void Histogram::reset() {
  counts_.assign(counts_.size(), 0.0);
  total_ = underflow_ = overflow_ = invalid_ = 0.0;
}

double Histogram::bin_center(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_center");
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

std::vector<double> Histogram::density() const {
  std::vector<double> d(counts_.size(), 0.0);
  if (total_ <= 0.0) return d;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    d[i] = counts_[i] / (total_ * width_);
  }
  return d;
}

}  // namespace le::stats
