#include "le/stats/autocorr.hpp"

#include <algorithm>
#include <cmath>

#include "le/stats/descriptive.hpp"

namespace le::stats {

std::vector<double> autocorrelation(std::span<const double> xs,
                                    std::size_t max_lag) {
  if (xs.size() < 2) return {};
  const std::size_t n = xs.size();
  const double m = mean(xs);
  max_lag = std::min(max_lag, n - 1);

  double c0 = 0.0;
  for (double x : xs) c0 += (x - m) * (x - m);
  c0 /= static_cast<double>(n);

  std::vector<double> rho(max_lag + 1, 0.0);
  rho[0] = 1.0;
  if (c0 == 0.0) return rho;  // constant series: define rho(k>0) = 0
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double ck = 0.0;
    for (std::size_t t = 0; t + k < n; ++t) {
      ck += (xs[t] - m) * (xs[t + k] - m);
    }
    ck /= static_cast<double>(n);
    rho[k] = ck / c0;
  }
  return rho;
}

double integrated_autocorr_time(std::span<const double> xs,
                                std::size_t max_lag) {
  const auto rho = autocorrelation(xs, max_lag);
  if (rho.empty()) return 1.0;
  double tau = 1.0;
  for (std::size_t k = 1; k < rho.size(); ++k) {
    if (rho[k] <= 0.0) break;  // initial-positive-sequence truncation
    tau += 2.0 * rho[k];
  }
  return tau;
}

std::vector<double> block_once(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size() / 2);
  for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
    out.push_back(0.5 * (xs[i] + xs[i + 1]));
  }
  return out;
}

BlockingResult blocking_analysis(std::span<const double> xs) {
  BlockingResult result;
  if (xs.size() < 2) return result;

  const double var0 = variance(xs);
  std::vector<double> level(xs.begin(), xs.end());
  while (level.size() >= 2) {
    const double se = std::sqrt(variance(level) / static_cast<double>(level.size()));
    result.se_per_level.push_back(se);
    if (level.size() >= 16) {
      result.plateau_se = std::max(result.plateau_se, se);
    }
    level = block_once(level);
  }
  if (result.plateau_se == 0.0 && !result.se_per_level.empty()) {
    result.plateau_se = result.se_per_level.front();
  }
  if (result.plateau_se > 0.0) {
    result.n_effective = var0 / (result.plateau_se * result.plateau_se);
  }
  return result;
}

}  // namespace le::stats
