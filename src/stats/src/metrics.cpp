#include "le/stats/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "le/stats/descriptive.hpp"

namespace le::stats {

namespace {
void check_lengths(std::span<const double> p, std::span<const double> a) {
  if (p.size() != a.size()) throw std::invalid_argument("metric: length mismatch");
  if (p.empty()) throw std::invalid_argument("metric: empty series");
}
}  // namespace

double rmse(std::span<const double> predicted, std::span<const double> actual) {
  check_lengths(predicted, actual);
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - actual[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(predicted.size()));
}

double mae(std::span<const double> predicted, std::span<const double> actual) {
  check_lengths(predicted, actual);
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    acc += std::abs(predicted[i] - actual[i]);
  }
  return acc / static_cast<double>(predicted.size());
}

double r_squared(std::span<const double> predicted,
                 std::span<const double> actual) {
  check_lengths(predicted, actual);
  const double my = mean(actual);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - my) * (actual[i] - my);
  }
  if (ss_tot == 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double mape(std::span<const double> predicted, std::span<const double> actual,
            double eps) {
  check_lengths(predicted, actual);
  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (std::abs(actual[i]) < eps) continue;
    acc += std::abs((predicted[i] - actual[i]) / actual[i]);
    ++counted;
  }
  return counted == 0 ? 0.0 : 100.0 * acc / static_cast<double>(counted);
}

double max_error(std::span<const double> predicted,
                 std::span<const double> actual) {
  check_lengths(predicted, actual);
  double m = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    m = std::max(m, std::abs(predicted[i] - actual[i]));
  }
  return m;
}

}  // namespace le::stats
