#include "le/retrain/retraining_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "le/ckpt/campaign_checkpoint.hpp"
#include "le/nn/loss.hpp"
#include "le/nn/network.hpp"
#include "le/nn/optimizer.hpp"
#include "le/nn/serialize.hpp"
#include "le/obs/health.hpp"
#include "le/obs/metrics.hpp"
#include "le/obs/timer.hpp"
#include "le/runtime/fault.hpp"
#include "le/uq/mc_dropout.hpp"

namespace le::retrain {

namespace {

/// CampaignState::kind written by promotion snapshots.
constexpr const char* kCheckpointKind = "retrain_service";

[[nodiscard]] bool all_finite(std::span<const double> values) {
  return std::all_of(values.begin(), values.end(),
                     [](double v) { return std::isfinite(v); });
}

}  // namespace

std::string to_string(ServiceState state) {
  switch (state) {
    case ServiceState::kIdle: return "IDLE";
    case ServiceState::kCollecting: return "COLLECTING";
    case ServiceState::kTraining: return "TRAINING";
    case ServiceState::kShadowEval: return "SHADOW-EVAL";
    case ServiceState::kGuard: return "GUARD";
    case ServiceState::kStopped: return "STOPPED";
  }
  return "?";
}

RetrainingService::RetrainingService(core::SurrogateDispatcher& dispatcher,
                                     RetrainingConfig config)
    : dispatcher_(dispatcher),
      config_(std::move(config)),
      rng_(config_.seed),
      corpus_(dispatcher.current_surrogate()->input_dim(),
              dispatcher.current_surrogate()->output_dim()) {
  if (config_.min_corpus_size == 0) {
    throw std::invalid_argument("RetrainingService: min_corpus_size == 0");
  }
  if (config_.max_train_attempts == 0) {
    throw std::invalid_argument("RetrainingService: max_train_attempts == 0");
  }
  corpus_target_ = config_.min_corpus_size;
  // Every ground-truth pair the dispatcher produces lands in the bounded
  // tap queue; shadow evaluation drains it.  Armed for the service's whole
  // lifetime (detached in the destructor) so no pair between the retrain
  // request and the evaluation is missed.
  dispatcher_.set_ground_truth_tap(
      [this](std::span<const double> input, std::span<const double> truth) {
        std::lock_guard lock(tap_mutex_);
        if (tap_queue_.size() >= config_.max_eval_queue) {
          tap_queue_.pop_front();
        }
        tap_queue_.push_back(
            EvalPair{std::vector<double>(input.begin(), input.end()),
                     std::vector<double>(truth.begin(), truth.end())});
      });
  tap_armed_ = true;
}

RetrainingService::~RetrainingService() {
  stop();
  if (tap_armed_) dispatcher_.set_ground_truth_tap(nullptr);
}

void RetrainingService::seed_corpus(const data::Dataset& corpus) {
  std::lock_guard lock(state_mutex_);
  corpus_ = corpus;
  corpus_initialized_ = true;
  incumbent_reference_ = corpus.input_matrix();
}

void RetrainingService::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard lock(wake_mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread(&RetrainingService::run_loop, this);
}

void RetrainingService::stop() {
  if (thread_.joinable()) {
    {
      std::lock_guard lock(wake_mutex_);
      stop_requested_ = true;
    }
    wake_cv_.notify_all();
    thread_.join();
  }
  set_state(ServiceState::kStopped);
}

void RetrainingService::run_loop() {
  const auto interval = std::chrono::duration<double>(
      std::max(config_.poll_interval_seconds, 1e-4));
  std::unique_lock lock(wake_mutex_);
  while (!stop_requested_) {
    lock.unlock();
    (void)poll_once();
    lock.lock();
    wake_cv_.wait_for(lock, interval, [this] { return stop_requested_; });
  }
}

ServiceState RetrainingService::poll_once() {
  switch (state()) {
    case ServiceState::kIdle: step_idle(); break;
    case ServiceState::kCollecting: step_collecting(); break;
    case ServiceState::kTraining: step_training(); break;
    case ServiceState::kShadowEval: step_shadow_eval(); break;
    case ServiceState::kGuard: step_guard(); break;
    case ServiceState::kStopped: break;
  }
  return state();
}

// ---------------------------------------------------------------------------
// State handlers (service thread only)

void RetrainingService::step_idle() {
  obs::SurrogateHealthMonitor* monitor = dispatcher_.health_monitor();
  if (!monitor || !monitor->retrain_requested()) return;
  // The incumbent's rolling residual RMSE on the drifted stream is the bar
  // a candidate must beat.  Captured once, here: after on_retrained() the
  // window resets, and re-reading it later would race the serving thread's
  // ongoing shadow samples.
  const obs::HealthReport report = monitor->report();
  {
    std::lock_guard lock(state_mutex_);
    ++stats_.retrain_requests_seen;
    stats_.last_incumbent_rmse = report.residual_rmse;
    incumbent_rmse_bar_ = report.residual_rmse;
    attempts_this_request_ = 0;
    corpus_target_ = config_.min_corpus_size;
    backoff_until_ = -1.0;
  }
  if (m_requests_) m_requests_->add();
  set_state(ServiceState::kCollecting);
}

void RetrainingService::step_collecting() {
  absorb_banked();
  std::size_t size = 0;
  {
    std::lock_guard lock(state_mutex_);
    size = corpus_.size();
  }
  if (size >= corpus_target_) set_state(ServiceState::kTraining);
}

void RetrainingService::step_training() {
  // Honour retry backoff: decline to train until the deadline passes (the
  // poll cadence supplies the waiting).
  if (backoff_until_ >= 0.0 &&
      obs::process_clock_seconds() < backoff_until_) {
    return;
  }
  absorb_banked();  // late-arriving fallback runs still help this attempt

  ++attempts_this_request_;
  {
    std::lock_guard lock(state_mutex_);
    ++stats_.train_attempts;
  }
  if (m_attempts_) m_attempts_->add();

  TrainedCandidate candidate;
  bool failed = false;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    candidate = train_candidate_checked();
  } catch (const std::exception&) {
    failed = true;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  {
    std::lock_guard lock(state_mutex_);
    stats_.train_seconds += seconds;
  }
  if (m_train_seconds_) m_train_seconds_->record(seconds);

  if (failed) {
    {
      std::lock_guard lock(state_mutex_);
      ++stats_.train_failures;
    }
    if (m_failures_) m_failures_->add();
    if (attempts_this_request_ >= config_.max_train_attempts) {
      // Re-arm: retrying the same corpus a fourth time is not a plan.
      // Go back to collecting with a grown requirement — fresh fallback
      // runs from the drifted regime are what a better attempt needs.
      std::lock_guard lock(state_mutex_);
      corpus_target_ = corpus_.size() + config_.min_corpus_size;
      attempts_this_request_ = 0;
      backoff_until_ = -1.0;
      state_ = ServiceState::kCollecting;
      publish_gauges();
      return;
    }
    const double backoff =
        config_.retry_backoff_seconds *
        std::pow(config_.backoff_multiplier,
                 static_cast<double>(attempts_this_request_ - 1));
    backoff_until_ = obs::process_clock_seconds() + backoff;
    return;  // stay in kTraining for the next attempt
  }

  {
    std::lock_guard lock(state_mutex_);
    ++stats_.candidates_trained;
    candidate_ = std::move(candidate.model);
    eval_sq_err_sum_ = 0.0;
    eval_covered_dims_ = 0.0;
    eval_dims_ = 0.0;
    eval_samples_ = 0;
  }
  {
    // Only ground truth produced from here on scores the candidate:
    // pre-training pairs already shaped its corpus.
    std::lock_guard lock(tap_mutex_);
    tap_queue_.clear();
  }
  set_state(ServiceState::kShadowEval);
}

void RetrainingService::step_shadow_eval() {
  obs::TraceSpan span("retrain.shadow_eval");
  std::deque<EvalPair> pairs;
  {
    std::lock_guard lock(tap_mutex_);
    pairs.swap(tap_queue_);
  }
  // The candidate predicts silently against live ground truth.  It is
  // exclusive to this thread — it has never been handed to the dispatcher,
  // so it cannot answer (or race) a query.
  for (const EvalPair& pair : pairs) {
    if (pair.input.size() != candidate_->input_dim() ||
        pair.truth.size() != candidate_->output_dim()) {
      continue;
    }
    const uq::Prediction prediction = candidate_->predict(pair.input);
    for (std::size_t d = 0; d < pair.truth.size(); ++d) {
      const double err = prediction.mean[d] - pair.truth[d];
      eval_sq_err_sum_ += err * err;
      if (std::abs(err) <= config_.coverage_z * prediction.stddev[d]) {
        eval_covered_dims_ += 1.0;
      }
      eval_dims_ += 1.0;
    }
    ++eval_samples_;
  }
  if (eval_samples_ < config_.min_eval_samples) return;  // keep collecting

  const double rmse =
      eval_dims_ == 0.0 ? 0.0 : std::sqrt(eval_sq_err_sum_ / eval_dims_);
  const double coverage =
      eval_dims_ == 0.0 ? 0.0 : eval_covered_dims_ / eval_dims_;
  {
    std::lock_guard lock(state_mutex_);
    stats_.last_eval_rmse = rmse;
    stats_.last_eval_coverage = coverage;
    stats_.last_eval_samples = eval_samples_;
  }
  if (m_eval_rmse_) m_eval_rmse_->set(rmse);
  if (m_eval_coverage_) m_eval_coverage_->set(coverage);

  // Promotion bar: beat the incumbent's drifted-era residual RMSE by the
  // configured margin AND hold UQ coverage.  A zero bar (the monitor
  // tripped on drift alone, before any shadow baseline) degenerates to the
  // coverage + finiteness test.
  const bool beats_rmse =
      incumbent_rmse_bar_ > 0.0
          ? rmse <= config_.max_rmse_ratio * incumbent_rmse_bar_
          : std::isfinite(rmse);
  const bool holds_coverage = coverage >= config_.min_coverage;
  if (beats_rmse && holds_coverage) {
    std::shared_ptr<uq::UqModel> candidate;
    {
      std::lock_guard lock(state_mutex_);
      candidate = std::move(candidate_);
      candidate_.reset();
    }
    promote(std::move(candidate), rmse, coverage);
    return;
  }

  // Rejected: the candidate never served a query; it is simply dropped.
  {
    std::lock_guard lock(state_mutex_);
    ++stats_.candidates_rejected;
    candidate_.reset();
    corpus_target_ = corpus_.size() + config_.min_corpus_size;
    attempts_this_request_ = 0;
    backoff_until_ = -1.0;
  }
  if (m_rejected_) m_rejected_->add();
  set_state(ServiceState::kCollecting);
}

void RetrainingService::step_guard() {
  obs::SurrogateHealthMonitor* monitor = dispatcher_.health_monitor();
  if (!monitor) {  // nothing can re-trip; the guard window is moot
    set_state(ServiceState::kIdle);
    return;
  }
  const obs::HealthReport report = monitor->report();
  const std::uint64_t since =
      report.queries >= promoted_at_queries_
          ? report.queries - promoted_at_queries_
          : 0;
  if (report.retrain_requested && since <= config_.guard_window_queries) {
    (void)rollback("health monitor re-tripped inside the guard window");
    set_state(ServiceState::kIdle);
    return;
  }
  if (since > config_.guard_window_queries) {
    // Guard passed.  The prior model stays retained for manual rollback().
    set_state(ServiceState::kIdle);
  }
}

// ---------------------------------------------------------------------------
// Building blocks

void RetrainingService::absorb_banked() {
  data::Dataset banked = dispatcher_.take_retraining();
  if (banked.size() == 0) return;
  std::lock_guard lock(state_mutex_);
  if (!corpus_initialized_ && corpus_.size() == 0 &&
      (corpus_.input_dim() != banked.input_dim() ||
       corpus_.target_dim() != banked.target_dim())) {
    corpus_ = data::Dataset(banked.input_dim(), banked.target_dim());
  }
  corpus_.append(banked);
  corpus_initialized_ = true;
  trim_corpus();
  if (m_corpus_size_) m_corpus_size_->set(static_cast<double>(corpus_.size()));
}

void RetrainingService::trim_corpus() {
  // Caller holds state_mutex_.
  if (corpus_.size() <= config_.max_corpus_size) return;
  std::vector<std::size_t> newest(config_.max_corpus_size);
  std::iota(newest.begin(), newest.end(),
            corpus_.size() - config_.max_corpus_size);
  corpus_ = corpus_.subset(newest);
}

TrainedCandidate RetrainingService::train_candidate_checked() {
  obs::TraceSpan span("retrain.train");
  data::Dataset corpus;
  {
    std::lock_guard lock(state_mutex_);
    corpus = corpus_;
  }
  if (corpus.size() == 0) {
    throw std::runtime_error("retrain: empty corpus");
  }

  std::size_t attempt_ordinal = 0;
  {
    std::lock_guard lock(state_mutex_);
    attempt_ordinal = stats_.train_attempts;
  }
  stats::Rng attempt_rng = rng_.split(1000 + attempt_ordinal);
  TrainedCandidate candidate;
  if (config_.trainer) {
    candidate = config_.trainer(corpus, attempt_rng);
  } else {
    nn::MlpConfig mlp;
    mlp.input_dim = corpus.input_dim();
    mlp.hidden = config_.hidden;
    mlp.output_dim = corpus.target_dim();
    mlp.activation = nn::Activation::kRelu;
    mlp.dropout_rate = config_.dropout_rate;
    stats::Rng net_rng = attempt_rng.split(1);
    nn::Network net = nn::make_mlp(mlp, net_rng);
    nn::AdamOptimizer opt(1e-2);
    const nn::MseLoss loss;
    stats::Rng fit_rng = attempt_rng.split(2);
    const nn::TrainResult result =
        nn::fit(net, corpus, loss, opt, config_.train, fit_rng);
    candidate.final_loss = result.final_train_loss;
    candidate.model = std::make_shared<uq::McDropoutEnsemble>(
        std::move(net), config_.mc_passes);
  }

  // Trainer fault injection: the configured injector corrupts the reported
  // loss exactly as it corrupts simulation outputs — a throw is a crashed
  // attempt, NaN/Inf corruption a diverged one, range corruption a stuck
  // one (caught by max_final_loss below).
  if (config_.trainer_faults) {
    runtime::SimFn identity = [](std::span<const double> values) {
      return std::vector<double>(values.begin(), values.end());
    };
    runtime::SimFn poisoned = config_.trainer_faults->wrap(std::move(identity));
    const std::vector<double> loss_in{candidate.final_loss};
    candidate.final_loss = poisoned(loss_in).at(0);
  }

  // A kill here proves training itself is not a durability hazard: nothing
  // was checkpointed and nothing was swapped, so a resumed campaign keeps
  // the incumbent (tests/test_retrain.cpp kill-and-resume).
  runtime::crash_point("retrain.trained");

  if (!candidate.model) {
    throw std::runtime_error("retrain: trainer returned no model");
  }
  if (!std::isfinite(candidate.final_loss) ||
      candidate.final_loss > config_.max_final_loss) {
    throw std::runtime_error("retrain: training loss invalid or stuck");
  }
  // One sanity prediction: a candidate that cannot produce finite output
  // on its own training data is never worth shadow-evaluating.
  const uq::Prediction probe =
      candidate.model->predict(corpus.input(corpus.size() - 1));
  if (!all_finite(probe.mean) || !all_finite(probe.stddev)) {
    throw std::runtime_error("retrain: candidate predicts non-finite values");
  }
  return candidate;
}

void RetrainingService::promote(std::shared_ptr<uq::UqModel> candidate,
                                double eval_rmse, double eval_coverage) {
  obs::TraceSpan span("retrain.promote");

  // Crash consistency: persist the validated candidate BEFORE the swap.
  // A kill after the save resumes into this candidate; a kill before it
  // resumes into the incumbent.  Either way the serving model is one that
  // passed validation — never a half-trained artifact.
  if (config_.checkpointer) {
    ckpt::CampaignState snapshot;
    snapshot.kind = kCheckpointKind;
    {
      std::lock_guard lock(state_mutex_);
      snapshot.progress = stats_.promotions + 1;
      snapshot.dataset = corpus_;
    }
    snapshot.rng_state = ckpt::encode_rng(rng_);
    snapshot.scalars = {eval_rmse, eval_coverage,
                        static_cast<double>(config_.mc_passes)};
    if (auto* mc = dynamic_cast<uq::McDropoutEnsemble*>(candidate.get())) {
      std::ostringstream text;
      nn::save_network(text, mc->network());
      snapshot.network_text = text.str();
    }
    (void)config_.checkpointer->save(snapshot);
  }
  runtime::crash_point("retrain.promote_saved");

  // Swap, then heal the monitor.  This order means the monitor can only
  // ever report HEALTHY while the candidate is already serving; the brief
  // window where the candidate serves under a still-UNTRUSTED monitor is
  // harmless (the breaker resets with the swap).
  std::shared_ptr<uq::UqModel> prior = dispatcher_.current_surrogate();
  dispatcher_.replace_surrogate(candidate);
  tensor::Matrix new_reference;
  {
    std::lock_guard lock(state_mutex_);
    new_reference = corpus_.input_matrix();
  }
  obs::SurrogateHealthMonitor* monitor = dispatcher_.health_monitor();
  if (monitor) monitor->on_retrained(new_reference);

  {
    std::lock_guard lock(state_mutex_);
    prior_model_ = std::move(prior);
    prior_reference_ = incumbent_reference_;
    incumbent_reference_ = std::move(new_reference);
    promoted_at_queries_ = monitor ? monitor->report().queries : 0;
    ++stats_.promotions;
  }
  if (m_promotions_) m_promotions_->add();
  set_state(ServiceState::kGuard);
}

bool RetrainingService::rollback(const std::string& reason) {
  (void)reason;
  std::shared_ptr<uq::UqModel> prior;
  tensor::Matrix prior_reference;
  {
    std::lock_guard lock(state_mutex_);
    if (!prior_model_) return false;
    prior = std::move(prior_model_);
    prior_model_.reset();
    prior_reference = prior_reference_;
  }
  obs::TraceSpan span("retrain.rollback");
  dispatcher_.replace_surrogate(prior);
  obs::SurrogateHealthMonitor* monitor = dispatcher_.health_monitor();
  if (monitor && prior_reference.rows() > 0) {
    monitor->on_rolled_back(prior_reference);
  }
  {
    std::lock_guard lock(state_mutex_);
    incumbent_reference_ = std::move(prior_reference);
    ++stats_.rollbacks;
  }
  if (m_rollbacks_) m_rollbacks_->add();
  return true;
}

bool RetrainingService::resume_from_checkpoint() {
  if (!config_.checkpointer) return false;
  std::optional<ckpt::CampaignState> snapshot =
      config_.checkpointer->load_latest();
  if (!snapshot || snapshot->kind != kCheckpointKind ||
      snapshot->network_text.empty()) {
    return false;
  }
  std::shared_ptr<uq::McDropoutEnsemble> candidate;
  try {
    std::istringstream text(snapshot->network_text);
    stats::Rng net_rng = rng_.split(424242);
    std::size_t passes = config_.mc_passes;
    if (snapshot->scalars.size() >= 3 && snapshot->scalars[2] >= 1.0) {
      passes = static_cast<std::size_t>(snapshot->scalars[2]);
    }
    candidate = std::make_shared<uq::McDropoutEnsemble>(
        nn::load_network(text, net_rng), passes);
  } catch (const std::exception&) {
    return false;  // torn/incompatible snapshot: keep the incumbent
  }

  std::shared_ptr<uq::UqModel> prior = dispatcher_.current_surrogate();
  try {
    dispatcher_.replace_surrogate(candidate);
  } catch (const std::exception&) {
    return false;  // shape mismatch: snapshot belongs to another dispatcher
  }
  const tensor::Matrix reference = snapshot->dataset.input_matrix();
  obs::SurrogateHealthMonitor* monitor = dispatcher_.health_monitor();
  if (monitor && reference.rows() > 0) monitor->on_retrained(reference);

  {
    std::lock_guard lock(state_mutex_);
    prior_model_ = std::move(prior);
    prior_reference_ = incumbent_reference_;
    corpus_ = std::move(snapshot->dataset);
    corpus_initialized_ = corpus_.size() > 0;
    incumbent_reference_ = reference;
    promoted_at_queries_ = monitor ? monitor->report().queries : 0;
    ++stats_.promotions;
    if (snapshot->scalars.size() >= 2) {
      stats_.last_eval_rmse = snapshot->scalars[0];
      stats_.last_eval_coverage = snapshot->scalars[1];
    }
  }
  if (m_promotions_) m_promotions_->add();
  set_state(ServiceState::kGuard);
  return true;
}

// ---------------------------------------------------------------------------
// Accessors, metrics

ServiceState RetrainingService::state() const {
  std::lock_guard lock(state_mutex_);
  return state_;
}

RetrainingStats RetrainingService::stats() const {
  std::lock_guard lock(state_mutex_);
  return stats_;
}

std::shared_ptr<uq::UqModel> RetrainingService::prior_model() const {
  std::lock_guard lock(state_mutex_);
  return prior_model_;
}

void RetrainingService::set_state(ServiceState next) {
  std::lock_guard lock(state_mutex_);
  if (state_ == next) return;
  state_ = next;
  publish_gauges();
}

void RetrainingService::publish_gauges() {
  // Caller holds state_mutex_.
  if (m_state_) m_state_->set(static_cast<double>(state_));
  if (m_corpus_size_) m_corpus_size_->set(static_cast<double>(corpus_.size()));
}

void RetrainingService::enable_metrics(obs::MetricsRegistry& registry,
                                       const std::string& prefix) {
  m_requests_ = &registry.counter(prefix + ".requests");
  m_attempts_ = &registry.counter(prefix + ".train_attempts");
  m_failures_ = &registry.counter(prefix + ".train_failures");
  m_rejected_ = &registry.counter(prefix + ".candidates_rejected");
  m_promotions_ = &registry.counter(prefix + ".promotions");
  m_rollbacks_ = &registry.counter(prefix + ".rollbacks");
  m_state_ = &registry.gauge(prefix + ".state");
  m_corpus_size_ = &registry.gauge(prefix + ".corpus_size");
  m_eval_rmse_ = &registry.gauge(prefix + ".last_eval_rmse");
  m_eval_coverage_ = &registry.gauge(prefix + ".last_eval_coverage");
  m_train_seconds_ = &registry.histogram(prefix + ".train_seconds");
  std::lock_guard lock(state_mutex_);
  publish_gauges();
}

}  // namespace le::retrain
