/// @file
/// Autonomous surrogate retraining (le::retrain): the loop that closes the
/// paper's auto-tunability outcome (Section II-C1, "with new simulation
/// runs the ML layer gets better at making predictions") without a human
/// in it.
///
/// When the health monitor latches UNTRUSTED (obs/health.hpp) the
/// dispatcher's circuit breaker opens and every query falls back to the
/// real simulation — correct, but S_eff collapses to ~1.  Those fallback
/// runs are exactly the labelled samples a replacement model needs
/// ("no run is wasted"), so RetrainingService watches retrain_requested(),
/// banks the fallback/shadow corpus via take_retraining(), trains a
/// candidate network on its own thread while serving continues degraded,
/// shadow-evaluates the candidate against live ground truth (the candidate
/// predicts silently; it never answers a query), and promotes it through
/// replace_surrogate() + on_retrained() only if it beats the incumbent's
/// degraded-era residual RMSE and holds UQ coverage.  A promotion is
/// crash-consistent (the candidate is checkpointed before the swap) and
/// reversible: the prior model is retained, and if the monitor re-trips
/// inside a guard window the service rolls back in one call and re-latches
/// the monitor via on_rolled_back().
///
/// Trainer robustness: training attempts may be wrapped by a
/// runtime::FaultInjector (NaN losses, crashes, stuck convergence).  A
/// failed attempt is retried with backoff up to a bound; after that the
/// service re-arms — it returns to collecting a larger corpus rather than
/// wedging or promoting a broken candidate.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "le/core/surrogate.hpp"
#include "le/data/dataset.hpp"
#include "le/nn/train.hpp"
#include "le/stats/rng.hpp"
#include "le/tensor/matrix.hpp"

namespace le::ckpt {
class CampaignCheckpointer;
}  // namespace le::ckpt

namespace le::obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace le::obs

namespace le::runtime {
class FaultInjector;
}  // namespace le::runtime

namespace le::uq {
class UqModel;
}  // namespace le::uq

namespace le::retrain {

/// Where the service is in its detect -> train -> shadow-eval -> promote
/// loop (DESIGN.md section 12 has the full state machine).
enum class ServiceState {
  kIdle = 0,        ///< surrogate trusted; watching for a retrain request
  kCollecting = 1,  ///< request seen; absorbing banked fallback corpus
  kTraining = 2,    ///< candidate training (bounded retries with backoff)
  kShadowEval = 3,  ///< candidate predicting silently against live truth
  kGuard = 4,       ///< candidate promoted; rollback armed for a window
  kStopped = 5,     ///< stop() called; the loop will not run again
};

[[nodiscard]] std::string to_string(ServiceState state);

/// Trains a candidate model from a corpus.  The default trainer builds a
/// dropout MLP (make_mlp + Adam + MSE, mirroring the adaptive loop); tests
/// substitute poisoned trainers to prove rejection paths.  Must throw on
/// failure or return a non-null model plus the final training loss.
struct TrainedCandidate {
  std::shared_ptr<uq::UqModel> model;
  double final_loss = 0.0;
};
using TrainerFn = std::function<TrainedCandidate(const data::Dataset& corpus,
                                                 stats::Rng& rng)>;

struct RetrainingConfig {
  // ---- corpus ----------------------------------------------------------
  /// Banked samples required before a training attempt starts.  After a
  /// round of training failures the requirement grows (fresh data beats
  /// retrying on the same corpus).
  std::size_t min_corpus_size = 64;
  /// Oldest samples are dropped beyond this (the drifted regime is what
  /// matters; stale pre-drift rows dilute it).
  std::size_t max_corpus_size = 8192;

  // ---- candidate training ---------------------------------------------
  std::vector<std::size_t> hidden = {32, 32};
  double dropout_rate = 0.1;
  std::size_t mc_passes = 24;
  nn::TrainConfig train;
  std::uint64_t seed = 101;
  /// Bounded retries: attempts per retrain request before the service
  /// re-arms (returns to kCollecting with a grown corpus requirement).
  std::size_t max_train_attempts = 3;
  /// Backoff before retry attempt k is `retry_backoff_seconds *
  /// backoff_multiplier^(k-1)`; poll_once() honours it by declining to
  /// train until the deadline passes.
  double retry_backoff_seconds = 0.0;
  double backoff_multiplier = 2.0;
  /// A candidate whose final training loss is non-finite or above this is
  /// a failed attempt (stuck convergence / NaN loss), never a promotion
  /// candidate.
  double max_final_loss = 1e6;
  /// Optional fault injection over the trainer (see file comment).  The
  /// injector corrupts the reported training loss exactly as it corrupts
  /// simulation outputs: throws are crashed attempts, NaN/Inf and
  /// out-of-range corruptions read as diverged/stuck training.  Must
  /// outlive the service.
  runtime::FaultInjector* trainer_faults = nullptr;
  /// Custom trainer; null uses the default MLP trainer.
  TrainerFn trainer;

  // ---- shadow evaluation ----------------------------------------------
  /// Ground-truth pairs the candidate must be scored on before the
  /// promotion decision.
  std::size_t min_eval_samples = 32;
  /// Bound on the tap queue (oldest dropped) so an idle service never
  /// grows without bound.
  std::size_t max_eval_queue = 1024;
  /// Interval half-width (in predicted sigmas) for candidate coverage.
  double coverage_z = 2.0;
  /// Promote only if candidate RMSE <= max_rmse_ratio * incumbent RMSE
  /// (the incumbent's rolling residual RMSE on the drifted stream, captured
  /// when the retrain request was seen)...
  double max_rmse_ratio = 0.9;
  /// ...and candidate empirical coverage at coverage_z is at least this.
  double min_coverage = 0.5;

  // ---- promotion guard -------------------------------------------------
  /// If the health monitor re-trips within this many observed queries of a
  /// promotion, the service rolls back to the prior model automatically.
  std::uint64_t guard_window_queries = 512;

  // ---- service ---------------------------------------------------------
  /// Background-thread poll cadence (start()/stop() mode).  poll_once()
  /// ignores it.
  double poll_interval_seconds = 0.01;
  /// Crash-consistent promotion: the candidate snapshot (kind
  /// "retrain_service") is saved here BEFORE the swap, so a kill between
  /// save and swap resumes into the validated candidate, and a kill before
  /// the save resumes into the incumbent — never a half-trained model.
  /// Null disables checkpointing (promotions are then memory-only).
  ckpt::CampaignCheckpointer* checkpointer = nullptr;
};

/// Lifetime totals plus the last shadow-evaluation verdict.
struct RetrainingStats {
  std::size_t retrain_requests_seen = 0;
  std::size_t train_attempts = 0;
  std::size_t train_failures = 0;  ///< threw, NaN/stuck loss, invalid model
  std::size_t candidates_trained = 0;
  std::size_t candidates_rejected = 0;  ///< failed shadow evaluation
  std::size_t promotions = 0;
  std::size_t rollbacks = 0;
  double train_seconds = 0.0;
  // Last completed shadow evaluation:
  double last_eval_rmse = 0.0;
  double last_eval_coverage = 0.0;
  std::size_t last_eval_samples = 0;
  /// Incumbent residual RMSE bar the last evaluation was judged against.
  double last_incumbent_rmse = 0.0;
};

/// The autonomous retraining loop.  One service per dispatcher; the
/// dispatcher, its health monitor, and any injector/checkpointer in the
/// config must outlive the service.
///
/// Threading: the service touches the dispatcher only through its
/// thread-safe surface (take_retraining, current_surrogate,
/// replace_surrogate, the internally-locked health monitor) and receives
/// ground truth through the dispatcher's tap into an internally-locked
/// queue, so start() may run concurrently with a serving thread
/// (tests/test_retrain.cpp proves promotion and rollback under TSan).
/// poll_once()/rollback()/resume_from_checkpoint() are for single-threaded
/// deterministic use and must not race start().
class RetrainingService {
 public:
  RetrainingService(core::SurrogateDispatcher& dispatcher,
                    RetrainingConfig config);
  ~RetrainingService();
  RetrainingService(const RetrainingService&) = delete;
  RetrainingService& operator=(const RetrainingService&) = delete;

  /// Seeds the corpus (and the incumbent's drift-reference inputs, used to
  /// re-latch the monitor on rollback) from the incumbent's training set.
  /// Call before serving starts.
  void seed_corpus(const data::Dataset& corpus);

  /// Spawns the background loop: poll_once() every poll_interval_seconds.
  void start();
  /// Stops and joins the background loop (idempotent; also run by the
  /// destructor).  State becomes kStopped.
  void stop();

  /// One synchronous step of the state machine; returns the state after
  /// the step.  Deterministic-test entry point — identical logic to the
  /// background loop.
  ServiceState poll_once();

  /// Restores the prior model (one call): replace_surrogate(prior) +
  /// health_monitor->on_rolled_back(prior reference).  No-op without a
  /// retained prior.  Returns true when a rollback happened.
  bool rollback(const std::string& reason);

  /// Resumes a promotion from the newest valid "retrain_service" snapshot:
  /// rebuilds the saved candidate, installs it, heals the monitor and
  /// enters the guard window.  Returns false (incumbent stays; state
  /// untouched) when no valid snapshot exists — a kill mid-training leaves
  /// nothing to resume, which is the correct outcome: the service never
  /// serves a half-trained model.
  bool resume_from_checkpoint();

  [[nodiscard]] ServiceState state() const;
  [[nodiscard]] RetrainingStats stats() const;
  [[nodiscard]] const RetrainingConfig& config() const noexcept {
    return config_;
  }
  /// The model retained for rollback (null until the first promotion).
  [[nodiscard]] std::shared_ptr<uq::UqModel> prior_model() const;

  /// Publishes "<prefix>.*" counters (requests, train_attempts,
  /// train_failures, candidates_rejected, promotions, rollbacks), gauges
  /// (state, corpus_size, last_eval_rmse, last_eval_coverage) and the
  /// train_seconds histogram.
  void enable_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "retrain");

 private:
  struct EvalPair {
    std::vector<double> input;
    std::vector<double> truth;
  };

  void run_loop();
  // State handlers (hold no lock; stats/state mutated under state_mutex_).
  void step_idle();
  void step_collecting();
  void step_training();
  void step_shadow_eval();
  void step_guard();

  void absorb_banked();
  void trim_corpus();
  [[nodiscard]] TrainedCandidate train_candidate_checked();
  void promote(std::shared_ptr<uq::UqModel> candidate, double eval_rmse,
               double eval_coverage);
  void set_state(ServiceState next);
  void publish_gauges();

  core::SurrogateDispatcher& dispatcher_;
  RetrainingConfig config_;
  stats::Rng rng_;

  mutable std::mutex state_mutex_;  ///< guards everything below it
  ServiceState state_ = ServiceState::kIdle;
  RetrainingStats stats_;
  data::Dataset corpus_;
  bool corpus_initialized_ = false;
  /// Drift-reference inputs of the currently serving model (for
  /// on_rolled_back) and of the model before the last promotion.
  tensor::Matrix incumbent_reference_;
  tensor::Matrix prior_reference_;
  std::shared_ptr<uq::UqModel> prior_model_;
  /// Incumbent's rolling residual RMSE on the drifted stream, captured at
  /// the retrain request — the bar a candidate must beat.
  double incumbent_rmse_bar_ = 0.0;
  /// Training-attempt bookkeeping for the current request.
  std::size_t attempts_this_request_ = 0;
  std::size_t corpus_target_ = 0;
  double backoff_until_ = -1.0;  ///< process_clock_seconds deadline; <0 none
  std::shared_ptr<uq::UqModel> candidate_;
  /// Shadow-eval accumulators for the current candidate.
  double eval_sq_err_sum_ = 0.0;
  double eval_covered_dims_ = 0.0;
  double eval_dims_ = 0.0;
  std::size_t eval_samples_ = 0;
  /// Guard-window anchor: monitor query count at promotion.
  std::uint64_t promoted_at_queries_ = 0;

  /// Ground-truth tap queue (serving thread pushes, service thread pops).
  std::mutex tap_mutex_;
  std::deque<EvalPair> tap_queue_;
  bool tap_armed_ = false;

  /// Background loop.
  std::thread thread_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;

  /// Metric handles; all null until enable_metrics().
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_attempts_ = nullptr;
  obs::Counter* m_failures_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_promotions_ = nullptr;
  obs::Counter* m_rollbacks_ = nullptr;
  obs::Gauge* m_state_ = nullptr;
  obs::Gauge* m_corpus_size_ = nullptr;
  obs::Gauge* m_eval_rmse_ = nullptr;
  obs::Gauge* m_eval_coverage_ = nullptr;
  obs::Histogram* m_train_seconds_ = nullptr;
};

}  // namespace le::retrain
