/// @file
/// The `le-net-v1` wire format: CRC-framed, versioned, fail-closed.
///
/// The sharded serving service is the repo's first process boundary, and a
/// process boundary is where silent corruption becomes possible: a torn
/// write on a socket, a version-skewed worker parsing a router's frame, a
/// flipped bit in transit.  This header applies the `le-ckpt-v1` framing
/// discipline (DESIGN.md section 9) to the network: every message travels
/// as one frame of
///
///   magic (u32) | version (u16) | type (u16) | payload_len (u32) |
///   payload_crc32 (u32) | payload bytes
///
/// with all integers little-endian, serialized byte-wise (no struct
/// punning, so the format is identical on any host).  A reader validates
/// magic, version, a bounded length and the payload CRC before a single
/// payload byte is interpreted; anything unexpected throws — an old worker
/// facing a new router fails closed with VersionSkewError instead of
/// misparsing (the DESIGN.md section 15 contract).  WireWriter/WireReader
/// provide the bounds-checked primitive encoding the payloads are built
/// from; doubles travel as IEEE-754 bit patterns, so values (including
/// NaN deadline sentinels) round-trip bit-exactly.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace le::net {

/// "LEN1" as little-endian bytes 'L','E','N','1' — first bytes on the
/// wire, so a stray peer speaking anything else is rejected immediately.
inline constexpr std::uint32_t kWireMagic = 0x314E454CU;
/// Bumped on ANY incompatible change to framing or payload encodings.
/// History:
///   1  initial shard protocol (kHello..kError)
///   2  observability plane: kQuery carries a trailing TraceContext
///      (u64 trace_id | u64 parent span_id), kAnswer carries a trailing
///      telemetry section (u8 has_telemetry | telemetry payload), and the
///      kTelemetry/kTelemetryReply pull pair exists.  Version skew in
///      EITHER direction fails closed with VersionSkewError — an old
///      reader must never interpret the new trailing fields as garbage,
///      and a new reader must never invent zeros for fields an old writer
///      did not send.
inline constexpr std::uint16_t kWireVersion = 2;
/// Upper bound on one frame's payload: rejects absurd lengths (a corrupt
/// header must not make the receiver try to allocate gigabytes).
inline constexpr std::size_t kMaxPayloadBytes = std::size_t{1} << 26;
/// Bytes of the fixed frame header preceding the payload.
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// Malformed wire data: bad magic, bad framing, CRC mismatch, truncated or
/// oversized payload, or a payload decode that ran past its end.  Fail
/// closed: a frame that throws must be treated as a dead peer, never
/// retried against the same bytes.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The peer speaks a different `le-net` version.  Deliberately distinct
/// from WireError so operators can tell "rolling upgrade mixed versions"
/// (redeploy the laggard) from "corruption" (investigate the transport).
class VersionSkewError : public WireError {
 public:
  using WireError::WireError;
};

/// Frame types of the shard protocol (router <-> worker).
enum class MsgType : std::uint16_t {
  kHello = 1,       ///< worker -> router at startup: recovery flag + meter
  kQuery = 2,       ///< router -> worker: input batch + deadline budgets
  kAnswer = 3,      ///< worker -> router: per-row answers
  kSyncPull = 4,    ///< router -> worker: request replica parameters
  kParams = 5,      ///< worker -> router: flat parameter vector
  kSyncPush = 6,    ///< router -> worker: merged parameters to adopt
  kAck = 7,         ///< generic success acknowledgement
  kStats = 8,       ///< router -> worker: request meter snapshot
  kStatsReply = 9,  ///< worker -> router: EffectiveSpeedupMeter snapshot
  kCheckpoint = 10, ///< router -> worker: persist state via le::ckpt now
  kShutdown = 11,   ///< router -> worker: finish up and exit cleanly
  kError = 12,      ///< worker -> router: request failed; payload = reason
  kTelemetry = 13,      ///< router -> worker: push your telemetry now (v2)
  kTelemetryReply = 14, ///< worker -> router: TelemetryFrame payload (v2)
};

/// One decoded frame: its type and the CRC-verified payload bytes.
struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

/// Serializes a complete frame (header + payload) ready to write to a
/// transport.  Throws WireError when `payload` exceeds kMaxPayloadBytes.
[[nodiscard]] std::string encode_frame(MsgType type, std::string_view payload);

/// Parsed and validated fixed header of an incoming frame.
struct FrameHeader {
  MsgType type = MsgType::kError;
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

/// Validates the 16 header bytes: magic (WireError), version
/// (VersionSkewError — fail closed on skew, both older and newer), and a
/// bounded payload length.  The payload itself is validated separately by
/// check_payload once its bytes have arrived.
[[nodiscard]] FrameHeader decode_frame_header(
    std::span<const std::uint8_t, kFrameHeaderBytes> bytes);

/// Verifies `payload` against the header's length and CRC32; throws
/// WireError on mismatch.
void check_payload(const FrameHeader& header, std::string_view payload);

/// Bounds-unchecked-free little-endian payload builder.  All multi-byte
/// values are emitted byte-wise so the encoding is host-independent.
class WireWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  /// IEEE-754 bit pattern; NaNs round-trip (used as "no deadline").
  void put_f64(double v);
  /// Raw bytes, no length prefix (caller frames them).
  void put_bytes(std::string_view bytes);
  /// u32 element count followed by the doubles.
  void put_f64_vec(std::span<const double> values);

  [[nodiscard]] const std::string& bytes() const noexcept { return out_; }
  [[nodiscard]] std::string take() noexcept { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian payload parser: every read validates the
/// remaining length and throws WireError on overrun, so a truncated or
/// adversarial payload can never read out of bounds.
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string_view bytes(std::size_t n);
  [[nodiscard]] std::vector<double> f64_vec();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  /// Throws WireError unless the payload was consumed exactly — trailing
  /// garbage means the sender and receiver disagree on the encoding.
  void expect_end() const;

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace le::net
