/// @file
/// Deterministic shard routing by quantized-input key.
///
/// The sharded service partitions the serving state — each worker owns one
/// shard of the learned-lookup key space plus a surrogate replica — so the
/// router must send every query whose quantized key matches to the SAME
/// worker, or the per-shard caches never see their repeats.  ShardRouter
/// reuses the exact quantization the cache itself keys by
/// (serve::LookupCache::quantize at a shared resolution) and hashes the
/// bin vector with a splitmix64-avalanched combine, so:
///
///  - two inputs that agree to within `resolution` in every component
///    (same bin) always land on the same shard — cache affinity holds;
///  - inputs in adjacent bins may land anywhere — a key sitting exactly on
///    a bin boundary is rounded half-away-from-zero by the quantizer, and
///    the tests pin that the router's bin assignment matches the cache's
///    own, boundary cases included;
///  - the map is a pure function of (input, resolution, shard count):
///    replaying a schedule yields the identical routing, and router and
///    workers never need to exchange routing state.
///
/// Non-finite components are routed deterministically too (NaN pins to a
/// dedicated bin; infinities saturate like the cache's quantizer), so a
/// garbage query cannot crash routing — the owning worker's gate rejects
/// it like any other uncacheable input.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "le/tensor/matrix.hpp"

namespace le::net {

class ShardRouter {
 public:
  /// `shards` >= 1; `resolution` is the shared quantization step (pick the
  /// same value the per-worker lookup caches use).
  ShardRouter(std::size_t shards, double resolution);

  /// The shard owning `input`'s quantized key.
  [[nodiscard]] std::size_t shard_for(std::span<const double> input) const;

  /// Splits the rows of `inputs` by owning shard: result[s] lists the row
  /// indices routed to shard s, each row appearing exactly once, in row
  /// order within its shard.
  [[nodiscard]] std::vector<std::vector<std::size_t>> partition(
      const tensor::Matrix& inputs) const;

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] double resolution() const noexcept { return resolution_; }

 private:
  std::size_t shards_;
  double resolution_;
};

}  // namespace le::net
