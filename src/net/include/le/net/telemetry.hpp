/// @file
/// Telemetry frames: how a worker's observability state crosses the wire.
///
/// The observability plane needs worker state at the router — metrics
/// snapshots for fleet-wide gauges, Section III-D meter snapshots for
/// per-shard S_eff, and completed trace spans so one merged Chrome trace
/// shows a request descending from the router into a worker and back.  A
/// TelemetryFrame bundles all three plus the worker's identity (pid,
/// process name) into one `le-net` v2 payload.
///
/// Delivery respects the shard protocol's strict request/response shape —
/// a worker never sends an unsolicited frame (that would desync the
/// router's exchange bookkeeping).  Instead telemetry travels two ways:
///   1. piggybacked on every Nth kAnswer (ShardLoopOptions::telemetry_every)
///      — the steady-state path, amortized to ~zero extra round trips;
///   2. pulled explicitly with kTelemetry -> kTelemetryReply — the
///      on-demand path (ShardedService::poll_telemetry) for dashboards and
///      tests that cannot wait for the cadence.
/// Spans ship via TraceLog::drain(), so each span is delivered exactly
/// once; metrics and meter snapshots are absolute (last write wins at the
/// router).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "le/net/wire.hpp"
#include "le/obs/metrics.hpp"
#include "le/obs/speedup_meter.hpp"
#include "le/obs/timer.hpp"

namespace le::net {

/// One worker's observability state at a point in time.
struct TelemetryFrame {
  std::uint32_t pid = 0;
  std::string process_name;
  obs::EffectiveSpeedupMeter::Snapshot meter;
  obs::MetricsSnapshot metrics;
  std::vector<obs::SpanRecord> spans;  ///< drained: delivered exactly once
};

/// Meter-snapshot field layout shared by kHello, kStatsReply, checkpoints
/// and telemetry frames (3 x u64 counts, 4 x f64 seconds).
void put_meter_snapshot(WireWriter& w,
                        const obs::EffectiveSpeedupMeter::Snapshot& s);
[[nodiscard]] obs::EffectiveSpeedupMeter::Snapshot read_meter_snapshot(
    WireReader& r);

/// Serializes / parses a TelemetryFrame payload.  decode_telemetry
/// validates exhaustively (WireError on any overrun or trailing bytes).
[[nodiscard]] std::string encode_telemetry(const TelemetryFrame& frame);
[[nodiscard]] TelemetryFrame decode_telemetry(std::string_view payload);

/// Snapshots THIS process's observability state into a frame: pid, process
/// name, `meter`, the global MetricsRegistry, and the global TraceLog
/// (drained).  What a worker calls to build its push.
[[nodiscard]] TelemetryFrame collect_local_telemetry(
    obs::EffectiveSpeedupMeter& meter);

}  // namespace le::net
