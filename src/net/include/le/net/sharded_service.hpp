/// @file
/// The sharded serving service: N worker processes, each owning one shard
/// of the quantized-key space plus a surrogate replica, behind one router.
///
/// This is ROADMAP item 1 and the "AI-coupled HPC Workflows" motif
/// (PAPERS.md, arXiv:2208.11745) made concrete: the learning system serves
/// across workers, replicas are synchronized with the Section III-A
/// patterns (Allreduce / Rotation — the two the paper reports converging
/// fastest), and every worker keeps its own Section III-D accounting that
/// the router merges into fleet-wide S_eff.  The process boundary is real:
/// workers are fork()ed children talking `le-net-v1` frames over AF_UNIX
/// socketpairs, they die for real (SIGKILL chaos in bench_sharded E18),
/// and they recover their meter counters and replica parameters from
/// le::ckpt checkpoints when the router respawns them.
///
/// Failure contract: a dead or wedged worker NEVER hangs the router.  The
/// rows routed to it come back as shed answers with the typed
/// serve::ShedReason::kWorkerDown — being refused is not a model failure —
/// and, when restarts are enabled, the shard is respawned (recovering from
/// its newest valid checkpoint) before the next batch.
///
/// Deadline propagation across the boundary: the router serializes each
/// row's REMAINING budget at send time; the worker re-anchors it on its
/// own monotonic clock at receipt.  Time spent in flight is budget spent —
/// see serve::ReplayClock for the driver-side half of this discipline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "le/net/shard_router.hpp"
#include "le/net/telemetry.hpp"
#include "le/net/transport.hpp"
#include "le/obs/flight_recorder.hpp"
#include "le/obs/speedup_meter.hpp"
#include "le/runtime/sync_engine.hpp"
#include "le/serve/overload.hpp"
#include "le/tensor/matrix.hpp"

namespace le::net {

/// How a shard worker answered one row.  Mirrors core::AnswerSource
/// without depending on le::core (the net layer sits below it); backends
/// built over a SurrogateDispatcher map one onto the other.
enum class NetAnswerSource : std::uint8_t {
  kSurrogate = 0,
  kSimulation = 1,
  kShed = 2,
};

/// One row's answer as it travels back over the wire.
struct NetAnswer {
  std::vector<double> values;
  double uncertainty = 0.0;
  double seconds = 0.0;  ///< worker-side wall time for this row
  NetAnswerSource source = NetAnswerSource::kSurrogate;
  serve::ShedReason shed_reason = serve::ShedReason::kNone;

  [[nodiscard]] bool shed() const noexcept {
    return source == NetAnswerSource::kShed;
  }
};

/// What one shard worker actually runs: the serving stack of its shard.
/// Implementations wrap whatever answers queries (in this repo typically a
/// core::SurrogateDispatcher with its lookup cache, gate and meter) and
/// expose the replica parameters the sync patterns exchange.  A backend
/// lives entirely inside one worker process (or one test thread) — no
/// internal thread-safety is required beyond what the backend itself
/// serves with.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Answers one routed batch.  `deadlines` is empty or one per row,
  /// already re-anchored to this process's clock; expired rows must come
  /// back shed (ShedReason::kDeadline), never silently dropped.
  [[nodiscard]] virtual std::vector<NetAnswer> query_batch(
      const tensor::Matrix& inputs,
      std::span<const serve::Deadline> deadlines) = 0;

  /// This shard's live Section III-D meter.  The worker loop snapshots it
  /// for kStats replies and checkpoints, and restores it after a recovery.
  [[nodiscard]] virtual obs::EffectiveSpeedupMeter& meter() = 0;

  /// Flat replica parameters, in the same order import_params expects —
  /// the vector the Section III-A merges operate on.
  [[nodiscard]] virtual std::vector<double> export_params() = 0;

  /// Adopts merged parameters pushed by the router.
  virtual void import_params(std::span<const double> params) = 0;
};

/// Worker-loop knobs beyond the channel and backend.
struct ShardLoopOptions {
  /// Recovery/persistence file (see serve_shard_loop doc); empty disables.
  std::string checkpoint_path;
  /// Flight-recorder dump file.  Non-empty arms obs::FlightRecorder::global()
  /// at this path, installs the fatal-signal dump handlers, and dumps on
  /// every telemetry push and at shutdown — so after ANY death (including
  /// SIGKILL, which no handler can see) the router finds a dump no staler
  /// than the last cadence point.
  std::string flight_path;
  /// Piggyback a TelemetryFrame on every Nth kAnswer (0 = never; telemetry
  /// then flows only through explicit kTelemetry pulls).
  std::size_t telemetry_every = 16;
};

/// Runs one worker's half of the shard protocol over `channel` until a
/// kShutdown frame or peer EOF (the router died — exit, never linger).
///
/// When `options.checkpoint_path` is non-empty the worker first attempts
/// recovery: a readable, CRC-valid `le-ckpt-v1` file restores the replica
/// parameters and meter counters (newest-valid-wins is trivial here — one
/// file, atomically replaced), and the kHello frame reports `recovered =
/// true` with the restored snapshot, so the router can attribute pre-crash
/// work.  A missing or corrupt file starts fresh — fail open on recovery,
/// fail closed on frames.
///
/// Observability (wire v2): each kQuery's trailing TraceContext is adopted
/// for the duration of the request, so worker spans stitch under the
/// router's span in a merged trace; kAnswer piggybacks telemetry on the
/// configured cadence; kTelemetry answers with a kTelemetryReply.
///
/// Exposed publicly (rather than buried in the service) so tests can run
/// the full protocol in-process on a thread — which is also how the TSan
/// tier sees it.
void serve_shard_loop(Channel& channel, ShardBackend& backend,
                      const ShardLoopOptions& options);

/// Back-compat convenience: options with only a checkpoint path.
void serve_shard_loop(Channel& channel, ShardBackend& backend,
                      const std::string& checkpoint_path);

using BackendFactory =
    std::function<std::unique_ptr<ShardBackend>(std::size_t shard)>;

struct ShardedServiceConfig {
  /// Worker process count == shard count.
  std::size_t shards = 2;
  /// Quantization step of the routing key; match the per-worker lookup
  /// caches so repeats hit the shard that cached them.
  double key_resolution = 1e-9;
  /// Directory for per-shard checkpoint files ("<dir>/shard<k>.ckpt");
  /// empty disables checkpointing AND recovery.
  std::string checkpoint_dir;
  /// Respawn a dead worker (recovering from its checkpoint) instead of
  /// leaving the shard black-holed.
  bool restart_dead_workers = true;
  /// Per-shard restart budget; beyond it the shard stays down and its
  /// rows shed (a crash-looping worker must not burn the host forever).
  std::size_t max_restarts_per_shard = 4;
  /// recv timeout on every router<->worker exchange: a wedged worker
  /// becomes a typed failure, never a hung router.  0 = block forever.
  double recv_timeout_seconds = 30.0;
  /// Directory for per-shard flight-recorder dumps ("<dir>/shard<k>.flight");
  /// empty disables the workers' flight recorders AND router harvesting.
  std::string flight_dir;
  /// Telemetry piggyback cadence passed to every worker
  /// (ShardLoopOptions::telemetry_every).
  std::size_t telemetry_every = 16;
};

/// Aggregate router-side accounting (monotonic over the service lifetime).
struct ShardedServiceStats {
  std::uint64_t batches = 0;        ///< query_batch calls
  std::uint64_t rows = 0;           ///< rows routed
  std::uint64_t rows_shed_worker_down = 0;  ///< rows refused, typed kWorkerDown
  std::uint64_t worker_deaths = 0;  ///< transport/wire failures observed
  std::uint64_t restarts = 0;       ///< respawns attempted
  std::uint64_t recovered_restarts = 0;  ///< respawns that restored a ckpt
  std::uint64_t telemetry_frames = 0;    ///< TelemetryFrames absorbed
  std::uint64_t flight_dumps_recovered = 0;  ///< valid dumps harvested
  std::uint64_t flight_dumps_corrupt = 0;    ///< dumps that failed validation
};

/// The router: owns the worker fleet, routes batches by quantized key,
/// merges per-shard meters, drives replica sync and checkpoints, and
/// converts worker death into typed sheds + respawns.
///
/// Thread-safety: all public methods may be called concurrently; each
/// worker exchange is serialized by a per-shard mutex (locked in shard
/// order when a call spans several shards), so two callers can talk to
/// two different shards in parallel but never interleave frames on one
/// channel.
class ShardedService {
 public:
  /// `factory` runs in the CHILD process right after fork (and in the
  /// respawned child after a death), so per-worker state never crosses
  /// the process boundary by accident.
  ShardedService(ShardedServiceConfig config, BackendFactory factory);
  ~ShardedService();
  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Forks the workers and waits for every kHello.  Throws on any spawn
  /// failure (a service that starts degraded is a misconfiguration, not a
  /// runtime fault).
  void start();

  /// Shuts the fleet down: kShutdown to every live worker, short grace,
  /// then SIGKILL stragglers; reaps every child.  Idempotent; also run by
  /// the destructor.
  void stop();

  /// Routes each row to its shard, fans the per-shard sub-batches out
  /// (send to all involved shards first, then collect — shards overlap
  /// their work even under a single caller), and reassembles answers in
  /// row order.  `deadlines` is empty or one per row; remaining budget is
  /// what crosses the wire.  Rows owned by a dead/failed shard come back
  /// shed with ShedReason::kWorkerDown after triggering a respawn.
  [[nodiscard]] std::vector<NetAnswer> query_batch(
      const tensor::Matrix& inputs,
      std::span<const serve::Deadline> deadlines = {});

  /// This shard's live meter snapshot (fetched from the worker; the last
  /// known snapshot if the shard is down — counters survive the death of
  /// their worker at the router, and the worker itself recovers them from
  /// its checkpoint on respawn).
  [[nodiscard]] obs::EffectiveSpeedupMeter::Snapshot shard_meter(
      std::size_t shard);

  /// Component-wise sum of all shard meters (Snapshot::merge): the
  /// fleet-wide Section III-D accounting.
  [[nodiscard]] obs::EffectiveSpeedupMeter::Snapshot merged_meter();

  /// One replica-synchronization round over the live shards using a
  /// Section III-A pattern: kAllreduce averages all replicas, kRotation
  /// broadcasts rotating block ownership (runtime::rotation_merge, round
  /// counter kept here).  kLocking/kAsynchronous do not map onto
  /// cross-process replica merges and throw std::invalid_argument.
  void sync_replicas(runtime::SyncModel pattern);

  /// Tells every live worker to persist its state (params + meter) to its
  /// shard checkpoint now.  No-op without a checkpoint_dir.
  void checkpoint_all();

  /// One shard's current replica parameters (test/inspection hook).
  [[nodiscard]] std::vector<double> pull_params(std::size_t shard);
  /// Replica repair: push parameters at one shard only.
  void push_params(std::size_t shard, std::span<const double> params);

  /// Chaos hook: SIGKILL the shard's worker, without telling the router —
  /// the next exchange discovers the death exactly as a real crash would.
  void kill_shard(std::size_t shard);

  /// Explicitly pulls a TelemetryFrame from every live shard (kTelemetry
  /// round trip); returns how many shards replied.  The steady-state path
  /// is the kAnswer piggyback — this is the on-demand refresh.
  std::size_t poll_telemetry();

  /// Last TelemetryFrame absorbed from this shard (piggyback or pull).
  /// The frame's `spans` member is empty here — spans are moved into the
  /// harvested-span store on absorption, not retained per frame.
  [[nodiscard]] TelemetryFrame shard_telemetry(std::size_t shard) const;

  /// Spans harvested from this shard's telemetry so far (bounded: oldest
  /// dropped beyond an internal cap).  Merge with the router's own
  /// TraceLog via obs::merge_process_spans for the fleet-wide trace.
  [[nodiscard]] std::vector<obs::SpanRecord> harvested_spans(
      std::size_t shard) const;

  /// Flight-recorder events harvested from this shard's dump files (each
  /// death triggers a harvest; stop() harvests the survivors).
  [[nodiscard]] std::vector<obs::FlightEvent> flight_events(
      std::size_t shard) const;

  /// Fleet-wide metrics: every shard's last telemetry snapshot merged
  /// (obs::MetricsSnapshot::merge) with this process's global registry
  /// snapshot — counters add, gauges last-write-wins, histograms combine
  /// component-wise.  The router's snapshot merges LAST, so the gauges it
  /// owns (the live net.shard<k>.* dashboard) are authoritative.
  [[nodiscard]] obs::MetricsSnapshot fleet_metrics() const;

  /// pid -> process name for every process seen (the router itself plus
  /// every worker that delivered telemetry) — the label map
  /// obs::write_chrome_trace wants.
  [[nodiscard]] std::map<std::uint32_t, std::string> process_names() const;

  [[nodiscard]] bool shard_alive(std::size_t shard) const;
  [[nodiscard]] ShardedServiceStats stats() const;
  [[nodiscard]] const ShardRouter& router() const noexcept { return router_; }
  [[nodiscard]] const ShardedServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Worker;

  [[nodiscard]] std::string checkpoint_path(std::size_t shard) const;
  [[nodiscard]] std::string flight_path(std::size_t shard) const;
  /// Folds a received telemetry payload into the worker's state and the
  /// router's per-shard gauges (worker mutex already held).
  void absorb_telemetry_locked(std::size_t shard, std::string_view payload);
  /// Reads and clears the shard's flight-recorder dump file, appending its
  /// events to the worker's store (worker mutex already held).
  void harvest_flight_locked(std::size_t shard);
  /// Forks + handshakes shard `shard` (mutex already held).
  void spawn_locked(std::size_t shard);
  /// Marks the shard dead, reaps the child, and respawns within budget
  /// (mutex already held).  Returns true when the shard is live again.
  bool handle_death_locked(std::size_t shard);
  /// One request/response exchange (mutex already held).
  [[nodiscard]] Frame exchange_locked(std::size_t shard, MsgType type,
                                      const std::string& payload);

  ShardedServiceConfig config_;
  BackendFactory factory_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool started_ = false;
  std::uint64_t sync_round_ = 0;
  mutable std::mutex stats_mutex_;
  ShardedServiceStats stats_;
};

}  // namespace le::net
