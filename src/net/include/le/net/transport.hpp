/// @file
/// Byte transport under the `le-net-v1` frames: a blocking, full-duplex
/// Channel over a connected socket pair.
///
/// The sharded service runs its workers as forked child processes on one
/// host (the Section III-A deployment unit before multi-host), so the
/// transport of choice is an AF_UNIX stream socketpair: kernel-buffered,
/// ordered, reliable, and it delivers EOF the instant the peer dies — the
/// property the router's no-hang guarantee is built on.  Channel hides the
/// POSIX details: full write loops (partial writes, EINTR), full read
/// loops, EPIPE surfaced as TransportError instead of SIGPIPE, and an
/// optional receive timeout so a wedged (not dead) worker also turns into
/// a typed error instead of a hung router.  Frames are validated on
/// receipt (magic, version, length bound, CRC) before they are returned.
#pragma once

#include <string_view>
#include <utility>

#include "le/net/wire.hpp"

namespace le::net {

/// The peer is gone or unreachable: EOF on read, EPIPE/ECONNRESET on
/// write, or a receive timeout.  Distinct from WireError (the peer sent
/// bytes, but they were wrong); both are treated as a dead peer by the
/// router, but operators triage them differently.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One end of a connected stream socket.  Movable, not copyable; closes
/// its descriptor on destruction.  Thread-compatible: concurrent use of
/// one Channel must be externally serialized (the ShardedService holds a
/// per-worker mutex across each request/response exchange).
class Channel {
 public:
  Channel() = default;
  /// Adopts ownership of `fd` (must be a connected stream socket).
  explicit Channel(int fd) noexcept : fd_(fd) {}
  ~Channel();
  Channel(Channel&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Channel& operator=(Channel&& other) noexcept;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Frames `payload` as `type` and writes the whole frame.  Throws
  /// TransportError when the peer is gone (EPIPE is an error, never a
  /// signal) and WireError when the payload is oversized.
  void send_frame(MsgType type, std::string_view payload);

  /// Reads and validates one complete frame (header checks, then CRC).
  /// Throws TransportError on EOF/timeout and WireError/VersionSkewError
  /// on malformed bytes — both mean "stop talking to this peer".
  [[nodiscard]] Frame recv_frame();

  /// Bounds every subsequent recv_frame() read: a peer that sends nothing
  /// for `seconds` raises TransportError instead of blocking forever.
  /// 0 restores indefinite blocking.
  void set_recv_timeout(double seconds);

  /// Closes the descriptor now (idempotent).  A worker blocked in
  /// recv_frame() on the peer end observes EOF.
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// A connected AF_UNIX SOCK_STREAM pair: `first` is conventionally kept by
/// the parent (router), `second` given to the child (worker).  Throws
/// TransportError when the kernel refuses.
[[nodiscard]] std::pair<Channel, Channel> make_channel_pair();

}  // namespace le::net
