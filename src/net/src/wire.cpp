#include "le/net/wire.hpp"

#include <bit>
#include <cstring>

#include "le/ckpt/container.hpp"

namespace le::net {

namespace {

void append_le(std::string& out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFU));
  }
}

std::uint64_t read_le(std::span<const std::uint8_t> bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::string encode_frame(MsgType type, std::string_view payload) {
  if (payload.size() > kMaxPayloadBytes) {
    throw WireError("le-net: payload exceeds kMaxPayloadBytes");
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  append_le(out, kWireMagic, 4);
  append_le(out, kWireVersion, 2);
  append_le(out, static_cast<std::uint16_t>(type), 2);
  append_le(out, static_cast<std::uint32_t>(payload.size()), 4);
  append_le(out, ckpt::crc32(payload), 4);
  out.append(payload);
  return out;
}

FrameHeader decode_frame_header(
    std::span<const std::uint8_t, kFrameHeaderBytes> bytes) {
  const auto magic = static_cast<std::uint32_t>(read_le(bytes.subspan(0, 4)));
  if (magic != kWireMagic) {
    throw WireError("le-net: bad frame magic (not an le-net peer)");
  }
  const auto version = static_cast<std::uint16_t>(read_le(bytes.subspan(4, 2)));
  if (version != kWireVersion) {
    throw VersionSkewError(
        "le-net: peer speaks wire version " + std::to_string(version) +
        ", this build speaks " + std::to_string(kWireVersion) +
        " (failing closed; redeploy the laggard)");
  }
  FrameHeader header;
  header.type =
      static_cast<MsgType>(static_cast<std::uint16_t>(read_le(bytes.subspan(6, 2))));
  header.payload_len = static_cast<std::uint32_t>(read_le(bytes.subspan(8, 4)));
  header.payload_crc = static_cast<std::uint32_t>(read_le(bytes.subspan(12, 4)));
  if (header.payload_len > kMaxPayloadBytes) {
    throw WireError("le-net: frame payload length exceeds kMaxPayloadBytes");
  }
  return header;
}

void check_payload(const FrameHeader& header, std::string_view payload) {
  if (payload.size() != header.payload_len) {
    throw WireError("le-net: payload length mismatch");
  }
  if (ckpt::crc32(payload) != header.payload_crc) {
    throw WireError("le-net: payload CRC mismatch");
  }
}

void WireWriter::put_u8(std::uint8_t v) { append_le(out_, v, 1); }
void WireWriter::put_u16(std::uint16_t v) { append_le(out_, v, 2); }
void WireWriter::put_u32(std::uint32_t v) { append_le(out_, v, 4); }
void WireWriter::put_u64(std::uint64_t v) { append_le(out_, v, 8); }
void WireWriter::put_f64(double v) {
  append_le(out_, std::bit_cast<std::uint64_t>(v), 8);
}
void WireWriter::put_bytes(std::string_view bytes) { out_.append(bytes); }
void WireWriter::put_f64_vec(std::span<const double> values) {
  put_u32(static_cast<std::uint32_t>(values.size()));
  for (const double v : values) put_f64(v);
}

namespace {

std::uint64_t reader_take(std::string_view bytes, std::size_t& pos,
                          std::size_t n) {
  if (bytes.size() - pos < n) {
    throw WireError("le-net: payload truncated (decode past end)");
  }
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(bytes[pos + i]))
         << (8 * i);
  }
  pos += n;
  return v;
}

}  // namespace

std::uint8_t WireReader::u8() {
  return static_cast<std::uint8_t>(reader_take(bytes_, pos_, 1));
}
std::uint16_t WireReader::u16() {
  return static_cast<std::uint16_t>(reader_take(bytes_, pos_, 2));
}
std::uint32_t WireReader::u32() {
  return static_cast<std::uint32_t>(reader_take(bytes_, pos_, 4));
}
std::uint64_t WireReader::u64() { return reader_take(bytes_, pos_, 8); }
double WireReader::f64() {
  return std::bit_cast<double>(reader_take(bytes_, pos_, 8));
}

std::string_view WireReader::bytes(std::size_t n) {
  if (remaining() < n) {
    throw WireError("le-net: payload truncated (byte run past end)");
  }
  const std::string_view view = bytes_.substr(pos_, n);
  pos_ += n;
  return view;
}

std::vector<double> WireReader::f64_vec() {
  const std::uint32_t n = u32();
  if (remaining() < std::size_t{n} * 8) {
    throw WireError("le-net: f64 vector longer than remaining payload");
  }
  std::vector<double> values(n);
  for (auto& v : values) v = f64();
  return values;
}

void WireReader::expect_end() const {
  if (pos_ != bytes_.size()) {
    throw WireError("le-net: trailing bytes after payload decode");
  }
}

}  // namespace le::net
