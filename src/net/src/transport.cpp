#include "le/net/transport.hpp"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

namespace le::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw TransportError(std::string("le-net transport: ") + what + ": " +
                       std::strerror(errno));
}

}  // namespace

Channel::~Channel() { close(); }

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Channel::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Channel::send_frame(MsgType type, std::string_view payload) {
  if (fd_ < 0) throw TransportError("le-net transport: send on closed channel");
  const std::string frame = encode_frame(type, payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the
    // router with SIGPIPE.
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send failed (peer dead?)");
    }
    sent += static_cast<std::size_t>(n);
  }
}

Frame Channel::recv_frame() {
  if (fd_ < 0) throw TransportError("le-net transport: recv on closed channel");
  const auto read_exact = [&](void* buf, std::size_t len) {
    std::size_t got = 0;
    auto* bytes = static_cast<std::uint8_t*>(buf);
    while (got < len) {
      const ssize_t n = ::recv(fd_, bytes + got, len - got, 0);
      if (n == 0) {
        throw TransportError("le-net transport: peer closed the connection");
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          throw TransportError(
              "le-net transport: receive timed out (peer wedged?)");
        }
        throw_errno("recv failed");
      }
      got += static_cast<std::size_t>(n);
    }
  };

  std::uint8_t header_bytes[kFrameHeaderBytes];
  read_exact(header_bytes, sizeof header_bytes);
  const FrameHeader header = decode_frame_header(
      std::span<const std::uint8_t, kFrameHeaderBytes>(header_bytes));

  Frame frame;
  frame.type = header.type;
  frame.payload.resize(header.payload_len);
  if (header.payload_len > 0) {
    read_exact(frame.payload.data(), frame.payload.size());
  }
  check_payload(header, frame.payload);
  return frame;
}

void Channel::set_recv_timeout(double seconds) {
  if (fd_ < 0) return;
  if (!(seconds >= 0.0) || !std::isfinite(seconds)) seconds = 0.0;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO) failed");
  }
}

std::pair<Channel, Channel> make_channel_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw_errno("socketpair failed");
  }
  return {Channel(fds[0]), Channel(fds[1])};
}

}  // namespace le::net
