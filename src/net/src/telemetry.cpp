#include "le/net/telemetry.hpp"

#include <unistd.h>

namespace le::net {

namespace {

void put_string(WireWriter& w, std::string_view s) {
  w.put_u32(static_cast<std::uint32_t>(s.size()));
  w.put_bytes(s);
}

std::string read_string(WireReader& r) {
  const std::uint32_t n = r.u32();
  return std::string(r.bytes(n));
}

}  // namespace

void put_meter_snapshot(WireWriter& w,
                        const obs::EffectiveSpeedupMeter::Snapshot& s) {
  w.put_u64(s.n_lookup);
  w.put_u64(s.n_train);
  w.put_u64(s.seq_samples);
  w.put_f64(s.lookup_seconds);
  w.put_f64(s.train_seconds);
  w.put_f64(s.learn_seconds);
  w.put_f64(s.seq_seconds);
}

obs::EffectiveSpeedupMeter::Snapshot read_meter_snapshot(WireReader& r) {
  obs::EffectiveSpeedupMeter::Snapshot s;
  s.n_lookup = static_cast<std::size_t>(r.u64());
  s.n_train = static_cast<std::size_t>(r.u64());
  s.seq_samples = static_cast<std::size_t>(r.u64());
  s.lookup_seconds = r.f64();
  s.train_seconds = r.f64();
  s.learn_seconds = r.f64();
  s.seq_seconds = r.f64();
  return s;
}

// Telemetry payload layout (all little-endian, strings u32-length-prefixed):
//   u32 pid | string process_name | meter snapshot |
//   u32 n_counters    | per: string name | u64 value
//   u32 n_gauges      | per: string name | f64 value
//   u32 n_histograms  | per: string name | u64 count | f64 sum | f64 mean |
//                       f64 min | f64 max | f64 p50 | f64 p95 | f64 p99 |
//                       u32 n_buckets | n_buckets x u64
//   u32 n_spans       | per: string name | u32 thread | u32 depth |
//                       u32 pid | f64 start_seconds | f64 seconds |
//                       u64 trace_id | u64 span_id | u64 parent_span_id

std::string encode_telemetry(const TelemetryFrame& frame) {
  WireWriter w;
  w.put_u32(frame.pid);
  put_string(w, frame.process_name);
  put_meter_snapshot(w, frame.meter);

  w.put_u32(static_cast<std::uint32_t>(frame.metrics.counters.size()));
  for (const auto& c : frame.metrics.counters) {
    put_string(w, c.name);
    w.put_u64(c.value);
  }
  w.put_u32(static_cast<std::uint32_t>(frame.metrics.gauges.size()));
  for (const auto& g : frame.metrics.gauges) {
    put_string(w, g.name);
    w.put_f64(g.value);
  }
  w.put_u32(static_cast<std::uint32_t>(frame.metrics.histograms.size()));
  for (const auto& h : frame.metrics.histograms) {
    put_string(w, h.name);
    w.put_u64(h.count);
    w.put_f64(h.sum);
    w.put_f64(h.mean);
    w.put_f64(h.min);
    w.put_f64(h.max);
    w.put_f64(h.p50);
    w.put_f64(h.p95);
    w.put_f64(h.p99);
    w.put_u32(static_cast<std::uint32_t>(h.buckets.size()));
    for (const std::uint64_t b : h.buckets) w.put_u64(b);
  }

  w.put_u32(static_cast<std::uint32_t>(frame.spans.size()));
  for (const obs::SpanRecord& s : frame.spans) {
    put_string(w, s.name);
    w.put_u32(s.thread);
    w.put_u32(s.depth);
    w.put_u32(s.pid);
    w.put_f64(s.start_seconds);
    w.put_f64(s.seconds);
    w.put_u64(s.trace_id);
    w.put_u64(s.span_id);
    w.put_u64(s.parent_span_id);
  }
  return w.take();
}

TelemetryFrame decode_telemetry(std::string_view payload) {
  WireReader r(payload);
  TelemetryFrame frame;
  frame.pid = r.u32();
  frame.process_name = read_string(r);
  frame.meter = read_meter_snapshot(r);

  const std::uint32_t n_counters = r.u32();
  frame.metrics.counters.reserve(n_counters);
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    obs::MetricsSnapshot::CounterEntry c;
    c.name = read_string(r);
    c.value = r.u64();
    frame.metrics.counters.push_back(std::move(c));
  }
  const std::uint32_t n_gauges = r.u32();
  frame.metrics.gauges.reserve(n_gauges);
  for (std::uint32_t i = 0; i < n_gauges; ++i) {
    obs::MetricsSnapshot::GaugeEntry g;
    g.name = read_string(r);
    g.value = r.f64();
    frame.metrics.gauges.push_back(std::move(g));
  }
  const std::uint32_t n_histograms = r.u32();
  frame.metrics.histograms.reserve(n_histograms);
  for (std::uint32_t i = 0; i < n_histograms; ++i) {
    obs::MetricsSnapshot::HistogramEntry h;
    h.name = read_string(r);
    h.count = r.u64();
    h.sum = r.f64();
    h.mean = r.f64();
    h.min = r.f64();
    h.max = r.f64();
    h.p50 = r.f64();
    h.p95 = r.f64();
    h.p99 = r.f64();
    const std::uint32_t n_buckets = r.u32();
    if (r.remaining() < std::size_t{n_buckets} * 8) {
      throw WireError("le-net: histogram buckets longer than payload");
    }
    h.buckets.reserve(n_buckets);
    for (std::uint32_t b = 0; b < n_buckets; ++b) h.buckets.push_back(r.u64());
    frame.metrics.histograms.push_back(std::move(h));
  }

  const std::uint32_t n_spans = r.u32();
  frame.spans.reserve(n_spans);
  for (std::uint32_t i = 0; i < n_spans; ++i) {
    obs::SpanRecord s;
    s.name = read_string(r);
    s.thread = r.u32();
    s.depth = r.u32();
    s.pid = r.u32();
    s.start_seconds = r.f64();
    s.seconds = r.f64();
    s.trace_id = r.u64();
    s.span_id = r.u64();
    s.parent_span_id = r.u64();
    frame.spans.push_back(std::move(s));
  }
  r.expect_end();
  return frame;
}

TelemetryFrame collect_local_telemetry(obs::EffectiveSpeedupMeter& meter) {
  TelemetryFrame frame;
  frame.pid = static_cast<std::uint32_t>(::getpid());
  frame.process_name = obs::process_name();
  frame.meter = meter.snapshot();
  frame.metrics = obs::MetricsRegistry::global().snapshot();
  frame.spans = obs::TraceLog::global().drain();
  return frame;
}

}  // namespace le::net
