#include "le/net/shard_router.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "le/serve/lookup_cache.hpp"

namespace le::net {

ShardRouter::ShardRouter(std::size_t shards, double resolution)
    : shards_(shards), resolution_(resolution) {
  if (shards_ == 0) {
    throw std::invalid_argument("ShardRouter: shards must be >= 1");
  }
  if (!(resolution_ > 0.0) || !std::isfinite(resolution_)) {
    throw std::invalid_argument("ShardRouter: resolution must be positive");
  }
}

std::size_t ShardRouter::shard_for(std::span<const double> input) const {
  // Same bins as the per-worker cache, so cache affinity is exact; NaN
  // components (which the cache treats as uncacheable) are pinned to a
  // sentinel bin first so routing stays a total, deterministic function.
  thread_local std::vector<double> sanitized;
  std::span<const double> routed = input;
  bool has_nan = false;
  for (const double v : input) {
    if (std::isnan(v)) {
      has_nan = true;
      break;
    }
  }
  if (has_nan) {
    sanitized.assign(input.begin(), input.end());
    for (double& v : sanitized) {
      if (std::isnan(v)) v = std::numeric_limits<double>::infinity();
    }
    routed = sanitized;
  }
  const serve::LookupCache::Key key =
      serve::LookupCache::quantize(routed, resolution_);
  // splitmix64-style combine over the bin vector (the cache's own hash is
  // private; this one only needs to be stable and well-mixed).
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ key.size();
  for (const std::int64_t bin : key) {
    auto u = static_cast<std::uint64_t>(bin);
    u ^= u >> 30;
    u *= 0xbf58476d1ce4e5b9ULL;
    u ^= u >> 27;
    u *= 0x94d049bb133111ebULL;
    u ^= u >> 31;
    h ^= u + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return static_cast<std::size_t>(h % shards_);
}

std::vector<std::vector<std::size_t>> ShardRouter::partition(
    const tensor::Matrix& inputs) const {
  std::vector<std::vector<std::size_t>> rows_by_shard(shards_);
  for (std::size_t r = 0; r < inputs.rows(); ++r) {
    rows_by_shard[shard_for(inputs.row(r))].push_back(r);
  }
  return rows_by_shard;
}

}  // namespace le::net
