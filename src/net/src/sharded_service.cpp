#include "le/net/sharded_service.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "le/ckpt/container.hpp"
#include "le/obs/timer.hpp"

namespace le::net {

namespace {

using Clock = std::chrono::steady_clock;
using Snapshot = obs::EffectiveSpeedupMeter::Snapshot;

constexpr const char* kCkptParamsSection = "net-shard-params";
constexpr const char* kCkptMeterSection = "net-shard-meter";

/// Bounds on per-shard harvested observability state at the router: spans
/// and flight events keep arriving for the service's lifetime, the stores
/// must not.  Oldest entries are dropped first.
constexpr std::size_t kMaxHarvestedSpans = std::size_t{1} << 16;
constexpr std::size_t kMaxFlightEvents = std::size_t{1} << 16;

/// kQuery payload (wire v2): u32 rows | u32 cols | f64_vec data (row-major)
/// | u8 has_deadlines | rows x f64 remaining-budget seconds (NaN = none) |
/// u64 trace_id | u64 parent span_id (both 0 when tracing is off).
std::string encode_query(const tensor::Matrix& inputs,
                         std::span<const std::size_t> row_ids,
                         std::span<const serve::Deadline> deadlines,
                         Clock::time_point now,
                         const obs::TraceContext& trace) {
  WireWriter w;
  w.put_u32(static_cast<std::uint32_t>(row_ids.size()));
  w.put_u32(static_cast<std::uint32_t>(inputs.cols()));
  std::vector<double> flat;
  flat.reserve(row_ids.size() * inputs.cols());
  for (const std::size_t r : row_ids) {
    const auto row = inputs.row(r);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  w.put_f64_vec(flat);
  const bool has_deadlines = !deadlines.empty();
  w.put_u8(has_deadlines ? 1 : 0);
  if (has_deadlines) {
    for (const std::size_t r : row_ids) {
      // Remaining budget, not an absolute time: the worker's clock is not
      // the router's.  Time already spent (including in flight) is gone.
      double remaining = std::numeric_limits<double>::quiet_NaN();
      if (deadlines[r].has_value()) {
        remaining = std::chrono::duration<double>(*deadlines[r] - now).count();
      }
      w.put_f64(remaining);
    }
  }
  // The router's span identity rides along so the worker's spans can
  // stitch under it in a merged trace.
  w.put_u64(trace.trace_id);
  w.put_u64(trace.span_id);
  return w.take();
}

serve::ShedReason decode_shed_reason(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(serve::ShedReason::kWorkerDown)) {
    throw WireError("le-net: unknown ShedReason value " + std::to_string(raw));
  }
  return static_cast<serve::ShedReason>(raw);
}

NetAnswerSource decode_source(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(NetAnswerSource::kShed)) {
    throw WireError("le-net: unknown NetAnswerSource value " +
                    std::to_string(raw));
  }
  return static_cast<NetAnswerSource>(raw);
}

/// kAnswer payload (wire v2): u32 rows | per row: u8 source |
/// u8 shed_reason | f64 uncertainty | f64 seconds | f64_vec values |
/// u8 has_telemetry | [TelemetryFrame payload to end].
/// `telemetry` is the optional piggyback; nullptr/empty attaches none.
std::string encode_answers(std::span<const NetAnswer> answers,
                           const std::string* telemetry = nullptr) {
  WireWriter w;
  w.put_u32(static_cast<std::uint32_t>(answers.size()));
  for (const NetAnswer& a : answers) {
    w.put_u8(static_cast<std::uint8_t>(a.source));
    w.put_u8(static_cast<std::uint8_t>(a.shed_reason));
    w.put_f64(a.uncertainty);
    w.put_f64(a.seconds);
    w.put_f64_vec(a.values);
  }
  const bool has_telemetry = telemetry != nullptr && !telemetry->empty();
  w.put_u8(has_telemetry ? 1 : 0);
  if (has_telemetry) w.put_bytes(*telemetry);
  return w.take();
}

/// Inverse of encode_answers; a piggybacked telemetry payload (if any) is
/// copied into `*telemetry_out` for the caller to absorb.
std::vector<NetAnswer> decode_answers(std::string_view payload,
                                      std::size_t expected_rows,
                                      std::string* telemetry_out = nullptr) {
  WireReader r(payload);
  const std::uint32_t rows = r.u32();
  if (rows != expected_rows) {
    throw WireError("le-net: kAnswer row count mismatch: sent " +
                    std::to_string(expected_rows) + ", got " +
                    std::to_string(rows));
  }
  std::vector<NetAnswer> answers(rows);
  for (NetAnswer& a : answers) {
    a.source = decode_source(r.u8());
    a.shed_reason = decode_shed_reason(r.u8());
    a.uncertainty = r.f64();
    a.seconds = r.f64();
    a.values = r.f64_vec();
  }
  const std::uint8_t has_telemetry = r.u8();
  if (has_telemetry > 1) {
    throw WireError("le-net: bad kAnswer telemetry flag " +
                    std::to_string(has_telemetry));
  }
  if (has_telemetry == 1) {
    const std::string_view blob = r.bytes(r.remaining());
    if (telemetry_out != nullptr) telemetry_out->assign(blob);
  }
  r.expect_end();
  return answers;
}

NetAnswer make_worker_down_answer() {
  NetAnswer a;
  a.source = NetAnswerSource::kShed;
  a.shed_reason = serve::ShedReason::kWorkerDown;
  return a;
}

void write_worker_checkpoint(const std::string& path, ShardBackend& backend) {
  WireWriter params;
  params.put_f64_vec(backend.export_params());
  WireWriter meter;
  put_meter_snapshot(meter, backend.meter().snapshot());
  ckpt::write_checkpoint(
      path, {{kCkptParamsSection, params.take()},
             {kCkptMeterSection, meter.take()}});
}

/// Restores backend state from `path`; returns false (leaving the backend
/// untouched where possible) when the file is absent or corrupt — recovery
/// fails open, unlike frames.
bool try_recover_worker(const std::string& path, ShardBackend& backend) {
  std::vector<ckpt::Section> sections;
  try {
    sections = ckpt::read_checkpoint(path);
  } catch (const ckpt::CheckpointError&) {
    return false;
  }
  const auto find = [&](const char* name) -> const ckpt::Section* {
    for (const auto& s : sections) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  const ckpt::Section* params = find(kCkptParamsSection);
  const ckpt::Section* meter = find(kCkptMeterSection);
  if (params == nullptr || meter == nullptr) return false;
  try {
    WireReader pr(params->payload);
    const std::vector<double> flat = pr.f64_vec();
    pr.expect_end();
    WireReader mr(meter->payload);
    const Snapshot snap = read_meter_snapshot(mr);
    mr.expect_end();
    backend.import_params(flat);
    backend.meter().restore(snap);
  } catch (const WireError&) {
    return false;
  }
  return true;
}

}  // namespace

void serve_shard_loop(Channel& channel, ShardBackend& backend,
                      const ShardLoopOptions& options) {
  bool recovered = false;
  if (!options.checkpoint_path.empty()) {
    recovered = try_recover_worker(options.checkpoint_path, backend);
  }

  obs::FlightRecorder& flight = obs::FlightRecorder::global();
  const bool flight_on = !options.flight_path.empty();
  if (flight_on) {
    flight.configure(options.flight_path);
    obs::install_flight_signal_handlers();
    flight.record("worker_start", recovered ? 1 : 0);
    // Dump immediately: a worker SIGKILLed before its first cadence point
    // still leaves the router a (short) black box to harvest.
    flight.dump();
  }

  {
    WireWriter hello;
    hello.put_u8(recovered ? 1 : 0);
    put_meter_snapshot(hello, backend.meter().snapshot());
    channel.send_frame(MsgType::kHello, hello.bytes());
  }

  std::uint64_t queries = 0;
  for (;;) {
    Frame request;
    try {
      request = channel.recv_frame();
    } catch (const TransportError&) {
      // Router gone: exit, never linger as an orphan — but leave the black
      // box behind first.
      if (flight_on) {
        flight.record("router_gone");
        flight.dump();
      }
      return;
    }

    try {
      switch (request.type) {
        case MsgType::kQuery: {
          WireReader r(request.payload);
          const std::uint32_t rows = r.u32();
          const std::uint32_t cols = r.u32();
          const std::vector<double> flat = r.f64_vec();
          if (flat.size() != static_cast<std::size_t>(rows) * cols) {
            throw WireError("le-net: kQuery data size mismatch");
          }
          tensor::Matrix inputs(rows, cols);
          std::copy(flat.begin(), flat.end(), inputs.data());
          std::vector<serve::Deadline> deadlines;
          if (r.u8() != 0) {
            // Re-anchor the remaining budgets on THIS process's clock.
            const Clock::time_point now = Clock::now();
            deadlines.reserve(rows);
            for (std::uint32_t i = 0; i < rows; ++i) {
              const double remaining = r.f64();
              if (std::isnan(remaining)) {
                deadlines.emplace_back(std::nullopt);
              } else {
                deadlines.emplace_back(
                    now + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(remaining)));
              }
            }
          }
          obs::TraceContext remote;
          remote.trace_id = r.u64();
          remote.span_id = r.u64();
          r.expect_end();
          // Adopt the router's span as this request's remote parent: every
          // span the backend opens below stitches under it in the merged
          // trace.  A zeroed context (router not tracing) adopts nothing.
          const obs::TraceContextScope trace_scope(remote);
          std::vector<NetAnswer> answers;
          {
            const obs::TraceSpan span("net.worker_query");
            answers = backend.query_batch(inputs, deadlines);
          }
          if (answers.size() != rows) {
            throw std::runtime_error("backend returned " +
                                     std::to_string(answers.size()) +
                                     " answers for " + std::to_string(rows) +
                                     " rows");
          }
          if (flight_on) flight.record("query", queries, rows);
          ++queries;
          std::string telemetry;
          if (options.telemetry_every != 0 &&
              queries % options.telemetry_every == 0) {
            telemetry = encode_telemetry(collect_local_telemetry(
                backend.meter()));
            // The cadence point doubles as the flight-dump point: after a
            // SIGKILL the harvested dump is at most one cadence stale.
            if (flight_on) flight.dump();
          }
          channel.send_frame(MsgType::kAnswer,
                             encode_answers(answers, &telemetry));
          break;
        }
        case MsgType::kTelemetry: {
          channel.send_frame(MsgType::kTelemetryReply,
                             encode_telemetry(collect_local_telemetry(
                                 backend.meter())));
          if (flight_on) {
            flight.record("telemetry_pull");
            flight.dump();
          }
          break;
        }
        case MsgType::kSyncPull: {
          WireWriter w;
          w.put_f64_vec(backend.export_params());
          channel.send_frame(MsgType::kParams, w.bytes());
          break;
        }
        case MsgType::kSyncPush: {
          WireReader r(request.payload);
          const std::vector<double> params = r.f64_vec();
          r.expect_end();
          backend.import_params(params);
          channel.send_frame(MsgType::kAck, "");
          break;
        }
        case MsgType::kStats: {
          WireWriter w;
          put_meter_snapshot(w, backend.meter().snapshot());
          channel.send_frame(MsgType::kStatsReply, w.bytes());
          break;
        }
        case MsgType::kCheckpoint: {
          if (options.checkpoint_path.empty()) {
            channel.send_frame(MsgType::kError,
                               "worker has no checkpoint path configured");
          } else {
            write_worker_checkpoint(options.checkpoint_path, backend);
            channel.send_frame(MsgType::kAck, "");
          }
          break;
        }
        case MsgType::kShutdown:
          if (flight_on) {
            flight.record("shutdown");
            flight.dump();
          }
          channel.send_frame(MsgType::kAck, "");
          return;
        default:
          channel.send_frame(
              MsgType::kError,
              "unexpected frame type " +
                  std::to_string(static_cast<unsigned>(request.type)));
          break;
      }
    } catch (const TransportError&) {
      if (flight_on) {
        flight.record("router_gone");
        flight.dump();
      }
      return;  // reply could not be delivered: router gone
    } catch (const std::exception& e) {
      // A failed request is not a dead worker: report it and keep serving.
      if (flight_on) flight.record("request_failed");
      try {
        channel.send_frame(MsgType::kError, e.what());
      } catch (const std::exception&) {
        return;
      }
    }
  }
}

void serve_shard_loop(Channel& channel, ShardBackend& backend,
                      const std::string& checkpoint_path) {
  ShardLoopOptions options;
  options.checkpoint_path = checkpoint_path;
  serve_shard_loop(channel, backend, options);
}

struct ShardedService::Worker {
  std::mutex mutex;
  Channel channel;
  pid_t pid = -1;
  bool alive = false;
  std::size_t restarts = 0;
  /// Last snapshot seen from this shard: counters outlive their worker at
  /// the router even when the shard is down.
  Snapshot last_meter;
  /// Last TelemetryFrame absorbed (spans moved out into harvested_spans).
  TelemetryFrame last_telemetry;
  bool has_telemetry = false;
  /// Spans delivered via telemetry, oldest first, bounded by
  /// kMaxHarvestedSpans.
  std::vector<obs::SpanRecord> harvested_spans;
  /// Flight-recorder events harvested from dump files, bounded by
  /// kMaxFlightEvents.
  std::vector<obs::FlightEvent> flight_events;
};

ShardedService::ShardedService(ShardedServiceConfig config,
                               BackendFactory factory)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      router_(config_.shards, config_.key_resolution) {
  if (!factory_) {
    throw std::invalid_argument("ShardedService: backend factory is empty");
  }
  workers_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    workers_.push_back(std::make_unique<Worker>());
  }
}

ShardedService::~ShardedService() {
  try {
    stop();
  } catch (const std::exception&) {
    // Destructors don't throw; stop() is best-effort here.
  }
}

std::string ShardedService::checkpoint_path(std::size_t shard) const {
  if (config_.checkpoint_dir.empty()) return {};
  return config_.checkpoint_dir + "/shard" + std::to_string(shard) + ".ckpt";
}

std::string ShardedService::flight_path(std::size_t shard) const {
  if (config_.flight_dir.empty()) return {};
  return config_.flight_dir + "/shard" + std::to_string(shard) + ".flight";
}

void ShardedService::absorb_telemetry_locked(std::size_t shard,
                                             std::string_view payload) {
  Worker& worker = *workers_[shard];
  TelemetryFrame frame = decode_telemetry(payload);
  worker.last_meter = frame.meter;
  auto& store = worker.harvested_spans;
  store.insert(store.end(), std::make_move_iterator(frame.spans.begin()),
               std::make_move_iterator(frame.spans.end()));
  if (store.size() > kMaxHarvestedSpans) {
    store.erase(store.begin(),
                store.begin() +
                    static_cast<std::ptrdiff_t>(store.size() -
                                                kMaxHarvestedSpans));
  }
  frame.spans.clear();
  worker.last_telemetry = std::move(frame);
  worker.has_telemetry = true;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.telemetry_frames;
  }
  if (obs::metrics_enabled()) {
    // Live per-shard gauges: the router's registry is the fleet dashboard.
    auto& reg = obs::MetricsRegistry::global();
    const std::string p = "net.shard" + std::to_string(shard) + ".";
    reg.gauge(p + "s_eff").set(worker.last_meter.speedup());
    reg.gauge(p + "n_lookup")
        .set(static_cast<double>(worker.last_meter.n_lookup));
    reg.gauge(p + "n_train")
        .set(static_cast<double>(worker.last_meter.n_train));
    reg.gauge(p + "restarts").set(static_cast<double>(worker.restarts));
    reg.gauge(p + "alive").set(1.0);
    reg.counter("net.telemetry_frames").add();
  }
}

void ShardedService::harvest_flight_locked(std::size_t shard) {
  const std::string path = flight_path(shard);
  if (path.empty()) return;
  if (::access(path.c_str(), F_OK) != 0) return;  // no dump: nothing to say
  try {
    obs::FlightDump dump = obs::read_flight_dump(path);
    auto& store = workers_[shard]->flight_events;
    store.insert(store.end(), dump.events.begin(), dump.events.end());
    if (store.size() > kMaxFlightEvents) {
      store.erase(store.begin(),
                  store.begin() +
                      static_cast<std::ptrdiff_t>(store.size() -
                                                  kMaxFlightEvents));
    }
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.flight_dumps_recovered;
  } catch (const obs::FlightDumpError&) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.flight_dumps_corrupt;
  }
  // Consumed either way: a respawned worker rewrites the file from scratch,
  // and a harvested dump must not be double-counted at the next death.
  std::remove(path.c_str());
}

void ShardedService::spawn_locked(std::size_t shard) {
  Worker& worker = *workers_[shard];
  auto [router_end, worker_end] = make_channel_pair();

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw TransportError(std::string("ShardedService: fork failed: ") +
                         std::strerror(errno));
  }
  if (pid == 0) {
    // Child: this block must never return.  _exit (not exit) so the
    // parent's atexit handlers and stream buffers are not run twice.
    try {
#ifdef __linux__
      // Die with the router even if it is SIGKILLed and never reaches
      // stop(); EOF on the socket covers the graceful paths.
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
      router_end.close();
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        // Inherited copies of sibling router-end descriptors would keep
        // those sockets open after the router dies — close them all.
        if (i != shard) workers_[i]->channel.close();
      }
      // Fresh observability slate: the fork copied the router's registry
      // counters/gauges and its TraceLog.  Left alone, a worker spawned
      // mid-run would re-export the router's numbers in its telemetry
      // (double-counting counters, clobbering gauges) and re-ship router
      // spans as its own.
      obs::MetricsRegistry::global().reset();
      obs::TraceLog::global().clear();
      const std::unique_ptr<ShardBackend> backend = factory_(shard);
      if (backend == nullptr) _exit(2);
      // Label this process for merged traces before any span is recorded.
      obs::set_process_name("shard-" + std::to_string(shard));
      ShardLoopOptions options;
      options.checkpoint_path = checkpoint_path(shard);
      options.flight_path = flight_path(shard);
      options.telemetry_every = config_.telemetry_every;
      serve_shard_loop(worker_end, *backend, options);
      _exit(0);
    } catch (const std::exception&) {
      _exit(1);
    }
  }

  // Parent.
  worker_end.close();
  worker.channel = std::move(router_end);
  worker.channel.set_recv_timeout(config_.recv_timeout_seconds);
  worker.pid = pid;

  try {
    const Frame hello = worker.channel.recv_frame();
    if (hello.type != MsgType::kHello) {
      throw WireError("ShardedService: expected kHello, got type " +
                      std::to_string(static_cast<unsigned>(hello.type)));
    }
    WireReader r(hello.payload);
    const bool recovered = r.u8() != 0;
    worker.last_meter = read_meter_snapshot(r);
    r.expect_end();
    worker.alive = true;
    if (recovered) {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.recovered_restarts;
    }
  } catch (const std::exception&) {
    worker.channel.close();
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    worker.pid = -1;
    worker.alive = false;
    throw;
  }
}

bool ShardedService::handle_death_locked(std::size_t shard) {
  Worker& worker = *workers_[shard];
  worker.alive = false;
  worker.channel.close();
  if (worker.pid > 0) {
    ::kill(worker.pid, SIGKILL);  // ensure a wedged worker is truly gone
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
    worker.pid = -1;
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.worker_deaths;
  }
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry::global()
        .gauge("net.shard" + std::to_string(shard) + ".alive")
        .set(0.0);
  }
  // Postmortem first: the dead worker's flight-recorder dump is the only
  // witness of its final moments, and the respawn will overwrite the file.
  harvest_flight_locked(shard);
  if (!config_.restart_dead_workers ||
      worker.restarts >= config_.max_restarts_per_shard) {
    return false;
  }
  ++worker.restarts;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.restarts;
  }
  try {
    spawn_locked(shard);
  } catch (const std::exception&) {
    return false;
  }
  return worker.alive;
}

Frame ShardedService::exchange_locked(std::size_t shard, MsgType type,
                                      const std::string& payload) {
  Worker& worker = *workers_[shard];
  worker.channel.send_frame(type, payload);
  return worker.channel.recv_frame();
}

void ShardedService::start() {
  if (started_) throw std::logic_error("ShardedService: already started");
  // Pin the obs clock epoch BEFORE the first fork: the function-local
  // static inside process_clock_seconds() is inherited by every child, so
  // router and worker span timestamps share one timeline in merged traces.
  (void)obs::process_clock_seconds();
  for (std::size_t s = 0; s < config_.shards; ++s) {
    const std::lock_guard<std::mutex> lock(workers_[s]->mutex);
    spawn_locked(s);
  }
  started_ = true;
}

void ShardedService::stop() {
  if (!started_) return;
  std::vector<pid_t> pids;
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    Worker& worker = *workers_[s];
    const std::lock_guard<std::mutex> lock(worker.mutex);
    if (worker.alive) {
      try {
        worker.channel.send_frame(MsgType::kShutdown, "");
        (void)worker.channel.recv_frame();  // best-effort kAck
      } catch (const std::exception&) {
        // Dying during shutdown is an acceptable way to shut down.
      }
    }
    worker.channel.close();
    if (worker.pid > 0) pids.push_back(worker.pid);
    worker.pid = -1;
    worker.alive = false;
    // Workers dump their flight ring while handling kShutdown (before the
    // ack we just received) — collect the survivors' black boxes too.
    harvest_flight_locked(s);
  }
  // Short grace for clean exits, then SIGKILL stragglers; reap everything.
  for (const pid_t pid : pids) {
    bool reaped = false;
    for (int i = 0; i < 200 && !reaped; ++i) {
      int status = 0;
      const pid_t got = ::waitpid(pid, &status, WNOHANG);
      if (got == pid || (got < 0 && errno == ECHILD)) {
        reaped = true;
      } else {
        ::usleep(10 * 1000);
      }
    }
    if (!reaped) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }
  started_ = false;
}

std::vector<NetAnswer> ShardedService::query_batch(
    const tensor::Matrix& inputs, std::span<const serve::Deadline> deadlines) {
  if (!started_) throw std::logic_error("ShardedService: not started");
  if (!deadlines.empty() && deadlines.size() != inputs.rows()) {
    throw std::invalid_argument(
        "ShardedService::query_batch: deadlines must be empty or one per row");
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batches;
    stats_.rows += inputs.rows();
  }
  // The batch's root span: its context is stamped onto every kQuery frame,
  // so each worker's spans stitch under this one in the merged trace.
  // With tracing off the context is all zeros and workers adopt nothing.
  const obs::TraceSpan batch_span("net.query_batch");
  const obs::TraceContext trace = batch_span.context();
  std::vector<NetAnswer> answers(inputs.rows());
  if (inputs.rows() == 0) return answers;

  const std::vector<std::vector<std::size_t>> parts = router_.partition(inputs);

  // Lock every involved shard in ascending index order (deadlock-free for
  // concurrent callers), then send all sub-batches before collecting any
  // reply, so the workers overlap their work even under a single caller.
  std::vector<std::size_t> involved;
  for (std::size_t s = 0; s < parts.size(); ++s) {
    if (!parts[s].empty()) involved.push_back(s);
  }
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(involved.size());
  for (const std::size_t s : involved) {
    locks.emplace_back(workers_[s]->mutex);
  }

  const Clock::time_point now = Clock::now();
  const auto shed_shard = [&](std::size_t s) {
    for (const std::size_t row : parts[s]) {
      answers[row] = make_worker_down_answer();
    }
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.rows_shed_worker_down += parts[s].size();
  };

  std::vector<bool> sent(parts.size(), false);
  for (const std::size_t s : involved) {
    Worker& worker = *workers_[s];
    if (!worker.alive && !handle_death_locked(s)) {
      shed_shard(s);
      continue;
    }
    try {
      worker.channel.send_frame(
          MsgType::kQuery,
          encode_query(inputs, parts[s], deadlines, now, trace));
      sent[s] = true;
    } catch (const std::exception&) {
      handle_death_locked(s);
      shed_shard(s);
    }
  }

  for (const std::size_t s : involved) {
    if (!sent[s]) continue;
    try {
      const Frame reply = workers_[s]->channel.recv_frame();
      if (reply.type == MsgType::kError) {
        // The backend refused the batch but the worker is fine: the rows
        // are shed (typed), the shard stays up.
        shed_shard(s);
        continue;
      }
      if (reply.type != MsgType::kAnswer) {
        throw WireError("ShardedService: expected kAnswer, got type " +
                        std::to_string(static_cast<unsigned>(reply.type)));
      }
      std::string telemetry;
      const std::vector<NetAnswer> shard_answers =
          decode_answers(reply.payload, parts[s].size(), &telemetry);
      for (std::size_t j = 0; j < parts[s].size(); ++j) {
        answers[parts[s][j]] = shard_answers[j];
      }
      if (!telemetry.empty()) absorb_telemetry_locked(s, telemetry);
    } catch (const std::exception&) {
      handle_death_locked(s);
      shed_shard(s);
    }
  }
  return answers;
}

obs::EffectiveSpeedupMeter::Snapshot ShardedService::shard_meter(
    std::size_t shard) {
  if (shard >= workers_.size()) {
    throw std::out_of_range("ShardedService::shard_meter: bad shard index");
  }
  Worker& worker = *workers_[shard];
  const std::lock_guard<std::mutex> lock(worker.mutex);
  if (worker.alive) {
    try {
      const Frame reply = exchange_locked(shard, MsgType::kStats, "");
      if (reply.type != MsgType::kStatsReply) {
        throw WireError("ShardedService: expected kStatsReply");
      }
      WireReader r(reply.payload);
      worker.last_meter = read_meter_snapshot(r);
      r.expect_end();
    } catch (const std::exception&) {
      handle_death_locked(shard);
    }
  }
  return worker.last_meter;
}

obs::EffectiveSpeedupMeter::Snapshot ShardedService::merged_meter() {
  Snapshot merged;
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    merged.merge(shard_meter(s));
  }
  return merged;
}

void ShardedService::sync_replicas(runtime::SyncModel pattern) {
  if (pattern != runtime::SyncModel::kAllreduce &&
      pattern != runtime::SyncModel::kRotation) {
    throw std::invalid_argument(
        "ShardedService::sync_replicas: only kAllreduce and kRotation map "
        "onto cross-process replica merges");
  }
  if (!started_) throw std::logic_error("ShardedService: not started");

  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(workers_.size());
  for (auto& worker : workers_) {
    locks.emplace_back(worker->mutex);
  }

  // Pull from every live shard; a shard that dies mid-sync simply sits
  // this round out (its respawned replica converges next round).
  std::vector<std::size_t> members;
  std::vector<std::vector<double>> replicas;
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    if (!workers_[s]->alive) continue;
    try {
      const Frame reply = exchange_locked(s, MsgType::kSyncPull, "");
      if (reply.type != MsgType::kParams) {
        throw WireError("ShardedService: expected kParams");
      }
      WireReader r(reply.payload);
      replicas.push_back(r.f64_vec());
      r.expect_end();
      members.push_back(s);
    } catch (const std::exception&) {
      handle_death_locked(s);
    }
  }

  if (pattern == runtime::SyncModel::kAllreduce) {
    runtime::allreduce_mean(replicas);
  } else {
    runtime::rotation_merge(replicas, sync_round_++);
  }

  for (std::size_t i = 0; i < members.size(); ++i) {
    const std::size_t s = members[i];
    try {
      WireWriter w;
      w.put_f64_vec(replicas[i]);
      const Frame reply = exchange_locked(s, MsgType::kSyncPush, w.bytes());
      if (reply.type != MsgType::kAck) {
        throw WireError("ShardedService: expected kAck");
      }
    } catch (const std::exception&) {
      handle_death_locked(s);
    }
  }
}

void ShardedService::checkpoint_all() {
  if (config_.checkpoint_dir.empty()) return;
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    Worker& worker = *workers_[s];
    const std::lock_guard<std::mutex> lock(worker.mutex);
    if (!worker.alive) continue;
    try {
      const Frame reply = exchange_locked(s, MsgType::kCheckpoint, "");
      if (reply.type != MsgType::kAck) {
        throw WireError("ShardedService: expected kAck");
      }
    } catch (const std::exception&) {
      handle_death_locked(s);
    }
  }
}

std::vector<double> ShardedService::pull_params(std::size_t shard) {
  if (shard >= workers_.size()) {
    throw std::out_of_range("ShardedService::pull_params: bad shard index");
  }
  Worker& worker = *workers_[shard];
  const std::lock_guard<std::mutex> lock(worker.mutex);
  if (!worker.alive) {
    throw TransportError("ShardedService::pull_params: shard is down");
  }
  try {
    const Frame reply = exchange_locked(shard, MsgType::kSyncPull, "");
    if (reply.type != MsgType::kParams) {
      throw WireError("ShardedService: expected kParams");
    }
    WireReader r(reply.payload);
    std::vector<double> params = r.f64_vec();
    r.expect_end();
    return params;
  } catch (const std::exception&) {
    handle_death_locked(shard);
    throw;
  }
}

void ShardedService::push_params(std::size_t shard,
                                 std::span<const double> params) {
  if (shard >= workers_.size()) {
    throw std::out_of_range("ShardedService::push_params: bad shard index");
  }
  Worker& worker = *workers_[shard];
  const std::lock_guard<std::mutex> lock(worker.mutex);
  if (!worker.alive) {
    throw TransportError("ShardedService::push_params: shard is down");
  }
  try {
    WireWriter w;
    w.put_f64_vec(params);
    const Frame reply = exchange_locked(shard, MsgType::kSyncPush, w.bytes());
    if (reply.type != MsgType::kAck) {
      throw WireError("ShardedService: expected kAck");
    }
  } catch (const std::exception&) {
    handle_death_locked(shard);
    throw;
  }
}

void ShardedService::kill_shard(std::size_t shard) {
  if (shard >= workers_.size()) {
    throw std::out_of_range("ShardedService::kill_shard: bad shard index");
  }
  Worker& worker = *workers_[shard];
  const std::lock_guard<std::mutex> lock(worker.mutex);
  if (worker.alive && worker.pid > 0) {
    // SIGKILL only: the router is NOT told — the next exchange discovers
    // the death exactly as it would a real crash.
    ::kill(worker.pid, SIGKILL);
  }
}

std::size_t ShardedService::poll_telemetry() {
  if (!started_) throw std::logic_error("ShardedService: not started");
  std::size_t replied = 0;
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    Worker& worker = *workers_[s];
    const std::lock_guard<std::mutex> lock(worker.mutex);
    if (!worker.alive) continue;
    try {
      const Frame reply = exchange_locked(s, MsgType::kTelemetry, "");
      if (reply.type != MsgType::kTelemetryReply) {
        throw WireError("ShardedService: expected kTelemetryReply");
      }
      absorb_telemetry_locked(s, reply.payload);
      ++replied;
    } catch (const std::exception&) {
      handle_death_locked(s);
    }
  }
  return replied;
}

TelemetryFrame ShardedService::shard_telemetry(std::size_t shard) const {
  if (shard >= workers_.size()) {
    throw std::out_of_range("ShardedService::shard_telemetry: bad shard index");
  }
  Worker& worker = *workers_[shard];
  const std::lock_guard<std::mutex> lock(worker.mutex);
  return worker.last_telemetry;
}

std::vector<obs::SpanRecord> ShardedService::harvested_spans(
    std::size_t shard) const {
  if (shard >= workers_.size()) {
    throw std::out_of_range("ShardedService::harvested_spans: bad shard index");
  }
  Worker& worker = *workers_[shard];
  const std::lock_guard<std::mutex> lock(worker.mutex);
  return worker.harvested_spans;
}

std::vector<obs::FlightEvent> ShardedService::flight_events(
    std::size_t shard) const {
  if (shard >= workers_.size()) {
    throw std::out_of_range("ShardedService::flight_events: bad shard index");
  }
  Worker& worker = *workers_[shard];
  const std::lock_guard<std::mutex> lock(worker.mutex);
  return worker.flight_events;
}

obs::MetricsSnapshot ShardedService::fleet_metrics() const {
  // Workers first, the router's own snapshot last: counters add either
  // way, but gauges are last-write-wins, and the router owns the
  // dashboard gauges (net.shard<k>.*, plus anything a forked worker still
  // carries a zeroed copy of) — its values must not lose to a worker's.
  obs::MetricsSnapshot fleet;
  for (std::size_t s = 0; s < workers_.size(); ++s) {
    Worker& worker = *workers_[s];
    const std::lock_guard<std::mutex> lock(worker.mutex);
    if (worker.has_telemetry) fleet.merge(worker.last_telemetry.metrics);
  }
  fleet.merge(obs::MetricsRegistry::global().snapshot());
  return fleet;
}

std::map<std::uint32_t, std::string> ShardedService::process_names() const {
  std::map<std::uint32_t, std::string> names;
  names[static_cast<std::uint32_t>(::getpid())] = obs::process_name();
  for (const auto& worker_ptr : workers_) {
    Worker& worker = *worker_ptr;
    const std::lock_guard<std::mutex> lock(worker.mutex);
    if (worker.has_telemetry) {
      names[worker.last_telemetry.pid] = worker.last_telemetry.process_name;
    }
  }
  return names;
}

bool ShardedService::shard_alive(std::size_t shard) const {
  if (shard >= workers_.size()) {
    throw std::out_of_range("ShardedService::shard_alive: bad shard index");
  }
  Worker& worker = *workers_[shard];
  const std::lock_guard<std::mutex> lock(worker.mutex);
  return worker.alive;
}

ShardedServiceStats ShardedService::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace le::net
