#include "le/data/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace le::data {

Dataset::Dataset(tensor::Matrix inputs, tensor::Matrix targets)
    : input_dim_(inputs.cols()), target_dim_(targets.cols()) {
  if (inputs.rows() != targets.rows()) {
    throw std::invalid_argument("Dataset: inputs/targets row mismatch");
  }
  inputs_.assign(inputs.data(), inputs.data() + inputs.size());
  targets_.assign(targets.data(), targets.data() + targets.size());
}

void Dataset::add(std::span<const double> input, std::span<const double> target) {
  if (input_dim_ == 0 && target_dim_ == 0) {
    input_dim_ = input.size();
    target_dim_ = target.size();
  }
  if (input.size() != input_dim_ || target.size() != target_dim_) {
    throw std::invalid_argument("Dataset::add: dimension mismatch");
  }
  inputs_.insert(inputs_.end(), input.begin(), input.end());
  targets_.insert(targets_.end(), target.begin(), target.end());
}

tensor::Matrix Dataset::input_matrix() const {
  tensor::Matrix m(size(), input_dim_);
  std::copy(inputs_.begin(), inputs_.end(), m.data());
  return m;
}

tensor::Matrix Dataset::target_matrix() const {
  tensor::Matrix m(size(), target_dim_);
  std::copy(targets_.begin(), targets_.end(), m.data());
  return m;
}

std::vector<double> Dataset::target_column(std::size_t col) const {
  if (col >= target_dim_) throw std::out_of_range("Dataset::target_column");
  std::vector<double> out(size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = target(i)[col];
  return out;
}

std::vector<double> Dataset::input_column(std::size_t col) const {
  if (col >= input_dim_) throw std::out_of_range("Dataset::input_column");
  std::vector<double> out(size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = input(i)[col];
  return out;
}

void Dataset::shuffle(stats::Rng& rng) {
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(std::span<std::size_t>{order});
  *this = subset(order);
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction,
                                           stats::Rng& rng) const {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("Dataset::split: fraction must be in (0,1)");
  }
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(std::span<std::size_t>{order});
  const auto n_train = static_cast<std::size_t>(
      train_fraction * static_cast<double>(size()));
  const std::span<const std::size_t> all{order};
  return {subset(all.subspan(0, n_train)), subset(all.subspan(n_train))};
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(input_dim_, target_dim_);
  for (std::size_t idx : indices) {
    if (idx >= size()) throw std::out_of_range("Dataset::subset: index");
    out.add(input(idx), target(idx));
  }
  return out;
}

void Dataset::append(const Dataset& other) {
  if (other.empty()) return;
  if (empty() && input_dim_ == 0) {
    input_dim_ = other.input_dim_;
    target_dim_ = other.target_dim_;
  }
  if (other.input_dim_ != input_dim_ || other.target_dim_ != target_dim_) {
    throw std::invalid_argument("Dataset::append: dimension mismatch");
  }
  inputs_.insert(inputs_.end(), other.inputs_.begin(), other.inputs_.end());
  targets_.insert(targets_.end(), other.targets_.begin(), other.targets_.end());
}

}  // namespace le::data
