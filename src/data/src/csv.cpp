#include "le/data/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace le::data {

namespace {

[[noreturn]] void parse_error(const std::string& what, std::size_t line_no,
                              std::size_t column) {
  throw std::runtime_error("read_csv: " + what + " at line " +
                           std::to_string(line_no) + ", column " +
                           std::to_string(column));
}

/// Parses one numeric cell strictly: the whole cell (minus surrounding
/// whitespace) must be consumed by the conversion, so "1.5x", "1,5" split
/// remnants and empty cells are rejected instead of silently truncated.
double parse_cell(const std::string& cell, std::size_t line_no,
                  std::size_t column) {
  std::size_t end = 0;
  double value = 0.0;
  try {
    value = std::stod(cell, &end);
  } catch (const std::exception&) {
    parse_error("not a number ('" + cell + "')", line_no, column);
  }
  while (end < cell.size() &&
         (cell[end] == ' ' || cell[end] == '\t')) {
    ++end;
  }
  if (end != cell.size()) {
    parse_error("trailing garbage after number ('" + cell + "')", line_no,
                column);
  }
  return value;
}

std::vector<double> parse_line(const std::string& line, std::size_t line_no) {
  std::vector<double> values;
  std::stringstream ss(line);
  std::string cell;
  std::size_t column = 1;
  while (std::getline(ss, cell, ',')) {
    values.push_back(parse_cell(cell, line_no, column));
    ++column;
  }
  if (!line.empty() && line.back() == ',') {
    parse_error("empty trailing cell", line_no, column);
  }
  return values;
}

/// True when a line carries no data (empty, or CR/whitespace only —
/// tolerates CRLF files and editor-appended blank lines).
bool blank_line(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

void write_header(std::ofstream& out, const std::vector<std::string>& header) {
  if (header.empty()) return;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out << ',';
    out << header[i];
  }
  out << '\n';
}

}  // namespace

void write_csv(const std::string& path, const tensor::Matrix& m,
               const std::vector<std::string>& header) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path);
  out.precision(17);
  write_header(out, header);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c) out << ',';
      out << m(r, c);
    }
    out << '\n';
  }
}

tensor::Matrix read_csv(const std::string& path, bool skip_header) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  std::string line;
  std::size_t line_no = 0;
  if (skip_header && std::getline(in, line)) ++line_no;
  std::vector<std::vector<double>> rows;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF files
    if (blank_line(line)) continue;
    rows.push_back(parse_line(line, line_no));
    if (rows.back().size() != rows.front().size()) {
      throw std::runtime_error("read_csv: ragged row at line " +
                               std::to_string(line_no) + " in " + path);
    }
  }
  if (rows.empty()) return {};
  tensor::Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

void write_dataset_csv(const std::string& path, const Dataset& ds,
                       const std::vector<std::string>& header) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_dataset_csv: cannot open " + path);
  out.precision(17);
  write_header(out, header);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    bool first = true;
    for (double v : ds.input(i)) {
      if (!first) out << ',';
      out << v;
      first = false;
    }
    for (double v : ds.target(i)) {
      out << ',' << v;
    }
    out << '\n';
  }
}

Dataset read_dataset_csv(const std::string& path, std::size_t input_dim,
                         bool skip_header) {
  tensor::Matrix m = read_csv(path, skip_header);
  if (m.cols() <= input_dim) {
    throw std::runtime_error("read_dataset_csv: too few columns");
  }
  const std::size_t target_dim = m.cols() - input_dim;
  Dataset ds(input_dim, target_dim);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    ds.add(row.subspan(0, input_dim), row.subspan(input_dim, target_dim));
  }
  return ds;
}

}  // namespace le::data
