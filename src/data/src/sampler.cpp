#include "le/data/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace le::data {

void ParamSpace::clamp(std::vector<double>& point) const {
  if (point.size() != axes_.size()) {
    throw std::invalid_argument("ParamSpace::clamp: dim mismatch");
  }
  for (std::size_t i = 0; i < point.size(); ++i) {
    point[i] = std::clamp(point[i], axes_[i].lo, axes_[i].hi);
    if (axes_[i].integral) point[i] = std::round(point[i]);
  }
}

std::vector<std::vector<double>> grid_sample(
    const ParamSpace& space, const std::vector<std::size_t>& points_per_axis) {
  if (points_per_axis.size() != space.dims()) {
    throw std::invalid_argument("grid_sample: level count per axis required");
  }
  std::size_t total = 1;
  for (std::size_t levels : points_per_axis) {
    if (levels == 0) throw std::invalid_argument("grid_sample: zero levels");
    total *= levels;
  }

  std::vector<std::vector<double>> points;
  points.reserve(total);
  std::vector<std::size_t> idx(space.dims(), 0);
  for (std::size_t p = 0; p < total; ++p) {
    std::vector<double> point(space.dims());
    for (std::size_t d = 0; d < space.dims(); ++d) {
      const auto& ax = space.axis(d);
      const std::size_t levels = points_per_axis[d];
      double v;
      if (levels == 1) {
        v = 0.5 * (ax.lo + ax.hi);
      } else {
        v = ax.lo + (ax.hi - ax.lo) * static_cast<double>(idx[d]) /
                        static_cast<double>(levels - 1);
      }
      if (ax.integral) v = std::round(v);
      point[d] = v;
    }
    points.push_back(std::move(point));
    // Odometer increment.
    for (std::size_t d = 0; d < space.dims(); ++d) {
      if (++idx[d] < points_per_axis[d]) break;
      idx[d] = 0;
    }
  }
  return points;
}

std::vector<std::vector<double>> latin_hypercube_sample(const ParamSpace& space,
                                                        std::size_t n,
                                                        stats::Rng& rng) {
  if (n == 0) return {};
  std::vector<std::vector<double>> points(n, std::vector<double>(space.dims()));
  std::vector<std::size_t> perm(n);
  for (std::size_t d = 0; d < space.dims(); ++d) {
    std::iota(perm.begin(), perm.end(), 0);
    rng.shuffle(std::span<std::size_t>{perm});
    const auto& ax = space.axis(d);
    for (std::size_t i = 0; i < n; ++i) {
      const double u = (static_cast<double>(perm[i]) + rng.uniform()) /
                       static_cast<double>(n);
      double v = ax.lo + u * (ax.hi - ax.lo);
      if (ax.integral) v = std::round(v);
      points[i][d] = v;
    }
  }
  return points;
}

std::vector<std::vector<double>> uniform_sample(const ParamSpace& space,
                                                std::size_t n, stats::Rng& rng) {
  std::vector<std::vector<double>> points(n, std::vector<double>(space.dims()));
  for (auto& point : points) {
    for (std::size_t d = 0; d < space.dims(); ++d) {
      const auto& ax = space.axis(d);
      double v = rng.uniform(ax.lo, ax.hi);
      if (ax.integral) v = std::round(v);
      point[d] = v;
    }
  }
  return points;
}

}  // namespace le::data
