#include "le/data/normalizer.hpp"

#include <cmath>
#include <stdexcept>

namespace le::data {

namespace {
void check_fit_input(const tensor::Matrix& samples) {
  if (samples.rows() == 0 || samples.cols() == 0) {
    throw std::invalid_argument("normalizer: cannot fit on empty matrix");
  }
}
}  // namespace

void MinMaxNormalizer::fit(const tensor::Matrix& samples) {
  check_fit_input(samples);
  lo_.assign(samples.cols(), std::numeric_limits<double>::infinity());
  hi_.assign(samples.cols(), -std::numeric_limits<double>::infinity());
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    for (std::size_t c = 0; c < samples.cols(); ++c) {
      lo_[c] = std::min(lo_[c], samples(r, c));
      hi_[c] = std::max(hi_[c], samples(r, c));
    }
  }
}

void MinMaxNormalizer::transform(tensor::Matrix& samples) const {
  for (std::size_t r = 0; r < samples.rows(); ++r) transform(samples.row(r));
}

void MinMaxNormalizer::transform(std::span<double> row) const {
  if (row.size() != lo_.size()) throw std::invalid_argument("MinMax: dim mismatch");
  for (std::size_t c = 0; c < row.size(); ++c) {
    const double span = hi_[c] - lo_[c];
    row[c] = span > 0.0 ? (row[c] - lo_[c]) / span : 0.0;
  }
}

void MinMaxNormalizer::inverse(std::span<double> row) const {
  if (row.size() != lo_.size()) throw std::invalid_argument("MinMax: dim mismatch");
  for (std::size_t c = 0; c < row.size(); ++c) {
    row[c] = lo_[c] + row[c] * (hi_[c] - lo_[c]);
  }
}

void ZScoreNormalizer::fit(const tensor::Matrix& samples) {
  check_fit_input(samples);
  const auto n = static_cast<double>(samples.rows());
  mean_.assign(samples.cols(), 0.0);
  std_.assign(samples.cols(), 0.0);
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    for (std::size_t c = 0; c < samples.cols(); ++c) mean_[c] += samples(r, c);
  }
  for (double& m : mean_) m /= n;
  for (std::size_t r = 0; r < samples.rows(); ++r) {
    for (std::size_t c = 0; c < samples.cols(); ++c) {
      const double d = samples(r, c) - mean_[c];
      std_[c] += d * d;
    }
  }
  for (std::size_t c = 0; c < std_.size(); ++c) {
    std_[c] = std::sqrt(std_[c] / std::max(n - 1.0, 1.0));
    // A constant column's accumulated deviation is pure rounding noise
    // (summing identical values then dividing does not reproduce the value
    // exactly), leaving std ~1e-17 instead of 0.  Dividing by it would blow
    // that noise up to O(1) outputs, so clamp to exactly zero: the
    // transform then maps the column to 0 and inverse restores the mean.
    const double tiny =
        1e-12 * std::max(1.0, std::abs(mean_[c]));
    if (std_[c] < tiny) std_[c] = 0.0;
  }
}

void ZScoreNormalizer::transform(tensor::Matrix& samples) const {
  for (std::size_t r = 0; r < samples.rows(); ++r) transform(samples.row(r));
}

void ZScoreNormalizer::transform(std::span<double> row) const {
  if (row.size() != mean_.size()) throw std::invalid_argument("ZScore: dim mismatch");
  for (std::size_t c = 0; c < row.size(); ++c) {
    row[c] = std_[c] > 0.0 ? (row[c] - mean_[c]) / std_[c] : 0.0;
  }
}

void ZScoreNormalizer::inverse(std::span<double> row) const {
  if (row.size() != mean_.size()) throw std::invalid_argument("ZScore: dim mismatch");
  for (std::size_t c = 0; c < row.size(); ++c) {
    row[c] = mean_[c] + row[c] * std_[c];
  }
}

NormalizedSplits normalize_splits(const Dataset& train, const Dataset& test) {
  NormalizedSplits out;
  out.input_scaler.fit(train.input_matrix());
  out.target_scaler.fit(train.target_matrix());

  const auto apply = [&](const Dataset& src) {
    Dataset dst(src.input_dim(), src.target_dim());
    std::vector<double> in(src.input_dim()), tg(src.target_dim());
    for (std::size_t i = 0; i < src.size(); ++i) {
      auto is = src.input(i);
      auto ts = src.target(i);
      in.assign(is.begin(), is.end());
      tg.assign(ts.begin(), ts.end());
      out.input_scaler.transform(in);
      out.target_scaler.transform(tg);
      dst.add(in, tg);
    }
    return dst;
  };
  out.train = apply(train);
  out.test = apply(test);
  return out;
}

}  // namespace le::data
