/// @file
/// Supervised-learning dataset: paired input/target rows.
///
/// Every MLaroundHPC pipeline in this repository produces a Dataset from
/// simulation runs (one row per run or per harvested block) and hands it to
/// the nn training loop.  The 70/30 train/test protocol from the paper's
/// Section III-D case studies is `split(0.7, rng)`.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "le/stats/rng.hpp"
#include "le/tensor/matrix.hpp"

namespace le::data {

/// Paired (inputs, targets) sample store with row-aligned matrices.
class Dataset {
 public:
  Dataset() = default;

  /// Reserves a dataset for samples of the given dimensionalities.
  Dataset(std::size_t input_dim, std::size_t target_dim)
      : input_dim_(input_dim), target_dim_(target_dim) {}

  /// Adopts pre-built matrices; rows() must agree.
  Dataset(tensor::Matrix inputs, tensor::Matrix targets);

  /// Appends one sample; span lengths must match the declared dims.
  void add(std::span<const double> input, std::span<const double> target);

  [[nodiscard]] std::size_t size() const noexcept { return inputs_.size() / std::max<std::size_t>(input_dim_, 1); }
  [[nodiscard]] std::size_t input_dim() const noexcept { return input_dim_; }
  [[nodiscard]] std::size_t target_dim() const noexcept { return target_dim_; }
  [[nodiscard]] bool empty() const noexcept { return inputs_.empty(); }

  [[nodiscard]] std::span<const double> input(std::size_t i) const {
    return {inputs_.data() + i * input_dim_, input_dim_};
  }
  [[nodiscard]] std::span<const double> target(std::size_t i) const {
    return {targets_.data() + i * target_dim_, target_dim_};
  }

  /// Materializes the inputs as an (n x input_dim) matrix.
  [[nodiscard]] tensor::Matrix input_matrix() const;
  /// Materializes the targets as an (n x target_dim) matrix.
  [[nodiscard]] tensor::Matrix target_matrix() const;

  /// All values of one target column, across samples.
  [[nodiscard]] std::vector<double> target_column(std::size_t col) const;
  /// All values of one input column, across samples.
  [[nodiscard]] std::vector<double> input_column(std::size_t col) const;

  /// In-place Fisher–Yates shuffle of sample order.
  void shuffle(stats::Rng& rng);

  /// Splits into (train, test) with `train_fraction` of samples (after an
  /// internal shuffle driven by rng) going to train.  Fraction must be in
  /// (0, 1).
  [[nodiscard]] std::pair<Dataset, Dataset> split(double train_fraction,
                                                  stats::Rng& rng) const;

  /// Returns a dataset containing the samples at the given indices.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Appends all samples of another dataset with identical dims.
  void append(const Dataset& other);

 private:
  std::size_t input_dim_ = 0;
  std::size_t target_dim_ = 0;
  std::vector<double> inputs_;   // row-major, size() * input_dim_
  std::vector<double> targets_;  // row-major, size() * target_dim_
};

}  // namespace le::data
