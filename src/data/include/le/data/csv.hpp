/// @file
/// Minimal CSV persistence for datasets and result tables.
#pragma once

#include <string>
#include <vector>

#include "le/data/dataset.hpp"
#include "le/tensor/matrix.hpp"

namespace le::data {

/// Writes a matrix as CSV with an optional header row.
void write_csv(const std::string& path, const tensor::Matrix& m,
               const std::vector<std::string>& header = {});

/// Reads a CSV of doubles; `skip_header` drops the first line.
[[nodiscard]] tensor::Matrix read_csv(const std::string& path,
                                      bool skip_header = false);

/// Writes a dataset as CSV with inputs first, then targets, per row.
void write_dataset_csv(const std::string& path, const Dataset& ds,
                       const std::vector<std::string>& header = {});

/// Reads a dataset back given the input dimensionality (remaining columns
/// become targets).
[[nodiscard]] Dataset read_dataset_csv(const std::string& path,
                                       std::size_t input_dim,
                                       bool skip_header = false);

}  // namespace le::data
