/// @file
/// Experiment-design samplers over rectangular parameter spaces.
///
/// Simulation campaigns (the N_train runs in the effective-speedup formula)
/// choose their state points with these samplers: regular grids match the
/// paper's nanoconfinement study, Latin hypercube gives better space filling
/// for the same budget, and uniform sampling is the baseline.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "le/stats/rng.hpp"

namespace le::data {

/// One axis of a parameter space.
struct ParamAxis {
  std::string name;
  double lo = 0.0;
  double hi = 1.0;
  /// When true, sampled values are rounded to the nearest integer (the
  /// paper's valency inputs are integers).
  bool integral = false;
};

/// Axis-aligned box in parameter space.
class ParamSpace {
 public:
  ParamSpace() = default;
  explicit ParamSpace(std::vector<ParamAxis> axes) : axes_(std::move(axes)) {}

  void add_axis(ParamAxis axis) { axes_.push_back(std::move(axis)); }
  [[nodiscard]] std::size_t dims() const noexcept { return axes_.size(); }
  [[nodiscard]] const ParamAxis& axis(std::size_t i) const { return axes_.at(i); }

  /// Clamps (and rounds, for integral axes) a point into the space.
  void clamp(std::vector<double>& point) const;

 private:
  std::vector<ParamAxis> axes_;
};

/// Full-factorial grid with `points_per_axis[i]` levels on axis i.
/// A single-level axis is sampled at its midpoint.
[[nodiscard]] std::vector<std::vector<double>> grid_sample(
    const ParamSpace& space, const std::vector<std::size_t>& points_per_axis);

/// Latin hypercube design with n points.
[[nodiscard]] std::vector<std::vector<double>> latin_hypercube_sample(
    const ParamSpace& space, std::size_t n, stats::Rng& rng);

/// Independent uniform draws.
[[nodiscard]] std::vector<std::vector<double>> uniform_sample(
    const ParamSpace& space, std::size_t n, stats::Rng& rng);

}  // namespace le::data
