/// @file
/// Feature scaling.
///
/// The nanoconfinement and autotuning networks are tiny MLPs; without input
/// scaling their convergence is erratic because the physical parameters span
/// very different ranges (nm vs molar vs integer valencies).  Both
/// normalizers are fitted column-wise on the training split only and then
/// applied to all splits, matching standard MLaroundHPC practice.
#pragma once

#include <span>
#include <vector>

#include "le/data/dataset.hpp"
#include "le/tensor/matrix.hpp"

namespace le::data {

/// Column-wise min-max scaling to [0, 1].
///
/// Constant columns (hi == lo) carry no information, so transform maps
/// them to exactly 0 rather than dividing by the zero span; inverse maps
/// any value back to the constant (lo).  This is deliberate: a surrogate
/// fed a campaign slice where one parameter is pinned must not see NaN/inf.
class MinMaxNormalizer {
 public:
  void fit(const tensor::Matrix& samples);
  void transform(tensor::Matrix& samples) const;
  void transform(std::span<double> row) const;
  void inverse(std::span<double> row) const;
  [[nodiscard]] bool fitted() const noexcept { return !lo_.empty(); }
  [[nodiscard]] std::span<const double> lo() const noexcept { return {lo_}; }
  [[nodiscard]] std::span<const double> hi() const noexcept { return {hi_}; }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

/// Column-wise z-score scaling: (x - mean) / std.
///
/// Constant columns map to exactly 0: fit() clamps a standard deviation
/// below 1e-12 * max(1, |mean|) to zero so floating-point cancellation in
/// the mean cannot masquerade as tiny genuine variance (which transform
/// would amplify into O(1) noise), and transform treats std == 0 as
/// "emit 0".  inverse maps any value of such a column back to the mean.
class ZScoreNormalizer {
 public:
  void fit(const tensor::Matrix& samples);
  void transform(tensor::Matrix& samples) const;
  void transform(std::span<double> row) const;
  void inverse(std::span<double> row) const;
  [[nodiscard]] bool fitted() const noexcept { return !mean_.empty(); }
  [[nodiscard]] std::span<const double> means() const noexcept { return {mean_}; }
  [[nodiscard]] std::span<const double> stddevs() const noexcept { return {std_}; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

/// Fits input and target normalizers on `train` and returns normalized
/// copies of both splits — the standard pre-training step.
struct NormalizedSplits {
  Dataset train;
  Dataset test;
  MinMaxNormalizer input_scaler;
  MinMaxNormalizer target_scaler;
};

[[nodiscard]] NormalizedSplits normalize_splits(const Dataset& train,
                                                const Dataset& test);

}  // namespace le::data
