#include "le/tensor/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace le::tensor {

std::string to_string(GemmKernel kernel) {
  switch (kernel) {
    case GemmKernel::kAuto: return "auto";
    case GemmKernel::kScalar: return "scalar";
    case GemmKernel::kAvx2: return "avx2";
  }
  return "unknown";
}

GemmKernel gemm_kernel_from_string(const std::string& name) {
  if (name == "auto") return GemmKernel::kAuto;
  if (name == "scalar") return GemmKernel::kScalar;
  if (name == "avx2") return GemmKernel::kAvx2;
  throw std::invalid_argument("unknown gemm kernel: " + name);
}

bool cpu_has_avx2_fma() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports runs CPUID once and caches; both gcc and clang
  // provide it on x86.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

namespace {

/// Clamps a requested kernel to what the hardware can actually run.
GemmKernel runnable(GemmKernel kernel) noexcept {
  if (kernel == GemmKernel::kAvx2 && !cpu_has_avx2_fma()) {
    return GemmKernel::kScalar;
  }
  if (kernel == GemmKernel::kAuto) {
    return cpu_has_avx2_fma() ? GemmKernel::kAvx2 : GemmKernel::kScalar;
  }
  return kernel;
}

/// kAuto doubles as the "not yet resolved / no override" sentinel in the
/// two atomics below; neither ever exposes it to callers.
std::atomic<GemmKernel> g_default{GemmKernel::kAuto};
std::atomic<GemmKernel> g_override{GemmKernel::kAuto};
/// Set when LE_KERNEL named a concrete kernel (not auto/invalid).
std::atomic<bool> g_env_forced{false};

GemmKernel resolve_default() noexcept {
  GemmKernel requested = GemmKernel::kAuto;
  if (const char* env = std::getenv("LE_KERNEL")) {
    try {
      requested = gemm_kernel_from_string(env);
    } catch (const std::invalid_argument&) {
      std::fprintf(stderr,
                   "le::tensor: ignoring invalid LE_KERNEL='%s' "
                   "(expected auto|scalar|avx2)\n",
                   env);
    }
  }
  if (requested != GemmKernel::kAuto) {
    g_env_forced.store(true, std::memory_order_relaxed);
  }
  return runnable(requested);
}

}  // namespace

GemmKernel default_gemm_kernel() noexcept {
  GemmKernel cached = g_default.load(std::memory_order_relaxed);
  if (cached == GemmKernel::kAuto) {
    cached = resolve_default();
    g_default.store(cached, std::memory_order_relaxed);
  }
  return cached;
}

void set_gemm_kernel_override(std::optional<GemmKernel> kernel) noexcept {
  g_override.store(kernel ? runnable(*kernel) : GemmKernel::kAuto,
                   std::memory_order_relaxed);
}

GemmKernel active_gemm_kernel() noexcept {
  const GemmKernel forced = g_override.load(std::memory_order_relaxed);
  return forced == GemmKernel::kAuto ? default_gemm_kernel() : forced;
}

bool gemm_kernel_forced() noexcept {
  if (g_override.load(std::memory_order_relaxed) != GemmKernel::kAuto) {
    return true;
  }
  (void)default_gemm_kernel();  // make sure LE_KERNEL has been parsed
  return g_env_forced.load(std::memory_order_relaxed);
}

}  // namespace le::tensor
