// AVX2+FMA GEMM micro-kernels.  This translation unit (alone in le_tensor)
// is compiled with -mavx2 -mfma; nothing here may run unless
// cpu_has_avx2_fma() — the tensor::gemm() dispatcher enforces that, so the
// library still loads and runs on pre-AVX2 hardware.
//
// Structure: gemm_avx2 keeps gemm_blocked's macro-block loop nest (the
// blocking proven by the tail-shape property suite in tests/test_tensor.cpp
// and tuned by the ATLAS-style autotuner) and replaces the innermost
// scalar loops with a 4x8 register tile: 4 rows of A broadcast against two
// 4-wide column vectors of B, eight FMA accumulators resident in ymm
// registers across the whole kc extent.  Tail rows (<4) and tail columns
// (<4) fall back to the scalar inner loop, so odd shapes stay correct
// without a packed-edge code path.
#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "le/tensor/ops.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>

namespace le::tensor {

namespace {

// C tile[4][8] += A[4 rows, kc] * B[kc, 8 cols]; all pointers are into the
// full row-major matrices (lda/ldb/ldc are the parent row strides).
inline void tile_4x8(const double* a, std::size_t lda, const double* b,
                     std::size_t ldb, double* c, std::size_t ldc,
                     std::size_t kc) {
  __m256d c00 = _mm256_loadu_pd(c + 0 * ldc);
  __m256d c01 = _mm256_loadu_pd(c + 0 * ldc + 4);
  __m256d c10 = _mm256_loadu_pd(c + 1 * ldc);
  __m256d c11 = _mm256_loadu_pd(c + 1 * ldc + 4);
  __m256d c20 = _mm256_loadu_pd(c + 2 * ldc);
  __m256d c21 = _mm256_loadu_pd(c + 2 * ldc + 4);
  __m256d c30 = _mm256_loadu_pd(c + 3 * ldc);
  __m256d c31 = _mm256_loadu_pd(c + 3 * ldc + 4);
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256d b0 = _mm256_loadu_pd(b + p * ldb);
    const __m256d b1 = _mm256_loadu_pd(b + p * ldb + 4);
    const __m256d a0 = _mm256_broadcast_sd(a + 0 * lda + p);
    c00 = _mm256_fmadd_pd(a0, b0, c00);
    c01 = _mm256_fmadd_pd(a0, b1, c01);
    const __m256d a1 = _mm256_broadcast_sd(a + 1 * lda + p);
    c10 = _mm256_fmadd_pd(a1, b0, c10);
    c11 = _mm256_fmadd_pd(a1, b1, c11);
    const __m256d a2 = _mm256_broadcast_sd(a + 2 * lda + p);
    c20 = _mm256_fmadd_pd(a2, b0, c20);
    c21 = _mm256_fmadd_pd(a2, b1, c21);
    const __m256d a3 = _mm256_broadcast_sd(a + 3 * lda + p);
    c30 = _mm256_fmadd_pd(a3, b0, c30);
    c31 = _mm256_fmadd_pd(a3, b1, c31);
  }
  _mm256_storeu_pd(c + 0 * ldc, c00);
  _mm256_storeu_pd(c + 0 * ldc + 4, c01);
  _mm256_storeu_pd(c + 1 * ldc, c10);
  _mm256_storeu_pd(c + 1 * ldc + 4, c11);
  _mm256_storeu_pd(c + 2 * ldc, c20);
  _mm256_storeu_pd(c + 2 * ldc + 4, c21);
  _mm256_storeu_pd(c + 3 * ldc, c30);
  _mm256_storeu_pd(c + 3 * ldc + 4, c31);
}

// C tile[rows][4] += A[rows, kc] * B[kc, 4 cols], rows in 1..4.
inline void tile_rx4(const double* a, std::size_t lda, const double* b,
                     std::size_t ldb, double* c, std::size_t ldc,
                     std::size_t kc, std::size_t rows) {
  __m256d acc[4];
  for (std::size_t r = 0; r < rows; ++r) acc[r] = _mm256_loadu_pd(c + r * ldc);
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256d b0 = _mm256_loadu_pd(b + p * ldb);
    for (std::size_t r = 0; r < rows; ++r) {
      acc[r] = _mm256_fmadd_pd(_mm256_broadcast_sd(a + r * lda + p), b0,
                               acc[r]);
    }
  }
  for (std::size_t r = 0; r < rows; ++r) _mm256_storeu_pd(c + r * ldc, acc[r]);
}

}  // namespace

void gemm_avx2(const Matrix& a, const Matrix& b, Matrix& out,
               const GemmBlocking& blocking) {
  if (a.cols() != b.rows() || out.rows() != a.rows() ||
      out.cols() != b.cols()) {
    throw std::invalid_argument("gemm: shape mismatch");
  }
  if (&out == &a || &out == &b) {
    throw std::invalid_argument("gemm: out must not alias an input");
  }
  if (blocking.mc == 0 || blocking.kc == 0 || blocking.nc == 0) {
    throw std::invalid_argument("gemm_avx2: block sizes must be positive");
  }
  out.fill(0.0);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = out.data();
  for (std::size_t i0 = 0; i0 < m; i0 += blocking.mc) {
    const std::size_t i1 = std::min(i0 + blocking.mc, m);
    for (std::size_t p0 = 0; p0 < k; p0 += blocking.kc) {
      const std::size_t p1 = std::min(p0 + blocking.kc, k);
      const std::size_t kc = p1 - p0;
      for (std::size_t j0 = 0; j0 < n; j0 += blocking.nc) {
        const std::size_t j1 = std::min(j0 + blocking.nc, n);
        std::size_t i = i0;
        for (; i + 4 <= i1; i += 4) {
          std::size_t j = j0;
          for (; j + 8 <= j1; j += 8) {
            tile_4x8(pa + i * k + p0, k, pb + p0 * n + j, n, pc + i * n + j,
                     n, kc);
          }
          for (; j + 4 <= j1; j += 4) {
            tile_rx4(pa + i * k + p0, k, pb + p0 * n + j, n, pc + i * n + j,
                     n, kc, 4);
          }
          if (j < j1) {
            // Column tail (<4): scalar inner loop, gemm_blocked order.
            for (std::size_t r = i; r < i + 4; ++r) {
              double* orow = pc + r * n;
              for (std::size_t p = p0; p < p1; ++p) {
                const double aip = pa[r * k + p];
                const double* brow = pb + p * n;
                for (std::size_t jj = j; jj < j1; ++jj) {
                  orow[jj] += aip * brow[jj];
                }
              }
            }
          }
        }
        if (i < i1) {
          // Row tail (<4 rows): 4-wide columns, then scalar column tail.
          std::size_t j = j0;
          for (; j + 4 <= j1; j += 4) {
            tile_rx4(pa + i * k + p0, k, pb + p0 * n + j, n, pc + i * n + j,
                     n, kc, i1 - i);
          }
          for (std::size_t r = i; r < i1; ++r) {
            double* orow = pc + r * n;
            for (std::size_t p = p0; p < p1; ++p) {
              const double aip = pa[r * k + p];
              const double* brow = pb + p * n;
              for (std::size_t jj = j; jj < j1; ++jj) {
                orow[jj] += aip * brow[jj];
              }
            }
          }
        }
      }
    }
  }
}

void gemm_s8_s32_avx2(const std::int8_t* a, const std::int8_t* b,
                      std::int32_t* c, std::size_t m, std::size_t k,
                      std::size_t n) {
  // Vectorized over the output columns: widen 8 int8 weights to int32 and
  // FMA-like accumulate against the broadcast activation.  int32
  // accumulation is exact and order-invariant, so this is bit-identical to
  // the scalar reference.
  for (std::size_t i = 0; i < m; ++i) {
    std::int32_t* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) crow[j] = 0;
    for (std::size_t p = 0; p < k; ++p) {
      const std::int32_t aip = a[i * k + p];
      const __m256i va = _mm256_set1_epi32(aip);
      const std::int8_t* brow = b + p * n;
      std::size_t j = 0;
      for (; j + 8 <= n; j += 8) {
        const __m128i b8 =
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(brow + j));
        const __m256i vb = _mm256_cvtepi8_epi32(b8);
        const __m256i prod = _mm256_mullo_epi32(va, vb);
        __m256i acc =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(crow + j));
        acc = _mm256_add_epi32(acc, prod);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + j), acc);
      }
      for (; j < n; ++j) crow[j] += aip * static_cast<std::int32_t>(brow[j]);
    }
  }
}

void vtanh_avx2(std::span<const double> x, std::span<double> y) {
  // Rational minimax approximation (numerator degree 13 odd / denominator
  // degree 6 even, the widely used fast-tanh form) with input clamped to
  // [-9, 9] where tanh has saturated to within 4e-8 of +-1.  Absolute error
  // vs std::tanh is < 1e-7 over the whole real line — the serving-path
  // tolerance contract of DESIGN.md section 13.  The scalar tail uses the
  // same polynomial so a vector/tail boundary cannot introduce a step.
  constexpr double kClamp = 9.0;
  constexpr double a1 = 4.89352455891786e-03;
  constexpr double a3 = 6.37261928875436e-04;
  constexpr double a5 = 1.48572235717979e-05;
  constexpr double a7 = 5.12229709037114e-08;
  constexpr double a9 = -8.60467152213735e-11;
  constexpr double a11 = 2.00018790482477e-13;
  constexpr double a13 = -2.76076847742355e-16;
  constexpr double b0 = 4.89352518554385e-03;
  constexpr double b2 = 2.26843463243900e-03;
  constexpr double b4 = 1.18534705686654e-04;
  constexpr double b6 = 1.19825839466702e-06;

  const auto tanh4 = [&](__m256d v) {
    const __m256d vclamp = _mm256_set1_pd(kClamp);
    const __m256d vnclamp = _mm256_set1_pd(-kClamp);
    v = _mm256_min_pd(_mm256_max_pd(v, vnclamp), vclamp);
    const __m256d v2 = _mm256_mul_pd(v, v);
    __m256d p = _mm256_set1_pd(a13);
    p = _mm256_fmadd_pd(p, v2, _mm256_set1_pd(a11));
    p = _mm256_fmadd_pd(p, v2, _mm256_set1_pd(a9));
    p = _mm256_fmadd_pd(p, v2, _mm256_set1_pd(a7));
    p = _mm256_fmadd_pd(p, v2, _mm256_set1_pd(a5));
    p = _mm256_fmadd_pd(p, v2, _mm256_set1_pd(a3));
    p = _mm256_fmadd_pd(p, v2, _mm256_set1_pd(a1));
    p = _mm256_mul_pd(p, v);
    __m256d q = _mm256_set1_pd(b6);
    q = _mm256_fmadd_pd(q, v2, _mm256_set1_pd(b4));
    q = _mm256_fmadd_pd(q, v2, _mm256_set1_pd(b2));
    q = _mm256_fmadd_pd(q, v2, _mm256_set1_pd(b0));
    return _mm256_div_pd(p, q);
  };

  const std::size_t n = x.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y.data() + i, tanh4(_mm256_loadu_pd(x.data() + i)));
  }
  if (i < n) {
    // Tail (<4): run the identical vector code on a padded copy so every
    // element sees bit-for-bit the same arithmetic regardless of where it
    // lands in a span — predict (1 row) and predict_batch (b rows) must
    // agree exactly.
    alignas(32) double pad_in[4] = {0.0, 0.0, 0.0, 0.0};
    alignas(32) double pad_out[4];
    for (std::size_t r = i; r < n; ++r) pad_in[r - i] = x[r];
    _mm256_store_pd(pad_out, tanh4(_mm256_load_pd(pad_in)));
    for (std::size_t r = i; r < n; ++r) y[r] = pad_out[r - i];
  }
}

void vrelu_avx2(std::span<const double> x, std::span<double> y) {
  const std::size_t n = x.size();
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y.data() + i,
                     _mm256_max_pd(_mm256_loadu_pd(x.data() + i), zero));
  }
  for (; i < n; ++i) y[i] = x[i] > 0.0 ? x[i] : 0.0;
}

}  // namespace le::tensor

#else  // non-x86: keep the symbols linkable; dispatch never selects them
       // because cpu_has_avx2_fma() is constant false.

namespace le::tensor {

void gemm_avx2(const Matrix& a, const Matrix& b, Matrix& out,
               const GemmBlocking& blocking) {
  gemm_blocked(a, b, out, blocking);
}

void gemm_s8_s32_avx2(const std::int8_t* a, const std::int8_t* b,
                      std::int32_t* c, std::size_t m, std::size_t k,
                      std::size_t n) {
  gemm_s8_s32_scalar(a, b, c, m, k, n);
}

void vtanh_avx2(std::span<const double> x, std::span<double> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::tanh(x[i]);
}

void vrelu_avx2(std::span<const double> x, std::span<double> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] > 0.0 ? x[i] : 0.0;
}

}  // namespace le::tensor

#endif

