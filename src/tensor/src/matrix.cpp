#include "le/tensor/matrix.hpp"

#include <stdexcept>

namespace le::tensor {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  if (rows * cols != data_.size()) {
    throw std::invalid_argument("Matrix::reshape: element count must be preserved");
  }
  rows_ = rows;
  cols_ = cols;
}

void Matrix::resize(std::size_t rows, std::size_t cols, double fill_value) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill_value);
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

Matrix identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

}  // namespace le::tensor
