#include "le/tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace le::tensor {

namespace {

void check_gemm_shapes(const Matrix& a, const Matrix& b, const Matrix& out) {
  if (a.cols() != b.rows() || out.rows() != a.rows() || out.cols() != b.cols()) {
    throw std::invalid_argument("gemm: shape mismatch");
  }
  // Every kernel zeroes `out` before accumulating, so an aliased output
  // silently corrupts the product; surfaced by the hot-path correctness
  // sweep, now a hard error in all gemm variants.
  if (&out == &a || &out == &b) {
    throw std::invalid_argument("gemm: out must not alias an input");
  }
}

}  // namespace

void gemm_naive(const Matrix& a, const Matrix& b, Matrix& out) {
  check_gemm_shapes(a, b, out);
  out.fill(0.0);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = a(i, p);
      const double* brow = b.data() + p * n;
      double* orow = out.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        orow[j] += aip * brow[j];
      }
    }
  }
}

void gemm_blocked(const Matrix& a, const Matrix& b, Matrix& out,
                  const GemmBlocking& blocking) {
  check_gemm_shapes(a, b, out);
  if (blocking.mc == 0 || blocking.kc == 0 || blocking.nc == 0) {
    throw std::invalid_argument("gemm_blocked: block sizes must be positive");
  }
  out.fill(0.0);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i0 = 0; i0 < m; i0 += blocking.mc) {
    const std::size_t i1 = std::min(i0 + blocking.mc, m);
    for (std::size_t p0 = 0; p0 < k; p0 += blocking.kc) {
      const std::size_t p1 = std::min(p0 + blocking.kc, k);
      for (std::size_t j0 = 0; j0 < n; j0 += blocking.nc) {
        const std::size_t j1 = std::min(j0 + blocking.nc, n);
        for (std::size_t i = i0; i < i1; ++i) {
          double* orow = out.data() + i * n;
          for (std::size_t p = p0; p < p1; ++p) {
            const double aip = a(i, p);
            const double* brow = b.data() + p * n;
            for (std::size_t j = j0; j < j1; ++j) {
              orow[j] += aip * brow[j];
            }
          }
        }
      }
    }
  }
}

void gemm(const Matrix& a, const Matrix& b, Matrix& out,
          const GemmPlan& plan) {
  // A pinned process-wide kernel (LE_KERNEL or set_gemm_kernel_override) is
  // the operator escape hatch and wins even over an explicit per-layer plan;
  // otherwise the plan decides, with kAuto deferring to the CPUID pick.
  GemmKernel kernel =
      gemm_kernel_forced() || plan.kernel == GemmKernel::kAuto
          ? active_gemm_kernel()
          : plan.kernel;
  if (kernel == GemmKernel::kAvx2 && !cpu_has_avx2_fma()) {
    kernel = GemmKernel::kScalar;  // degrade, never fault
  }
  switch (kernel) {
    case GemmKernel::kAvx2:
      gemm_avx2(a, b, out, plan.blocking);
      return;
    case GemmKernel::kAuto:
    case GemmKernel::kScalar:
      gemm_blocked(a, b, out, plan.blocking);
      return;
  }
}

void gemm_s8_s32_scalar(const std::int8_t* a, const std::int8_t* b,
                        std::int32_t* c, std::size_t m, std::size_t k,
                        std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    std::int32_t* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) crow[j] = 0;
    for (std::size_t p = 0; p < k; ++p) {
      const std::int32_t aip = a[i * k + p];
      const std::int8_t* brow = b + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += aip * static_cast<std::int32_t>(brow[j]);
      }
    }
  }
}

void gemm_s8_s32(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                 std::size_t m, std::size_t k, std::size_t n) {
  if (active_gemm_kernel() == GemmKernel::kAvx2) {
    gemm_s8_s32_avx2(a, b, c, m, k, n);
  } else {
    gemm_s8_s32_scalar(a, b, c, m, k, n);
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  gemm_naive(a, b, out);
  return out;
}

namespace {

void check_elementwise_spans(std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("elementwise op: length mismatch");
  }
  // Exact aliasing (in-place) is fine; partial overlap is not.
  if (x.data() != y.data() &&
      x.data() < y.data() + y.size() && y.data() < x.data() + x.size()) {
    throw std::invalid_argument("elementwise op: partial overlap");
  }
}

}  // namespace

void vtanh(std::span<const double> x, std::span<double> y) {
  check_elementwise_spans(x, y);
  if (active_gemm_kernel() == GemmKernel::kAvx2) {
    vtanh_avx2(x, y);
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::tanh(x[i]);
}

void vrelu(std::span<const double> x, std::span<double> y) {
  check_elementwise_spans(x, y);
  if (active_gemm_kernel() == GemmKernel::kAvx2) {
    vrelu_avx2(x, y);
    return;
  }
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] > 0.0 ? x[i] : 0.0;
}

void matvec(const Matrix& a, std::span<const double> x, std::span<double> out) {
  if (x.size() != a.cols() || out.size() != a.rows()) {
    throw std::invalid_argument("matvec: shape mismatch");
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.data() + i * a.cols();
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
    out[i] = acc;
  }
}

void matvec_transposed(const Matrix& a, std::span<const double> x,
                       std::span<double> out) {
  if (x.size() != a.rows() || out.size() != a.cols()) {
    throw std::invalid_argument("matvec_transposed: shape mismatch");
  }
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.data() + i * a.cols();
    const double xi = x[i];
    for (std::size_t j = 0; j < a.cols(); ++j) out[j] += row[j] * xi;
  }
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double dot(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("dot: length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

namespace {
void check_same_shape(const Matrix& a, const Matrix& b, const Matrix& c) {
  if (a.rows() != b.rows() || a.cols() != b.cols() || a.rows() != c.rows() ||
      a.cols() != c.cols()) {
    throw std::invalid_argument("elementwise op: shape mismatch");
  }
}
}  // namespace

void add(const Matrix& a, const Matrix& b, Matrix& c) {
  check_same_shape(a, b, c);
  for (std::size_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] + b.data()[i];
}

void sub(const Matrix& a, const Matrix& b, Matrix& c) {
  check_same_shape(a, b, c);
  for (std::size_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] - b.data()[i];
}

void hadamard(const Matrix& a, const Matrix& b, Matrix& c) {
  check_same_shape(a, b, c);
  for (std::size_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] * b.data()[i];
}

double frobenius_norm(const Matrix& a) { return norm2(a.flat()); }

double max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

}  // namespace le::tensor
