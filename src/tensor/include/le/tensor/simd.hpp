/// @file
/// Runtime SIMD kernel dispatch for the inference hot path.
///
/// The serving tier is math-floor-bound (E13): per-query cost is dominated
/// by the small-GEMM forward pass, so the S -> T_seq/T_lookup limit of the
/// paper's Section III-D effective-speedup equation is capped by kernel
/// throughput.  This header resolves, once per process, which GEMM
/// micro-kernel family the hardware can run (CPUID) and which one the
/// operator asked for (the LE_KERNEL environment override), and exposes the
/// result to tensor::gemm() and the per-layer autotuner.
///
/// Dispatch contract:
///   - kScalar is always available and is the correctness reference; every
///     other kernel must agree with it to the documented tolerance
///     (DESIGN.md section 13).
///   - kAvx2 is selected only when CPUID reports AVX2 *and* FMA; forcing it
///     on unsupported hardware falls back to scalar rather than faulting.
///   - LE_KERNEL=scalar|avx2|auto overrides the automatic choice for tests
///     and benches (auto = CPUID pick); set_gemm_kernel_override() does the
///     same in-process.
#pragma once

#include <optional>
#include <string>

namespace le::tensor {

/// GEMM micro-kernel families, in increasing hardware requirement order.
enum class GemmKernel {
  kAuto,    ///< resolve via active_gemm_kernel() at call time
  kScalar,  ///< portable blocked reference kernel (gemm_blocked)
  kAvx2,    ///< AVX2+FMA register-tiled micro-kernel (gemm_avx2)
};

[[nodiscard]] std::string to_string(GemmKernel kernel);

/// Parses "auto", "scalar" or "avx2" (the LE_KERNEL vocabulary); throws
/// std::invalid_argument on anything else.
[[nodiscard]] GemmKernel gemm_kernel_from_string(const std::string& name);

/// True when CPUID reports both AVX2 and FMA, i.e. gemm_avx2 may run.
[[nodiscard]] bool cpu_has_avx2_fma() noexcept;

/// The kernel the process resolved at first use: the LE_KERNEL environment
/// override when set (invalid values fall back to auto with a one-time
/// stderr warning), otherwise the best CPUID-supported kernel.  Never
/// returns kAuto, and never returns a kernel the CPU cannot run.
[[nodiscard]] GemmKernel default_gemm_kernel() noexcept;

/// In-process override for tests and benches: forces active_gemm_kernel()
/// to `kernel` (nullopt restores the default).  A forced kAvx2 on hardware
/// without AVX2/FMA still resolves to kScalar — the override selects among
/// runnable kernels, it cannot make hardware appear.
void set_gemm_kernel_override(std::optional<GemmKernel> kernel) noexcept;

/// The kernel gemm() dispatches to right now: the override when one is
/// set, else default_gemm_kernel().  Never kAuto, always runnable.
[[nodiscard]] GemmKernel active_gemm_kernel() noexcept;

/// True when the kernel choice was pinned explicitly — LE_KERNEL named a
/// concrete kernel (not "auto"), or set_gemm_kernel_override() holds a
/// value.  A pinned choice is an operator escape hatch: tensor::gemm()
/// honors it even over a per-layer tuned GemmPlan, so LE_KERNEL=scalar
/// reliably forces the reference kernel everywhere.
[[nodiscard]] bool gemm_kernel_forced() noexcept;

}  // namespace le::tensor
