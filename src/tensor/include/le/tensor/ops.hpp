/// @file
/// Dense linear-algebra kernels.
///
/// Every kernel exists in a plain (reference) form; gemm additionally has a
/// cache-blocked form whose block sizes are exposed as parameters so the
/// MLautotuning experiment (bench_gemm_blocking, the paper's ATLAS example)
/// can search over them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "le/tensor/matrix.hpp"
#include "le/tensor/simd.hpp"

namespace le::tensor {

/// Block sizes for the tiled GEMM.  The defaults suit small L1 caches; the
/// autotune library searches this space.
struct GemmBlocking {
  std::size_t mc = 64;  ///< rows of A per macro block
  std::size_t kc = 64;  ///< inner (shared) dimension per block
  std::size_t nc = 64;  ///< cols of B per macro block
};

/// A complete kernel choice for one GEMM call site: which micro-kernel
/// family runs it and at what blocking.  The per-layer inference autotuner
/// (nn::Network::autotune_inference, the ATLAS example generalized) searches
/// this space per layer shape; kAuto defers the kernel pick to
/// active_gemm_kernel() at call time.
struct GemmPlan {
  GemmKernel kernel = GemmKernel::kAuto;
  GemmBlocking blocking;
};

/// out = A * B (reference triple loop, ikj order). Shapes must conform.
/// `out` must not alias `a` or `b` (all gemm variants zero `out` first).
void gemm_naive(const Matrix& a, const Matrix& b, Matrix& out);

/// out = A * B with cache blocking. Bit-for-bit identical accumulation order
/// is NOT guaranteed relative to gemm_naive; results agree to rounding.
void gemm_blocked(const Matrix& a, const Matrix& b, Matrix& out,
                  const GemmBlocking& blocking = {});

/// out = A * B through the AVX2+FMA register-tiled micro-kernel (4x8 tiles
/// inside the same macro-block structure as gemm_blocked; tail rows/columns
/// fall back to the proven scalar inner loops).  Precondition:
/// cpu_has_avx2_fma() — call through gemm() for the checked dispatch.
/// Accumulation order differs from the scalar kernels; results agree to the
/// tolerance documented in DESIGN.md section 13.
void gemm_avx2(const Matrix& a, const Matrix& b, Matrix& out,
               const GemmBlocking& blocking = {});

/// out = A * B through the plan's kernel: kAuto resolves via
/// active_gemm_kernel() (CPUID + LE_KERNEL override), and a kernel the CPU
/// cannot run degrades to scalar rather than faulting.  This is the single
/// entry point of the serving hot path (nn::Layer::infer).
void gemm(const Matrix& a, const Matrix& b, Matrix& out,
          const GemmPlan& plan = {});

/// int8 GEMM with int32 accumulation for quantized inference:
/// c[i,j] = sum_p a[i,p] * b[p,j], row-major, no blocking (the shapes on
/// the quantized path are single layers, small enough to stream).  The
/// active kernel picks a SIMD implementation when available; the scalar
/// form is the reference.  Exact: integer accumulation is order-invariant,
/// so every kernel returns bit-identical results.
void gemm_s8_s32(const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                 std::size_t m, std::size_t k, std::size_t n);

/// Reference scalar int8 GEMM (same contract as gemm_s8_s32).
void gemm_s8_s32_scalar(const std::int8_t* a, const std::int8_t* b,
                        std::int32_t* c, std::size_t m, std::size_t k,
                        std::size_t n);

/// AVX2 int8 GEMM (same contract; precondition cpu_has_avx2_fma()).
void gemm_s8_s32_avx2(const std::int8_t* a, const std::int8_t* b,
                      std::int32_t* c, std::size_t m, std::size_t k,
                      std::size_t n);

/// Elementwise y = tanh(x) through the active kernel.  The scalar kernel is
/// std::tanh exactly; the AVX2 kernel uses a clamped rational minimax
/// approximation whose absolute error vs std::tanh is < 1e-7 (part of the
/// DESIGN.md section 13 tolerance contract).  x and y may alias exactly.
void vtanh(std::span<const double> x, std::span<double> y);

/// Elementwise y = max(x, 0) through the active kernel; exact on all paths.
/// x and y may alias exactly.
void vrelu(std::span<const double> x, std::span<double> y);

/// AVX2 implementations (precondition cpu_has_avx2_fma()); vtanh/vrelu
/// dispatch here when the active kernel is kAvx2.
void vtanh_avx2(std::span<const double> x, std::span<double> y);
void vrelu_avx2(std::span<const double> x, std::span<double> y);

/// Convenience allocating wrappers.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// out = A * x. x.size() must equal a.cols(); out.size() must equal a.rows().
void matvec(const Matrix& a, std::span<const double> x, std::span<double> out);

/// out = A^T * x. x.size() must equal a.rows(); out.size() must equal a.cols().
void matvec_transposed(const Matrix& a, std::span<const double> x,
                       std::span<double> out);

/// y += alpha * x (saxpy over spans of equal length).
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Dot product of two equal-length spans.
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm.
[[nodiscard]] double norm2(std::span<const double> x);

/// Elementwise in-place scale: x *= alpha.
void scale(double alpha, std::span<double> x);

/// c = a + b elementwise; all three must have identical shape.
void add(const Matrix& a, const Matrix& b, Matrix& c);

/// c = a - b elementwise; all three must have identical shape.
void sub(const Matrix& a, const Matrix& b, Matrix& c);

/// Elementwise (Hadamard) product c = a .* b.
void hadamard(const Matrix& a, const Matrix& b, Matrix& c);

/// Frobenius norm of a matrix.
[[nodiscard]] double frobenius_norm(const Matrix& a);

/// Max absolute elementwise difference between two equal-shaped matrices.
[[nodiscard]] double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace le::tensor
