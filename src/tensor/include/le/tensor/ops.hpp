/// @file
/// Dense linear-algebra kernels.
///
/// Every kernel exists in a plain (reference) form; gemm additionally has a
/// cache-blocked form whose block sizes are exposed as parameters so the
/// MLautotuning experiment (bench_gemm_blocking, the paper's ATLAS example)
/// can search over them.
#pragma once

#include <cstddef>
#include <span>

#include "le/tensor/matrix.hpp"

namespace le::tensor {

/// Block sizes for the tiled GEMM.  The defaults suit small L1 caches; the
/// autotune library searches this space.
struct GemmBlocking {
  std::size_t mc = 64;  ///< rows of A per macro block
  std::size_t kc = 64;  ///< inner (shared) dimension per block
  std::size_t nc = 64;  ///< cols of B per macro block
};

/// out = A * B (reference triple loop, ikj order). Shapes must conform.
void gemm_naive(const Matrix& a, const Matrix& b, Matrix& out);

/// out = A * B with cache blocking. Bit-for-bit identical accumulation order
/// is NOT guaranteed relative to gemm_naive; results agree to rounding.
void gemm_blocked(const Matrix& a, const Matrix& b, Matrix& out,
                  const GemmBlocking& blocking = {});

/// Convenience allocating wrappers.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// out = A * x. x.size() must equal a.cols(); out.size() must equal a.rows().
void matvec(const Matrix& a, std::span<const double> x, std::span<double> out);

/// out = A^T * x. x.size() must equal a.rows(); out.size() must equal a.cols().
void matvec_transposed(const Matrix& a, std::span<const double> x,
                       std::span<double> out);

/// y += alpha * x (saxpy over spans of equal length).
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Dot product of two equal-length spans.
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm.
[[nodiscard]] double norm2(std::span<const double> x);

/// Elementwise in-place scale: x *= alpha.
void scale(double alpha, std::span<double> x);

/// c = a + b elementwise; all three must have identical shape.
void add(const Matrix& a, const Matrix& b, Matrix& c);

/// c = a - b elementwise; all three must have identical shape.
void sub(const Matrix& a, const Matrix& b, Matrix& c);

/// Elementwise (Hadamard) product c = a .* b.
void hadamard(const Matrix& a, const Matrix& b, Matrix& c);

/// Frobenius norm of a matrix.
[[nodiscard]] double frobenius_norm(const Matrix& a);

/// Max absolute elementwise difference between two equal-shaped matrices.
[[nodiscard]] double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace le::tensor
