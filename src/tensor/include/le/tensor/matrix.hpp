/// @file
/// Dense row-major matrix type used throughout the Learning Everywhere stack.
///
/// The neural-network library (src/nn) stores weights and activations in
/// Matrix; the MD, epidemic and tissue substrates use it for observables and
/// field snapshots.  The type is intentionally small: owning storage, bounds
/// checked access in debug builds, and no expression templates — all heavy
/// kernels live in ops.hpp where they can be blocked and tuned explicitly.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace le::tensor {

/// Owning dense row-major matrix of doubles.
///
/// Invariants: data_.size() == rows_ * cols_ at all times; a
/// default-constructed matrix is the valid 0x0 matrix.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix with every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initializer lists; all rows must have the
  /// same length.  Intended for tests and small fixtures.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Contiguous view of one row.
  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<double> flat() noexcept { return {data_}; }
  [[nodiscard]] std::span<const double> flat() const noexcept { return {data_}; }

  void fill(double value) { data_.assign(data_.size(), value); }

  /// Reshapes in place; the new shape must preserve the element count.
  void reshape(std::size_t rows, std::size_t cols);

  /// Resizes, discarding contents; elements are value-initialized to `fill`.
  void resize(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] Matrix transposed() const;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Identity matrix of size n.
[[nodiscard]] Matrix identity(std::size_t n);

}  // namespace le::tensor
