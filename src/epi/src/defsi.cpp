#include "le/epi/defsi.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "le/nn/loss.hpp"
#include "le/nn/optimizer.hpp"
#include "le/nn/two_branch.hpp"

namespace le::epi {

namespace {

/// Curve distance over the weeks both series cover, ignoring the initial
/// delay-induced zeros.
double curve_distance(std::span<const double> observed,
                      std::span<const double> candidate,
                      std::size_t skip_weeks) {
  const std::size_t n = std::min(observed.size(), candidate.size());
  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t w = skip_weeks; w < n; ++w) {
    const double d = observed[w] - candidate[w];
    acc += d * d;
    ++counted;
  }
  return counted > 0 ? std::sqrt(acc / static_cast<double>(counted)) : 0.0;
}

}  // namespace

std::vector<ParameterCandidate> estimate_parameters(
    const ContactNetwork& network, std::span<const double> observed_state,
    const SeirParams& base_params, const DefsiConfig& config) {
  if (observed_state.empty()) {
    throw std::invalid_argument("estimate_parameters: no observations");
  }
  std::vector<ParameterCandidate> all;
  stats::Rng rng(config.seed);

  // Noise-free surveillance operator for candidate curves: the calibration
  // compares like with like (same reporting rate and delay as the data).
  SurveillanceParams clean = config.surveillance;
  clean.noise_sigma = 0.0;

  for (double tau : config.tau_grid) {
    for (std::size_t seeds : config.seed_grid) {
      ParameterCandidate cand;
      cand.params = base_params;
      cand.params.transmissibility = tau;
      cand.params.initial_infections = seeds;
      cand.params.seed = rng.split(all.size() + 1).seed();

      const MeanEpidemicCurve mean = run_seir_ensemble(
          network, cand.params, config.calibration_replicates);
      const SurveillanceData surveilled = observe_mean(mean.weekly_total, clean);
      cand.distance = curve_distance(observed_state, surveilled.state_weekly,
                                     config.surveillance.delay_weeks);
      all.push_back(cand);
    }
  }

  std::stable_sort(all.begin(), all.end(),
                   [](const ParameterCandidate& a, const ParameterCandidate& b) {
                     return a.distance < b.distance;
                   });
  all.resize(std::min(config.top_candidates, all.size()));

  // Gaussian kernel weights relative to the best distance.
  const double scale = std::max(all.front().distance, 1e-9);
  double total = 0.0;
  for (auto& c : all) {
    c.weight = std::exp(-0.5 * (c.distance * c.distance) / (scale * scale));
    total += c.weight;
  }
  for (auto& c : all) c.weight /= total;
  return all;
}

DefsiForecaster::DefsiForecaster(DefsiConfig config, std::size_t regions)
    : config_(std::move(config)), regions_(regions) {}

std::vector<double> DefsiForecaster::make_features(
    std::span<const double> observed_state, std::size_t week) const {
  if (week + 1 < config_.window) {
    throw std::invalid_argument("make_features: week before first full window");
  }
  if (week >= observed_state.size()) {
    throw std::invalid_argument("make_features: week beyond observations");
  }
  std::vector<double> f;
  f.reserve(config_.window + 3);
  // Branch A: the observed window, newest last, scaled.
  for (std::size_t k = 0; k < config_.window; ++k) {
    f.push_back(observed_state[week + 1 - config_.window + k] / input_scale_);
  }
  // Branch B: season context.
  f.push_back(static_cast<double>(week) / weeks_scale_);
  const double slope =
      (observed_state[week] - observed_state[week > 0 ? week - 1 : 0]) /
      input_scale_;
  f.push_back(slope);
  double cumulative = 0.0;
  for (std::size_t w = 0; w <= week; ++w) cumulative += observed_state[w];
  f.push_back(cumulative / (input_scale_ * weeks_scale_));
  return f;
}

DefsiForecaster DefsiForecaster::train(const ContactNetwork& network,
                                       std::span<const double> observed_state,
                                       const SeirParams& base_params,
                                       const DefsiConfig& config) {
  DefsiForecaster model(config, network.region_count());

  // ---- Module (i): parameter distribution ---------------------------
  model.candidates_ =
      estimate_parameters(network, observed_state, base_params, config);

  // ---- Module (ii): synthetic high-resolution training data ---------
  stats::Rng rng(config.seed);
  const std::size_t weeks = base_params.days / 7;
  model.weeks_scale_ = static_cast<double>(weeks);

  struct TrainingCurve {
    std::vector<double> observed_state;           // surveilled input stream
    std::vector<std::vector<std::size_t>> truth;  // per-region truth
  };
  std::vector<TrainingCurve> curves;

  for (std::size_t c = 0; c < model.candidates_.size(); ++c) {
    // Allocate simulations proportional to candidate weight.
    const auto sims = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::round(
               model.candidates_[c].weight *
               static_cast<double>(config.sims_per_candidate *
                                   model.candidates_.size()))));
    for (std::size_t s = 0; s < sims; ++s) {
      SeirParams p = model.candidates_[c].params;
      p.seed = rng.split(1000 * (c + 1) + s).seed();
      const EpidemicCurve curve = run_seir(network, p);
      SurveillanceParams sp = config.surveillance;
      sp.seed = rng.split(2000 * (c + 1) + s).seed();
      TrainingCurve tc;
      tc.observed_state = observe(curve, sp).state_weekly;
      tc.truth = curve.weekly_by_region;
      curves.push_back(std::move(tc));
    }
  }

  // Input/output scales from the synthetic corpus (robust to outliers:
  // 95th percentile of weekly counts).
  std::vector<double> all_vals;
  for (const auto& tc : curves) {
    all_vals.insert(all_vals.end(), tc.observed_state.begin(),
                    tc.observed_state.end());
  }
  std::sort(all_vals.begin(), all_vals.end());
  model.input_scale_ = std::max(
      1.0, all_vals[static_cast<std::size_t>(0.95 *
                                             static_cast<double>(all_vals.size() - 1))]);
  double max_truth = 1.0;
  for (const auto& tc : curves) {
    for (const auto& region : tc.truth) {
      for (std::size_t v : region) {
        max_truth = std::max(max_truth, static_cast<double>(v));
      }
    }
  }
  model.output_scale_ = max_truth;

  // Assemble samples: (features at week w) -> (per-region truth at w+1).
  const std::size_t feature_dim = config.window + 3;
  data::Dataset dataset(feature_dim, model.regions_);
  for (const auto& tc : curves) {
    const std::size_t n_weeks = std::min(tc.observed_state.size(),
                                         tc.truth.front().size());
    const std::size_t horizon = std::max<std::size_t>(1, config.horizon);
    for (std::size_t w = config.window - 1; w + horizon < n_weeks; ++w) {
      // Temporarily borrow the model's scaling to build features.
      const std::vector<double> f =
          model.make_features(tc.observed_state, w);
      std::vector<double> target(model.regions_);
      for (std::size_t r = 0; r < model.regions_; ++r) {
        target[r] =
            static_cast<double>(tc.truth[r][w + horizon]) / model.output_scale_;
      }
      dataset.add(f, target);
    }
  }
  model.n_samples_ = dataset.size();
  if (dataset.empty()) {
    throw std::runtime_error("DefsiForecaster::train: no training samples");
  }

  // ---- Module (iii): the two-branch network -------------------------
  nn::TwoBranchConfig tb;
  tb.branch_a.input_dim = config.window;
  tb.branch_a.hidden = config.branch_a_hidden;
  tb.branch_a.output_dim = config.branch_a_hidden.back();
  tb.branch_a.activation = nn::Activation::kRelu;
  tb.branch_b.input_dim = 3;
  tb.branch_b.hidden = config.branch_b_hidden;
  tb.branch_b.output_dim = config.branch_b_hidden.back();
  tb.branch_b.activation = nn::Activation::kRelu;
  tb.head_hidden = config.head_hidden;
  tb.output_dim = model.regions_;

  stats::Rng net_rng = rng.split(7);
  model.net_ = nn::make_two_branch_network(tb, net_rng);
  nn::AdamOptimizer opt(1e-2);
  const nn::MseLoss loss;
  stats::Rng fit_rng = rng.split(8);
  nn::fit(model.net_, dataset, loss, opt, config.train, fit_rng);
  return model;
}

std::vector<double> DefsiForecaster::forecast_regions(
    std::span<const double> observed_state, std::size_t week) const {
  const std::vector<double> f = make_features(observed_state, week);
  std::vector<double> out = net_.predict(f);
  for (double& v : out) v = std::max(0.0, v * output_scale_);
  return out;
}

double DefsiForecaster::forecast_state(std::span<const double> observed_state,
                                       std::size_t week) const {
  double total = 0.0;
  for (double v : forecast_regions(observed_state, week)) total += v;
  return total;
}

}  // namespace le::epi
