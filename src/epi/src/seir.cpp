#include "le/epi/seir.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace le::epi {

EpidemicCurve run_seir(const ContactNetwork& network, const SeirParams& params) {
  if (params.seed_region >= network.region_count()) {
    throw std::invalid_argument("run_seir: seed_region out of range");
  }
  stats::Rng rng(params.seed);

  const std::size_t n = network.size();
  std::vector<Health> state(n, Health::kSusceptible);
  std::vector<int> days_left(n, 0);

  // Seed initial infections in the seed region.
  const auto seed_pool = network.region_members(params.seed_region);
  if (seed_pool.empty()) throw std::invalid_argument("run_seir: empty seed region");
  std::size_t seeded = 0;
  for (std::size_t tries = 0;
       seeded < params.initial_infections && tries < 100 * params.initial_infections;
       ++tries) {
    const std::size_t who = seed_pool[rng.index(seed_pool.size())];
    if (state[who] == Health::kSusceptible) {
      state[who] = Health::kInfectious;
      days_left[who] = 1 + rng.geometric(1.0 / params.infectious_mean_days);
      ++seeded;
    }
  }

  const std::size_t regions = network.region_count();
  EpidemicCurve curve;
  curve.daily_by_region.assign(regions, std::vector<std::size_t>(params.days, 0));

  std::vector<std::size_t> infectious;
  std::vector<std::size_t> newly_exposed;

  for (std::size_t day = 0; day < params.days; ++day) {
    // Collect the currently infectious set.
    infectious.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (state[i] == Health::kInfectious) infectious.push_back(i);
    }

    // Transmission: each infectious node challenges its neighbours.
    newly_exposed.clear();
    for (std::size_t i : infectious) {
      for (const Contact& c : network.contacts(i)) {
        if (state[c.neighbour] != Health::kSusceptible) continue;
        const double p = 1.0 - std::exp(-params.transmissibility * c.weight);
        if (rng.bernoulli(p)) {
          state[c.neighbour] = Health::kExposed;
          days_left[c.neighbour] = 1 + rng.geometric(1.0 / params.latent_mean_days);
          newly_exposed.push_back(c.neighbour);
        }
      }
    }
    for (std::size_t who : newly_exposed) {
      ++curve.daily_by_region[network.person(who).region][day];
      ++curve.total_infected;
    }

    // Progression: E -> I, I -> R.
    for (std::size_t i = 0; i < n; ++i) {
      if (state[i] == Health::kExposed) {
        if (--days_left[i] <= 0) {
          state[i] = Health::kInfectious;
          days_left[i] = 1 + rng.geometric(1.0 / params.infectious_mean_days);
        }
      } else if (state[i] == Health::kInfectious) {
        if (--days_left[i] <= 0) state[i] = Health::kRecovered;
      }
    }
  }

  // Weekly aggregation.
  const std::size_t weeks = params.days / 7;
  curve.weekly_by_region.assign(regions, std::vector<std::size_t>(weeks, 0));
  curve.weekly_total.assign(weeks, 0);
  for (std::size_t r = 0; r < regions; ++r) {
    for (std::size_t w = 0; w < weeks; ++w) {
      std::size_t acc = 0;
      for (std::size_t d = 0; d < 7; ++d) acc += curve.daily_by_region[r][w * 7 + d];
      curve.weekly_by_region[r][w] = acc;
      curve.weekly_total[w] += acc;
    }
  }
  curve.peak_week = static_cast<std::size_t>(
      std::max_element(curve.weekly_total.begin(), curve.weekly_total.end()) -
      curve.weekly_total.begin());
  return curve;
}

MeanEpidemicCurve run_seir_ensemble(const ContactNetwork& network,
                                    const SeirParams& params,
                                    std::size_t replicates) {
  if (replicates == 0) throw std::invalid_argument("run_seir_ensemble: 0 replicates");
  MeanEpidemicCurve mean;
  const std::size_t regions = network.region_count();
  const std::size_t weeks = params.days / 7;
  mean.weekly_by_region.assign(regions, std::vector<double>(weeks, 0.0));
  mean.weekly_total.assign(weeks, 0.0);

  stats::Rng seeder(params.seed);
  for (std::size_t rep = 0; rep < replicates; ++rep) {
    SeirParams p = params;
    p.seed = seeder.split(rep + 1).seed();
    const EpidemicCurve curve = run_seir(network, p);
    for (std::size_t r = 0; r < regions; ++r) {
      for (std::size_t w = 0; w < weeks; ++w) {
        mean.weekly_by_region[r][w] +=
            static_cast<double>(curve.weekly_by_region[r][w]);
      }
    }
    for (std::size_t w = 0; w < weeks; ++w) {
      mean.weekly_total[w] += static_cast<double>(curve.weekly_total[w]);
    }
  }
  const double inv = 1.0 / static_cast<double>(replicates);
  for (auto& region : mean.weekly_by_region) {
    for (double& v : region) v *= inv;
  }
  for (double& v : mean.weekly_total) v *= inv;
  return mean;
}

}  // namespace le::epi
