#include "le/epi/surveillance.hpp"

#include <cmath>

namespace le::epi {

namespace {
std::vector<double> apply_model(const std::vector<double>& truth,
                                const SurveillanceParams& params) {
  stats::Rng rng(params.seed);
  std::vector<double> observed(truth.size(), 0.0);
  for (std::size_t w = 0; w < truth.size(); ++w) {
    if (w < params.delay_weeks) {
      observed[w] = 0.0;  // nothing reported yet
      continue;
    }
    const double base = truth[w - params.delay_weeks] * params.reporting_rate;
    const double noise = std::exp(rng.normal(0.0, params.noise_sigma));
    observed[w] = base * noise;
  }
  return observed;
}
}  // namespace

SurveillanceData observe(const EpidemicCurve& truth,
                         const SurveillanceParams& params) {
  std::vector<double> weekly(truth.weekly_total.size());
  for (std::size_t w = 0; w < weekly.size(); ++w) {
    weekly[w] = static_cast<double>(truth.weekly_total[w]);
  }
  return {apply_model(weekly, params)};
}

SurveillanceData observe_mean(const std::vector<double>& weekly_total,
                              const SurveillanceParams& params) {
  return {apply_model(weekly_total, params)};
}

}  // namespace le::epi
