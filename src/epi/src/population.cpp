#include "le/epi/population.hpp"

#include <algorithm>
#include <stdexcept>

namespace le::epi {

namespace {

/// Default per-layer transmission weights (household contacts are the most
/// intense, travel links the weakest).
double layer_weight(ContactLayer layer) {
  switch (layer) {
    case ContactLayer::kHousehold: return 1.0;
    case ContactLayer::kSchool: return 0.5;
    case ContactLayer::kWorkplace: return 0.4;
    case ContactLayer::kCommunity: return 0.25;
    case ContactLayer::kTravel: return 0.15;
  }
  return 0.25;
}

/// Adds an undirected edge (both adjacency directions).
void add_edge(std::vector<std::vector<Contact>>& adj, std::size_t a,
              std::size_t b, ContactLayer layer) {
  if (a == b) return;
  adj[a].push_back({b, layer_weight(layer), layer});
  adj[b].push_back({a, layer_weight(layer), layer});
}

/// Connects a group as a sparse random graph (each member linked to ~k
/// random others in the group); small groups become cliques.
void connect_group(std::vector<std::vector<Contact>>& adj,
                   const std::vector<std::size_t>& group, ContactLayer layer,
                   std::size_t k, stats::Rng& rng) {
  if (group.size() < 2) return;
  if (group.size() <= k + 1) {
    for (std::size_t a = 0; a < group.size(); ++a) {
      for (std::size_t b = a + 1; b < group.size(); ++b) {
        add_edge(adj, group[a], group[b], layer);
      }
    }
    return;
  }
  for (std::size_t a = 0; a < group.size(); ++a) {
    for (std::size_t e = 0; e < k; ++e) {
      std::size_t b = rng.index(group.size());
      if (b == a) b = (b + 1) % group.size();
      add_edge(adj, group[a], group[b], layer);
    }
  }
}

}  // namespace

ContactNetwork::ContactNetwork(std::vector<Person> people,
                               std::vector<std::vector<Contact>> adjacency,
                               std::size_t region_count)
    : people_(std::move(people)), adjacency_(std::move(adjacency)),
      region_count_(region_count) {
  if (people_.size() != adjacency_.size()) {
    throw std::invalid_argument("ContactNetwork: people/adjacency size mismatch");
  }
}

std::size_t ContactNetwork::edge_count() const {
  std::size_t total = 0;
  for (const auto& contacts : adjacency_) total += contacts.size();
  return total / 2;
}

std::vector<std::size_t> ContactNetwork::region_sizes() const {
  std::vector<std::size_t> sizes(region_count_, 0);
  for (const auto& p : people_) ++sizes[p.region];
  return sizes;
}

std::vector<std::size_t> ContactNetwork::region_members(std::size_t region) const {
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < people_.size(); ++i) {
    if (people_[i].region == region) members.push_back(i);
  }
  return members;
}

ContactNetwork generate_population(const PopulationConfig& config) {
  if (config.regions.empty()) {
    throw std::invalid_argument("generate_population: need >= 1 region");
  }
  stats::Rng rng(config.seed);
  std::vector<Person> people;
  std::vector<std::vector<std::size_t>> region_children(config.regions.size());
  std::vector<std::vector<std::size_t>> region_adults(config.regions.size());

  // --- People and households ------------------------------------------
  std::size_t household_id = 0;
  for (std::size_t r = 0; r < config.regions.size(); ++r) {
    const auto& rc = config.regions[r];
    for (std::size_t hh = 0; hh < rc.households; ++hh, ++household_id) {
      const int extra = rng.poisson(std::max(0.0, rc.mean_household_size - 1.0));
      const std::size_t members = 1 + static_cast<std::size_t>(extra);
      std::vector<std::size_t> household_members;
      for (std::size_t m = 0; m < members; ++m) {
        Person p;
        p.region = r;
        p.household = household_id;
        // First member is always an adult; the rest mix by child_fraction.
        p.age = (m > 0 && rng.bernoulli(config.child_fraction))
                    ? AgeGroup::kChild
                    : AgeGroup::kAdult;
        household_members.push_back(people.size());
        if (p.age == AgeGroup::kChild) {
          region_children[r].push_back(people.size());
        } else {
          region_adults[r].push_back(people.size());
        }
        people.push_back(p);
      }
    }
  }

  std::vector<std::vector<Contact>> adj(people.size());

  // Household cliques.
  {
    std::vector<std::vector<std::size_t>> households(household_id);
    for (std::size_t i = 0; i < people.size(); ++i) {
      households[people[i].household].push_back(i);
    }
    for (const auto& hh : households) {
      for (std::size_t a = 0; a < hh.size(); ++a) {
        for (std::size_t b = a + 1; b < hh.size(); ++b) {
          add_edge(adj, hh[a], hh[b], ContactLayer::kHousehold);
        }
      }
    }
  }

  // Schools (children) and workplaces (adults), per region.
  for (std::size_t r = 0; r < config.regions.size(); ++r) {
    const auto& rc = config.regions[r];
    auto assign_groups = [&](std::vector<std::size_t>& members,
                             std::size_t group_size, ContactLayer layer) {
      rng.shuffle(std::span<std::size_t>{members});
      for (std::size_t start = 0; start < members.size(); start += group_size) {
        const std::size_t end = std::min(start + group_size, members.size());
        std::vector<std::size_t> group(members.begin() + static_cast<std::ptrdiff_t>(start),
                                       members.begin() + static_cast<std::ptrdiff_t>(end));
        connect_group(adj, group, layer, 4, rng);
      }
    };
    assign_groups(region_children[r], rc.school_size, ContactLayer::kSchool);
    assign_groups(region_adults[r], rc.workplace_size, ContactLayer::kWorkplace);

    // Community random links within the region.
    std::vector<std::size_t> all_members;
    all_members.insert(all_members.end(), region_children[r].begin(),
                       region_children[r].end());
    all_members.insert(all_members.end(), region_adults[r].begin(),
                       region_adults[r].end());
    const auto links = static_cast<std::size_t>(
        rc.community_degree * static_cast<double>(all_members.size()) / 2.0);
    for (std::size_t e = 0; e < links; ++e) {
      const std::size_t a = all_members[rng.index(all_members.size())];
      const std::size_t b = all_members[rng.index(all_members.size())];
      add_edge(adj, a, b, ContactLayer::kCommunity);
    }
  }

  // Inter-region travel links.
  if (config.regions.size() > 1) {
    const auto links = static_cast<std::size_t>(
        config.travel_degree * static_cast<double>(people.size()) / 2.0);
    for (std::size_t e = 0; e < links; ++e) {
      const std::size_t a = rng.index(people.size());
      std::size_t b = rng.index(people.size());
      // Resample until the endpoint is in a different region (bounded).
      for (int tries = 0; tries < 16 && people[b].region == people[a].region;
           ++tries) {
        b = rng.index(people.size());
      }
      if (people[b].region != people[a].region) {
        add_edge(adj, a, b, ContactLayer::kTravel);
      }
    }
  }

  return ContactNetwork(std::move(people), std::move(adj),
                        config.regions.size());
}

}  // namespace le::epi
