#include "le/epi/baselines.hpp"

#include <cmath>
#include <stdexcept>

namespace le::epi {

EpiFastForecaster EpiFastForecaster::calibrate(
    const ContactNetwork& network, std::span<const double> observed_state,
    const SeirParams& base_params, const DefsiConfig& config,
    std::size_t forecast_replicates) {
  // Reuse module (i) but keep only the single best candidate (point
  // estimate instead of a distribution — the key difference from DEFSI).
  DefsiConfig point = config;
  point.top_candidates = 1;
  const auto candidates =
      estimate_parameters(network, observed_state, base_params, point);

  EpiFastForecaster model;
  model.params_ = candidates.front().params;
  model.mean_curve_ =
      run_seir_ensemble(network, model.params_, forecast_replicates);
  return model;
}

std::vector<double> EpiFastForecaster::forecast_regions(std::size_t week) const {
  const std::size_t target = week + 1;
  std::vector<double> out(mean_curve_.weekly_by_region.size(), 0.0);
  for (std::size_t r = 0; r < out.size(); ++r) {
    const auto& series = mean_curve_.weekly_by_region[r];
    out[r] = target < series.size() ? series[target] : series.back();
  }
  return out;
}

double EpiFastForecaster::forecast_state(std::size_t week) const {
  double total = 0.0;
  for (double v : forecast_regions(week)) total += v;
  return total;
}

Ar2Forecaster::Ar2Forecaster(double reporting_rate,
                             std::vector<double> region_shares)
    : reporting_rate_(reporting_rate), region_shares_(std::move(region_shares)) {
  if (reporting_rate_ <= 0.0) {
    throw std::invalid_argument("Ar2Forecaster: reporting rate must be > 0");
  }
}

double Ar2Forecaster::forecast_state(std::span<const double> observed_state,
                                     std::size_t week) const {
  if (week >= observed_state.size()) {
    throw std::invalid_argument("Ar2Forecaster: week beyond observations");
  }
  // Least-squares fit of y_t = a y_{t-1} + b y_{t-2} + c on data <= week.
  if (week < 3) {
    return observed_state[week] / reporting_rate_;  // not enough history
  }
  double sxx[3][3] = {{0}}, sxy[3] = {0};
  for (std::size_t t = 2; t <= week; ++t) {
    const double x[3] = {observed_state[t - 1], observed_state[t - 2], 1.0};
    const double y = observed_state[t];
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) sxx[i][j] += x[i] * x[j];
      sxy[i] += x[i] * y;
    }
  }
  // Solve the 3x3 normal equations by Gaussian elimination with a ridge
  // term for stability.
  double a[3][4];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) a[i][j] = sxx[i][j] + (i == j ? 1e-6 : 0.0);
    a[i][3] = sxy[i];
  }
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int row = col + 1; row < 3; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    std::swap(a[col], a[pivot]);
    if (std::abs(a[col][col]) < 1e-12) return observed_state[week] / reporting_rate_;
    for (int row = 0; row < 3; ++row) {
      if (row == col) continue;
      const double factor = a[row][col] / a[col][col];
      for (int j = col; j < 4; ++j) a[row][j] -= factor * a[col][j];
    }
  }
  const double coef_a = a[0][3] / a[0][0];
  const double coef_b = a[1][3] / a[1][1];
  const double coef_c = a[2][3] / a[2][2];
  const double pred_observed =
      coef_a * observed_state[week] + coef_b * observed_state[week - 1] + coef_c;
  return std::max(0.0, pred_observed) / reporting_rate_;
}

std::vector<double> Ar2Forecaster::forecast_regions(
    std::span<const double> observed_state, std::size_t week) const {
  const double state = forecast_state(observed_state, week);
  std::vector<double> out(region_shares_.size());
  for (std::size_t r = 0; r < out.size(); ++r) out[r] = state * region_shares_[r];
  return out;
}

double persistence_forecast_state(std::span<const double> observed_state,
                                  std::size_t week, double reporting_rate) {
  if (week >= observed_state.size()) {
    throw std::invalid_argument("persistence: week beyond observations");
  }
  return observed_state[week] / reporting_rate;
}

std::vector<double> persistence_forecast_regions(
    std::span<const double> observed_state, std::size_t week,
    double reporting_rate, std::span<const double> region_shares) {
  const double state =
      persistence_forecast_state(observed_state, week, reporting_rate);
  std::vector<double> out(region_shares.size());
  for (std::size_t r = 0; r < out.size(); ++r) out[r] = state * region_shares[r];
  return out;
}

std::vector<double> population_shares(const ContactNetwork& network) {
  const auto sizes = network.region_sizes();
  std::vector<double> shares(sizes.size());
  const double total = static_cast<double>(network.size());
  for (std::size_t r = 0; r < sizes.size(); ++r) {
    shares[r] = static_cast<double>(sizes[r]) / total;
  }
  return shares;
}

}  // namespace le::epi
