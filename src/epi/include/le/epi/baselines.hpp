/// @file
/// Baseline forecasters the paper's DEFSI claim is made against.
///
///  - EpiFastForecaster: the mechanistic baseline — calibrate the agent
///    model to a single best parameter set, run a forward ensemble, and
///    read forecasts off the mean simulated curve (how EpiFast-style
///    forecasting operates).
///  - Ar2Forecaster: the pure data-driven baseline — an AR(2) model fitted
///    to the observed state-level series alone.  It "cannot discover higher
///    resolution details from lower resolution ground truth data": its
///    county forecasts are the state forecast split by static population
///    shares.
///  - persistence: next week = this week, the weakest reference point.
#pragma once

#include <span>
#include <vector>

#include "le/epi/defsi.hpp"
#include "le/epi/population.hpp"
#include "le/epi/seir.hpp"

namespace le::epi {

/// Mechanistic single-point-calibration forecaster.
class EpiFastForecaster {
 public:
  /// Calibrates on observed data (module-(i)-style grid search, keeping
  /// only the single best candidate) and precomputes the forward ensemble.
  static EpiFastForecaster calibrate(const ContactNetwork& network,
                                     std::span<const double> observed_state,
                                     const SeirParams& base_params,
                                     const DefsiConfig& config,
                                     std::size_t forecast_replicates = 10);

  /// Per-region forecast of true incidence in week `week + 1` (reads the
  /// calibrated ensemble-mean curve).
  [[nodiscard]] std::vector<double> forecast_regions(std::size_t week) const;
  [[nodiscard]] double forecast_state(std::size_t week) const;

  [[nodiscard]] const SeirParams& calibrated_params() const noexcept {
    return params_;
  }

 private:
  SeirParams params_;
  MeanEpidemicCurve mean_curve_;
};

/// AR(2) on the observed state series (scaled by the reporting rate so its
/// forecasts are in true-incidence units).
class Ar2Forecaster {
 public:
  /// `region_shares` are static per-region population fractions used to
  /// downscale the state forecast.
  Ar2Forecaster(double reporting_rate, std::vector<double> region_shares);

  /// Fits on observations up to and including `week` and predicts week+1.
  [[nodiscard]] double forecast_state(std::span<const double> observed_state,
                                      std::size_t week) const;
  [[nodiscard]] std::vector<double> forecast_regions(
      std::span<const double> observed_state, std::size_t week) const;

 private:
  double reporting_rate_;
  std::vector<double> region_shares_;
};

/// Persistence: next week's truth = this week's observation / rate.
[[nodiscard]] double persistence_forecast_state(
    std::span<const double> observed_state, std::size_t week,
    double reporting_rate);
[[nodiscard]] std::vector<double> persistence_forecast_regions(
    std::span<const double> observed_state, std::size_t week,
    double reporting_rate, std::span<const double> region_shares);

/// Static per-region population shares of a network.
[[nodiscard]] std::vector<double> population_shares(const ContactNetwork& network);

}  // namespace le::epi
