/// @file
/// Stochastic network SEIR dynamics (paper Section II-A; ref [18]).
///
/// Discrete daily time steps on the contact network: susceptibles are
/// exposed by infectious neighbours with per-contact probability
/// 1 - exp(-tau * w), exposed become infectious after a geometric latent
/// period, infectious recover after a geometric infectious period.  The
/// simulator reports daily and weekly new-infection counts per region —
/// the high-resolution ground truth the surveillance model will coarsen.
#pragma once

#include <cstdint>
#include <vector>

#include "le/epi/population.hpp"
#include "le/stats/rng.hpp"

namespace le::epi {

enum class Health : std::uint8_t { kSusceptible, kExposed, kInfectious, kRecovered };

struct SeirParams {
  double transmissibility = 0.05;  ///< tau: per-contact-day infection scale
  double latent_mean_days = 2.0;
  double infectious_mean_days = 4.0;
  std::size_t initial_infections = 5;
  /// Region that receives the initial seeds (epidemics typically enter
  /// through one region and travel — part of the county heterogeneity).
  std::size_t seed_region = 0;
  std::size_t days = 140;  ///< simulated horizon (20 weeks)
  std::uint64_t seed = 23;
};

struct EpidemicCurve {
  /// new infections per day, per region: [region][day].
  std::vector<std::vector<std::size_t>> daily_by_region;
  /// new infections per ISO-style 7-day week, per region: [region][week].
  std::vector<std::vector<std::size_t>> weekly_by_region;
  /// state-level weekly incidence (sum over regions).
  std::vector<std::size_t> weekly_total;
  std::size_t total_infected = 0;
  std::size_t peak_week = 0;
};

/// Runs one stochastic SEIR realization on the network.
[[nodiscard]] EpidemicCurve run_seir(const ContactNetwork& network,
                                     const SeirParams& params);

/// Averaged weekly curves over `replicates` stochastic runs (seeds derived
/// from params.seed); returns means as doubles: [region][week] and total.
struct MeanEpidemicCurve {
  std::vector<std::vector<double>> weekly_by_region;
  std::vector<double> weekly_total;
};
[[nodiscard]] MeanEpidemicCurve run_seir_ensemble(const ContactNetwork& network,
                                                  const SeirParams& params,
                                                  std::size_t replicates);

}  // namespace le::epi
