/// @file
/// Synthetic population and multi-layer contact network.
///
/// The DEFSI / EpiFast line of work (paper Section II-A) runs epidemics on
/// synthetic populations whose contact structure mixes household, school,
/// workplace and community layers, partitioned into administrative regions
/// ("counties").  This generator reproduces that structure at laptop scale:
/// individual-level heterogeneity is what makes county-level forecasting
/// from state-level data hard, so the network must preserve it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "le/stats/rng.hpp"

namespace le::epi {

enum class AgeGroup : std::uint8_t { kChild, kAdult };

enum class ContactLayer : std::uint8_t {
  kHousehold,
  kSchool,
  kWorkplace,
  kCommunity,
  kTravel  ///< inter-region links
};

struct Person {
  std::size_t region = 0;
  AgeGroup age = AgeGroup::kAdult;
  std::size_t household = 0;
};

struct Contact {
  std::size_t neighbour = 0;
  /// Per-layer transmission weight multiplier.
  double weight = 1.0;
  ContactLayer layer = ContactLayer::kCommunity;
};

/// Per-region generation knobs; regions may differ (that heterogeneity is
/// the county-level signal DEFSI exploits).
struct RegionConfig {
  std::size_t households = 400;
  double mean_household_size = 3.0;  ///< Poisson(mean-1)+1
  std::size_t school_size = 25;
  std::size_t workplace_size = 10;
  /// Mean number of random community contacts per person within a region.
  double community_degree = 4.0;
};

struct PopulationConfig {
  std::vector<RegionConfig> regions = {RegionConfig{}, RegionConfig{}};
  /// Mean inter-region travel contacts per person.
  double travel_degree = 0.2;
  std::uint64_t seed = 17;
  /// Fraction of each household that is children.
  double child_fraction = 0.35;
};

/// Immutable multi-layer contact graph.
class ContactNetwork {
 public:
  ContactNetwork(std::vector<Person> people,
                 std::vector<std::vector<Contact>> adjacency,
                 std::size_t region_count);

  [[nodiscard]] std::size_t size() const noexcept { return people_.size(); }
  [[nodiscard]] std::size_t region_count() const noexcept { return region_count_; }
  [[nodiscard]] const Person& person(std::size_t i) const { return people_.at(i); }
  [[nodiscard]] const std::vector<Contact>& contacts(std::size_t i) const {
    return adjacency_.at(i);
  }
  [[nodiscard]] std::size_t edge_count() const;
  [[nodiscard]] std::vector<std::size_t> region_sizes() const;
  /// All node indices belonging to one region.
  [[nodiscard]] std::vector<std::size_t> region_members(std::size_t region) const;

 private:
  std::vector<Person> people_;
  std::vector<std::vector<Contact>> adjacency_;
  std::size_t region_count_;
};

/// Generates the synthetic population network.
[[nodiscard]] ContactNetwork generate_population(const PopulationConfig& config);

}  // namespace le::epi
