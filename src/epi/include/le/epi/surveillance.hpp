/// @file
/// Surveillance observation model (paper Section II-A).
///
/// Real surveillance data is "of low spatial temporal resolution (weekly at
/// state level), not real time (at least one week delay), incomplete
/// (reported cases are only a small fraction of actual ones), and noisy
/// (adjusted several times after being published)".  This model coarsens a
/// simulated ground-truth epidemic exactly that way, producing the sparse
/// observable stream the forecasting methods must work from.
#pragma once

#include <cstdint>
#include <vector>

#include "le/epi/seir.hpp"
#include "le/stats/rng.hpp"

namespace le::epi {

struct SurveillanceParams {
  /// Fraction of true infections that get reported.
  double reporting_rate = 0.3;
  /// Multiplicative log-normal noise scale on weekly reports.
  double noise_sigma = 0.15;
  /// Weeks of reporting delay (observations lag the truth).
  std::size_t delay_weeks = 1;
  std::uint64_t seed = 29;
};

struct SurveillanceData {
  /// Observed state-level weekly counts; index w is the report available
  /// at the END of week w (already delayed).
  std::vector<double> state_weekly;
};

/// Applies the observation model to a ground-truth curve.  Only the
/// state-level aggregate is observed — the per-region truth is hidden,
/// which is precisely the resolution gap DEFSI bridges.
[[nodiscard]] SurveillanceData observe(const EpidemicCurve& truth,
                                       const SurveillanceParams& params);

/// Same observation model applied to a real-valued (ensemble-mean) curve.
[[nodiscard]] SurveillanceData observe_mean(const std::vector<double>& weekly_total,
                                            const SurveillanceParams& params);

}  // namespace le::epi
