/// @file
/// DEFSI: Deep Learning Based Epidemic Forecasting with Synthetic
/// Information (paper Section II-A, ref [19]).
///
/// The three modules, exactly as the paper describes them:
///  (i)   model configuration: estimate a distribution over agent-model
///        parameters from coarse surveillance data;
///  (ii)  synthetic training data: run HPC simulations parameterized from
///        those distributions, producing high-resolution (per-region)
///        training curves;
///  (iii) a two-branch deep network trained on the synthetic dataset that
///        makes detailed (county-level) forecasts from coarse (state-level)
///        surveillance inputs.
///
/// Branch A consumes the recent window of observed state-level incidence
/// ("within-season" signal); branch B consumes season-context features
/// (week index, trend, cumulative attack so far).  The output is next-week
/// true incidence for every region simultaneously.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "le/data/dataset.hpp"
#include "le/epi/population.hpp"
#include "le/epi/seir.hpp"
#include "le/epi/surveillance.hpp"
#include "le/nn/network.hpp"
#include "le/nn/train.hpp"

namespace le::epi {

/// One calibrated parameter hypothesis with its posterior-style weight.
struct ParameterCandidate {
  SeirParams params;
  double distance = 0.0;  ///< curve mismatch vs observations
  double weight = 0.0;    ///< normalized exp(-distance^2 / (2 s^2))
};

struct DefsiConfig {
  /// Branch-A window length (weeks of observed incidence).
  std::size_t window = 4;
  /// Forecast horizon in weeks: the network predicts true incidence at
  /// week + horizon from observations up to `week` (DEFSI reports
  /// multi-week-ahead forecasts; 1 = next week).
  std::size_t horizon = 1;
  /// Candidate transmissibility grid for module (i).
  std::vector<double> tau_grid = {0.03, 0.04, 0.05, 0.06, 0.07, 0.08};
  /// Candidate initial-infection counts for module (i).
  std::vector<std::size_t> seed_grid = {3, 6, 10};
  /// Ensemble replicates per candidate during calibration.
  std::size_t calibration_replicates = 3;
  /// Candidates kept for training-data generation.
  std::size_t top_candidates = 4;
  /// Stochastic simulations per kept candidate in module (ii).
  std::size_t sims_per_candidate = 8;
  /// Surveillance model used to synthesize realistic (noisy, delayed,
  /// under-reported) training inputs — must match the real observation
  /// process for consistency.
  SurveillanceParams surveillance;
  /// Two-branch network sizes.
  std::vector<std::size_t> branch_a_hidden = {24};
  std::vector<std::size_t> branch_b_hidden = {8};
  std::vector<std::size_t> head_hidden = {24};
  nn::TrainConfig train;
  std::uint64_t seed = 31;
};

/// Module (i): score the (tau, seeds) grid against the observed curve and
/// return the weighted top candidates.
[[nodiscard]] std::vector<ParameterCandidate> estimate_parameters(
    const ContactNetwork& network, std::span<const double> observed_state,
    const SeirParams& base_params, const DefsiConfig& config);

/// Trained DEFSI model: forecasts per-region next-week TRUE incidence from
/// the observed state-level window.
class DefsiForecaster {
 public:
  /// Runs modules (i)-(iii) end to end.
  static DefsiForecaster train(const ContactNetwork& network,
                               std::span<const double> observed_state,
                               const SeirParams& base_params,
                               const DefsiConfig& config);

  /// Per-region forecast of true incidence in week `week + horizon`,
  /// given the observations up to and including `week`.
  [[nodiscard]] std::vector<double> forecast_regions(
      std::span<const double> observed_state, std::size_t week) const;

  /// State-level forecast (sum of the regional forecasts).
  [[nodiscard]] double forecast_state(std::span<const double> observed_state,
                                      std::size_t week) const;

  [[nodiscard]] const std::vector<ParameterCandidate>& candidates() const noexcept {
    return candidates_;
  }
  [[nodiscard]] std::size_t training_samples() const noexcept { return n_samples_; }
  [[nodiscard]] std::size_t region_count() const noexcept { return regions_; }

  /// Builds the (branch A ++ branch B) feature row for a forecast at
  /// `week` from a state-level curve.  Public for tests.
  [[nodiscard]] std::vector<double> make_features(
      std::span<const double> observed_state, std::size_t week) const;

 private:
  DefsiForecaster(DefsiConfig config, std::size_t regions);

  DefsiConfig config_;
  std::size_t regions_;
  mutable nn::Network net_;  // predict() caches activations internally
  std::vector<ParameterCandidate> candidates_;
  std::size_t n_samples_ = 0;
  double input_scale_ = 1.0;   ///< normalization for incidence inputs
  double output_scale_ = 1.0;  ///< normalization for incidence outputs
  double weeks_scale_ = 1.0;
};

}  // namespace le::epi
