#include "le/kernels/ccd.hpp"

#include <cmath>
#include <future>
#include <stdexcept>

namespace le::kernels {

namespace {

void check_shapes(const tensor::Matrix& x, const std::vector<double>& y) {
  if (x.rows() != y.size() || x.rows() == 0 || x.cols() == 0) {
    throw std::invalid_argument("ccd: shape mismatch or empty problem");
  }
}

/// Column j of a row-major matrix, gathered (CCD is column-centric).
std::vector<double> gather_column(const tensor::Matrix& x, std::size_t j) {
  std::vector<double> col(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) col[i] = x(i, j);
  return col;
}

}  // namespace

double ridge_objective(const tensor::Matrix& features,
                       const std::vector<double>& targets,
                       const std::vector<double>& weights, double l2) {
  double obj = 0.0;
  for (std::size_t i = 0; i < features.rows(); ++i) {
    double pred = 0.0;
    auto row = features.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) pred += row[j] * weights[j];
    const double err = targets[i] - pred;
    obj += 0.5 * err * err;
  }
  for (double w : weights) obj += 0.5 * l2 * w * w;
  return obj;
}

CcdResult ccd_ridge(const tensor::Matrix& features,
                    const std::vector<double>& targets,
                    const CcdConfig& config) {
  check_shapes(features, targets);
  const std::size_t n = features.rows(), d = features.cols();

  // Precompute columns and their squared norms.
  std::vector<std::vector<double>> cols(d);
  std::vector<double> col_sq(d);
  for (std::size_t j = 0; j < d; ++j) {
    cols[j] = gather_column(features, j);
    double acc = 0.0;
    for (double v : cols[j]) acc += v * v;
    col_sq[j] = acc;
  }

  CcdResult result;
  result.weights.assign(d, 0.0);
  std::vector<double> residual(targets);  // r = y - Xw, w = 0

  for (std::size_t sweep = 0; sweep < config.sweeps; ++sweep) {
    double max_change = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      if (col_sq[j] == 0.0) continue;
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) dot += cols[j][i] * residual[i];
      const double updated =
          (dot + col_sq[j] * result.weights[j]) / (col_sq[j] + config.l2);
      const double delta = updated - result.weights[j];
      if (delta != 0.0) {
        for (std::size_t i = 0; i < n; ++i) residual[i] -= delta * cols[j][i];
        result.weights[j] = updated;
      }
      max_change = std::max(max_change, std::abs(delta));
    }
    ++result.sweeps;
    result.objective_trace.push_back(
        ridge_objective(features, targets, result.weights, config.l2));
    if (max_change < config.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

CcdResult ccd_ridge_rotation(const tensor::Matrix& features,
                             const std::vector<double>& targets,
                             const CcdConfig& config, std::size_t workers,
                             runtime::ThreadPool* pool) {
  check_shapes(features, targets);
  if (workers == 0) throw std::invalid_argument("ccd_rotation: 0 workers");
  const std::size_t n = features.rows(), d = features.cols();
  const std::size_t block = (d + workers - 1) / workers;

  std::vector<std::vector<double>> cols(d);
  std::vector<double> col_sq(d);
  for (std::size_t j = 0; j < d; ++j) {
    cols[j] = gather_column(features, j);
    double acc = 0.0;
    for (double v : cols[j]) acc += v * v;
    col_sq[j] = acc;
  }

  CcdResult result;
  result.weights.assign(d, 0.0);
  std::vector<double> residual(targets);

  for (std::size_t sweep = 0; sweep < config.sweeps; ++sweep) {
    double max_change = 0.0;
    // One full rotation: `workers` steps; in step t worker w owns block
    // (w + t) mod workers.  Because blocks are disjoint, all workers can
    // update concurrently against the shared residual SNAPSHOT.
    for (std::size_t step = 0; step < workers; ++step) {
      const std::vector<double> snapshot = residual;
      std::vector<std::vector<double>> deltas(workers);

      const auto process_block = [&](std::size_t worker) {
        const std::size_t owned = (worker + step) % workers;
        const std::size_t lo = owned * block;
        const std::size_t hi = std::min(lo + block, d);
        auto& delta = deltas[worker];
        delta.assign(hi > lo ? hi - lo : 0, 0.0);
        // Local CCD pass over the owned block against a private residual.
        std::vector<double> local(snapshot);
        for (std::size_t j = lo; j < hi; ++j) {
          if (col_sq[j] == 0.0) continue;
          double dot = 0.0;
          for (std::size_t i = 0; i < n; ++i) dot += cols[j][i] * local[i];
          const double updated =
              (dot + col_sq[j] * result.weights[j]) / (col_sq[j] + config.l2);
          const double dw = updated - result.weights[j];
          delta[j - lo] = dw;
          if (dw != 0.0) {
            for (std::size_t i = 0; i < n; ++i) local[i] -= dw * cols[j][i];
          }
        }
      };

      if (pool && workers > 1) {
        std::vector<std::future<void>> futures;
        for (std::size_t w = 0; w < workers; ++w) {
          futures.push_back(pool->submit([&, w] { process_block(w); }));
        }
        for (auto& f : futures) f.get();
      } else {
        for (std::size_t w = 0; w < workers; ++w) process_block(w);
      }

      // Apply the disjoint deltas and refresh the shared residual.
      for (std::size_t w = 0; w < workers; ++w) {
        const std::size_t owned = (w + step) % workers;
        const std::size_t lo = owned * block;
        for (std::size_t idx = 0; idx < deltas[w].size(); ++idx) {
          const double dw = deltas[w][idx];
          if (dw == 0.0) continue;
          const std::size_t j = lo + idx;
          result.weights[j] += dw;
          for (std::size_t i = 0; i < n; ++i) residual[i] -= dw * cols[j][i];
          max_change = std::max(max_change, std::abs(dw));
        }
      }
    }
    ++result.sweeps;
    result.objective_trace.push_back(
        ridge_objective(features, targets, result.weights, config.l2));
    if (max_change < config.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace le::kernels
