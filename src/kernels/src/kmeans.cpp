#include "le/kernels/kmeans.hpp"

#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>

namespace le::kernels {

namespace {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// k-means++ seeding: first centroid uniform, subsequent ones proportional
/// to squared distance from the nearest chosen centroid.
tensor::Matrix seed_centroids(const tensor::Matrix& points, std::size_t k,
                              stats::Rng& rng) {
  const std::size_t n = points.rows();
  tensor::Matrix centroids(k, points.cols());
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());

  std::size_t first = rng.index(n);
  for (std::size_t c = 0; c < points.cols(); ++c) {
    centroids(0, c) = points(first, c);
  }
  for (std::size_t kk = 1; kk < k; ++kk) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], squared_distance(points.row(i),
                                               centroids.row(kk - 1)));
      total += d2[i];
    }
    // Sample proportional to d2.
    double target = rng.uniform(0.0, total);
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= d2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    for (std::size_t c = 0; c < points.cols(); ++c) {
      centroids(kk, c) = points(chosen, c);
    }
  }
  return centroids;
}

}  // namespace

double kmeans_inertia(const tensor::Matrix& points,
                      const tensor::Matrix& centroids) {
  double total = 0.0;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < centroids.rows(); ++k) {
      best = std::min(best, squared_distance(points.row(i), centroids.row(k)));
    }
    total += best;
  }
  return total;
}

KMeansResult kmeans(const tensor::Matrix& points, const KMeansConfig& config,
                    runtime::ThreadPool* pool) {
  if (points.rows() == 0) throw std::invalid_argument("kmeans: no points");
  if (config.clusters == 0 || config.clusters > points.rows()) {
    throw std::invalid_argument("kmeans: bad cluster count");
  }
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();
  const std::size_t k = config.clusters;

  stats::Rng rng(config.seed);
  KMeansResult result;
  result.centroids = seed_centroids(points, k, rng);
  result.assignment.assign(n, 0);

  // Per-chunk partial sums, merged after the parallel assignment — the
  // shared-memory image of the Allreduce pattern (each "rank" reduces its
  // shard, partials are combined, everyone sees the same new centroids).
  const std::size_t chunks = pool ? pool->thread_count() : 1;
  std::vector<tensor::Matrix> partial_sums(chunks);
  std::vector<std::vector<std::size_t>> partial_counts(chunks);

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    for (auto& m : partial_sums) m.resize(k, dim, 0.0);
    for (auto& v : partial_counts) v.assign(k, 0);

    const auto assign_range = [&](std::size_t chunk, std::size_t lo,
                                  std::size_t hi) {
      auto& sums = partial_sums[chunk];
      auto& counts = partial_counts[chunk];
      for (std::size_t i = lo; i < hi; ++i) {
        double best = std::numeric_limits<double>::infinity();
        std::size_t best_k = 0;
        for (std::size_t kk = 0; kk < k; ++kk) {
          const double d = squared_distance(points.row(i),
                                            result.centroids.row(kk));
          if (d < best) {
            best = d;
            best_k = kk;
          }
        }
        result.assignment[i] = best_k;
        auto row = points.row(i);
        for (std::size_t c = 0; c < dim; ++c) sums(best_k, c) += row[c];
        ++counts[best_k];
      }
    };

    if (pool) {
      const std::size_t per_chunk = (n + chunks - 1) / chunks;
      std::vector<std::future<void>> futures;
      for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
        const std::size_t lo = chunk * per_chunk;
        const std::size_t hi = std::min(lo + per_chunk, n);
        if (lo >= hi) break;
        futures.push_back(
            pool->submit([&, chunk, lo, hi] { assign_range(chunk, lo, hi); }));
      }
      for (auto& f : futures) f.get();
    } else {
      assign_range(0, 0, n);
    }

    // Reduce partials and move centroids.
    double movement = 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
      std::size_t count = 0;
      std::vector<double> sum(dim, 0.0);
      for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
        count += partial_counts[chunk][kk];
        for (std::size_t c = 0; c < dim; ++c) {
          sum[c] += partial_sums[chunk](kk, c);
        }
      }
      if (count == 0) continue;  // empty cluster keeps its centroid
      for (std::size_t c = 0; c < dim; ++c) {
        const double updated = sum[c] / static_cast<double>(count);
        movement += std::abs(updated - result.centroids(kk, c));
        result.centroids(kk, c) = updated;
      }
    }

    ++result.iterations;
    result.inertia_trace.push_back(kmeans_inertia(points, result.centroids));
    if (movement < config.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.inertia = result.inertia_trace.empty()
                       ? kmeans_inertia(points, result.centroids)
                       : result.inertia_trace.back();
  return result;
}

}  // namespace le::kernels
