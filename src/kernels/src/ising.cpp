#include "le/kernels/ising.hpp"

#include <cmath>
#include <future>
#include <stdexcept>

namespace le::kernels {

IsingModel::IsingModel(std::size_t side, double temperature, std::uint64_t seed)
    : side_(side), temperature_(temperature), spins_(side * side, 1),
      rng_(seed) {
  if (side < 2) throw std::invalid_argument("IsingModel: side must be >= 2");
  if (temperature <= 0.0) {
    throw std::invalid_argument("IsingModel: temperature must be > 0");
  }
  // Random initial configuration.
  for (int& s : spins_) s = rng_.bernoulli(0.5) ? 1 : -1;
  // Independent streams for parallel chunks.
  for (std::size_t c = 0; c < 64; ++c) {
    colour_rngs_.push_back(rng_.split(1000 + c));
  }
}

void IsingModel::initialize_ordered() {
  for (int& s : spins_) s = 1;
}

int IsingModel::neighbour_sum(std::size_t x, std::size_t y) const {
  const std::size_t xm = (x + side_ - 1) % side_;
  const std::size_t xp = (x + 1) % side_;
  const std::size_t ym = (y + side_ - 1) % side_;
  const std::size_t yp = (y + 1) % side_;
  return spins_[y * side_ + xm] + spins_[y * side_ + xp] +
         spins_[ym * side_ + x] + spins_[yp * side_ + x];
}

void IsingModel::update_site(std::size_t x, std::size_t y, stats::Rng& rng) {
  // Heat-bath (Gibbs) update: P(s = +1 | neighbours) = sigmoid(2 beta h).
  const double field = static_cast<double>(neighbour_sum(x, y));
  const double p_up = 1.0 / (1.0 + std::exp(-2.0 * field / temperature_));
  spins_[y * side_ + x] = rng.uniform() < p_up ? 1 : -1;
}

void IsingModel::sweep_sequential() {
  for (std::size_t y = 0; y < side_; ++y) {
    for (std::size_t x = 0; x < side_; ++x) {
      update_site(x, y, rng_);
    }
  }
}

void IsingModel::sweep_chromatic(runtime::ThreadPool* pool) {
  // Colour 0: (x + y) even; colour 1: odd.  Same-colour sites have no
  // shared neighbours, so their heat-bath updates commute.
  for (int colour = 0; colour < 2; ++colour) {
    const std::size_t rows = side_;
    const std::size_t chunks =
        pool ? std::min<std::size_t>(pool->thread_count(), colour_rngs_.size())
             : 1;
    const std::size_t rows_per_chunk = (rows + chunks - 1) / chunks;

    const auto update_rows = [&](std::size_t chunk) {
      stats::Rng& rng = colour_rngs_[chunk];
      const std::size_t lo = chunk * rows_per_chunk;
      const std::size_t hi = std::min(lo + rows_per_chunk, rows);
      for (std::size_t y = lo; y < hi; ++y) {
        for (std::size_t x = (y + static_cast<std::size_t>(colour)) % 2;
             x < side_; x += 2) {
          update_site(x, y, rng);
        }
      }
    };

    if (pool && chunks > 1) {
      std::vector<std::future<void>> futures;
      for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
        futures.push_back(pool->submit([&, chunk] { update_rows(chunk); }));
      }
      for (auto& f : futures) f.get();
    } else {
      for (std::size_t chunk = 0; chunk < chunks; ++chunk) update_rows(chunk);
    }
  }
}

double IsingModel::magnetization() const {
  long total = 0;
  for (int s : spins_) total += s;
  return static_cast<double>(total) / static_cast<double>(spins_.size());
}

double IsingModel::energy_per_spin() const {
  long total = 0;
  for (std::size_t y = 0; y < side_; ++y) {
    for (std::size_t x = 0; x < side_; ++x) {
      // Count right and down bonds only (each bond once).
      const std::size_t xp = (x + 1) % side_;
      const std::size_t yp = (y + 1) % side_;
      total += spins_[y * side_ + x] *
               (spins_[y * side_ + xp] + spins_[yp * side_ + x]);
    }
  }
  return -static_cast<double>(total) / static_cast<double>(spins_.size());
}

IsingObservables measure_ising(std::size_t side, double temperature,
                               std::size_t equilibration_sweeps,
                               std::size_t measurement_sweeps,
                               std::uint64_t seed, runtime::ThreadPool* pool) {
  IsingModel model(side, temperature, seed);
  for (std::size_t s = 0; s < equilibration_sweeps; ++s) {
    model.sweep_chromatic(pool);
  }
  IsingObservables obs;
  for (std::size_t s = 0; s < measurement_sweeps; ++s) {
    model.sweep_chromatic(pool);
    obs.mean_abs_magnetization += std::abs(model.magnetization());
    obs.mean_energy_per_spin += model.energy_per_spin();
    ++obs.sweeps;
  }
  if (obs.sweeps > 0) {
    obs.mean_abs_magnetization /= static_cast<double>(obs.sweeps);
    obs.mean_energy_per_spin /= static_cast<double>(obs.sweeps);
  }
  return obs;
}

}  // namespace le::kernels
