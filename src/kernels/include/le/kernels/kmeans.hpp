/// @file
/// K-means clustering — one of the four parallel ML kernels the paper's
/// Section III-A studies ("Gibbs Sampling, Stochastic Gradient Descent
/// (SGD), Cyclic Coordinate Descent (CCD) and K-means clustering ...
/// fundamental for large-scale data analysis").
///
/// K-means is the canonical Allreduce-model kernel: each worker assigns its
/// shard of points to the nearest centroid, partial sums are
/// allreduce-combined, and everyone applies the identical centroid update.
/// The implementation runs serially or over a ThreadPool (the shared-memory
/// stand-in for the paper's distributed workers); both paths produce
/// identical results for a fixed seed.
#pragma once

#include <cstdint>
#include <vector>

#include "le/runtime/thread_pool.hpp"
#include "le/stats/rng.hpp"
#include "le/tensor/matrix.hpp"

namespace le::kernels {

struct KMeansConfig {
  std::size_t clusters = 4;
  std::size_t max_iterations = 100;
  /// Stop when the total centroid movement drops below this.
  double tolerance = 1e-6;
  std::uint64_t seed = 13;
};

struct KMeansResult {
  tensor::Matrix centroids;            ///< (k x dim)
  std::vector<std::size_t> assignment; ///< per point
  double inertia = 0.0;                ///< sum of squared distances
  std::size_t iterations = 0;
  bool converged = false;
  /// Inertia after each iteration (must be non-increasing).
  std::vector<double> inertia_trace;
};

/// Lloyd's algorithm with k-means++ seeding.  `pool` may be null (serial).
[[nodiscard]] KMeansResult kmeans(const tensor::Matrix& points,
                                  const KMeansConfig& config,
                                  runtime::ThreadPool* pool = nullptr);

/// Sum of squared distances of each point to its nearest centroid.
[[nodiscard]] double kmeans_inertia(const tensor::Matrix& points,
                                    const tensor::Matrix& centroids);

}  // namespace le::kernels
