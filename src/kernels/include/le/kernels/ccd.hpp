/// @file
/// Cyclic Coordinate Descent for ridge regression — the paper's CCD kernel
/// (Section III-A), and the natural fit for the ROTATION computation model:
/// coordinates partition into disjoint blocks, each worker exactly solves
/// its owned block, and ownership rotates so every worker touches every
/// block (the Harp model-rotation pattern the paper's group built).
///
/// For least squares each coordinate update is exact:
///   w_j <- (x_j . r + (x_j . x_j) w_j) / (x_j . x_j + lambda)
/// where r is the current residual; the residual is maintained
/// incrementally, giving O(n) per coordinate update.
#pragma once

#include <cstddef>
#include <vector>

#include "le/runtime/thread_pool.hpp"
#include "le/tensor/matrix.hpp"

namespace le::kernels {

struct CcdConfig {
  std::size_t sweeps = 50;
  double l2 = 1e-6;
  /// Stop when the max coordinate change in a sweep drops below this.
  double tolerance = 1e-10;
};

struct CcdResult {
  std::vector<double> weights;
  std::size_t sweeps = 0;
  bool converged = false;
  /// Objective 0.5 ||y - Xw||^2 + 0.5 l2 ||w||^2 after each sweep.
  std::vector<double> objective_trace;
};

/// Serial cyclic coordinate descent.
[[nodiscard]] CcdResult ccd_ridge(const tensor::Matrix& features,
                                  const std::vector<double>& targets,
                                  const CcdConfig& config);

/// Rotation-parallel CCD: coordinates are split into `workers` blocks; in
/// each "rotation step" every worker sweeps ITS current block against a
/// residual snapshot, the disjoint weight updates are applied, the shared
/// residual is rebuilt, and block ownership rotates.  One full rotation
/// (= `workers` steps) touches every coordinate once, like a serial sweep
/// but with block-stale residuals — the accuracy/parallelism trade the
/// paper's Rotation model makes.
[[nodiscard]] CcdResult ccd_ridge_rotation(const tensor::Matrix& features,
                                           const std::vector<double>& targets,
                                           const CcdConfig& config,
                                           std::size_t workers,
                                           runtime::ThreadPool* pool = nullptr);

/// Ridge objective 0.5 ||y - Xw||^2 + 0.5 l2 ||w||^2.
[[nodiscard]] double ridge_objective(const tensor::Matrix& features,
                                     const std::vector<double>& targets,
                                     const std::vector<double>& weights,
                                     double l2);

}  // namespace le::kernels
