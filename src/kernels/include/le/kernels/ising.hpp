/// @file
/// Gibbs sampling on the 2-D Ising model — the paper's MCMC kernel class
/// (Section III-A: "Gibbs Sampling ... cover several important categories:
/// Markov Chain Monte Carlo (MCMC)").
///
/// Sequential Gibbs sweeps are inherently serial (each update conditions on
/// the latest neighbours); the classic parallelization is CHROMATIC Gibbs:
/// on a checkerboard colouring, all same-colour sites are conditionally
/// independent and can be updated concurrently.  That is the Ising image of
/// the paper's Rotation/Locking discussion: correctness demands either
/// serialization or a colouring that makes concurrent writes disjoint.
/// Research issue 9's caveat ("statistical physics problems may need
/// different techniques than ... deterministic time evolutions") is exactly
/// about kernels like this one.
#pragma once

#include <cstdint>
#include <vector>

#include "le/runtime/thread_pool.hpp"
#include "le/stats/rng.hpp"

namespace le::kernels {

/// Square-lattice Ising model with periodic boundaries, J = 1, h = 0.
/// The exact critical temperature is T_c = 2 / ln(1 + sqrt(2)) ~ 2.269.
class IsingModel {
 public:
  IsingModel(std::size_t side, double temperature, std::uint64_t seed);

  /// Resets every spin to +1 (the ordered ground state).  Standard when
  /// measuring below T_c, where coarsening from a random start takes
  /// O(L^2) sweeps.
  void initialize_ordered();

  /// One sequential Gibbs sweep (typewriter order).
  void sweep_sequential();

  /// One chromatic (checkerboard) sweep: all black sites, then all white
  /// sites, each colour updated in parallel over the pool.  `pool` may be
  /// null, which still uses the chromatic schedule but runs serially.
  void sweep_chromatic(runtime::ThreadPool* pool);

  [[nodiscard]] std::size_t side() const noexcept { return side_; }
  [[nodiscard]] double temperature() const noexcept { return temperature_; }

  /// Mean magnetization per spin, in [-1, 1].
  [[nodiscard]] double magnetization() const;

  /// Energy per spin (J = 1 convention: E = -sum_<ij> s_i s_j / N).
  [[nodiscard]] double energy_per_spin() const;

  [[nodiscard]] int spin(std::size_t x, std::size_t y) const {
    return spins_[y * side_ + x];
  }

  /// Known exact critical temperature of the infinite lattice.
  static constexpr double kCriticalTemperature = 2.269185314213022;

 private:
  [[nodiscard]] int neighbour_sum(std::size_t x, std::size_t y) const;
  void update_site(std::size_t x, std::size_t y, stats::Rng& rng);

  std::size_t side_;
  double temperature_;
  std::vector<int> spins_;
  stats::Rng rng_;
  std::vector<stats::Rng> colour_rngs_;  ///< one per chunk for chromatic sweeps
};

/// Convenience driver: equilibrate then measure <|m|> and <E>/N.
struct IsingObservables {
  double mean_abs_magnetization = 0.0;
  double mean_energy_per_spin = 0.0;
  std::size_t sweeps = 0;
};

[[nodiscard]] IsingObservables measure_ising(std::size_t side, double temperature,
                                             std::size_t equilibration_sweeps,
                                             std::size_t measurement_sweeps,
                                             std::uint64_t seed,
                                             runtime::ThreadPool* pool = nullptr);

}  // namespace le::kernels
