#!/usr/bin/env python3
"""Documentation lint for the public headers.

Runs as the `docs` CMake target's fallback when Doxygen is not installed
(and as a fast pre-check when it is), so the doc-comment conventions are
enforced on every machine:

  1. every public header under src/*/include starts with a Doxygen
     `/// @file` overview block, and the block actually says something: the
     line after `/// @file` must be a `///` line with descriptive text (a
     bare `@file` marker documents nothing and renders as an empty page);
  2. block comments are balanced (an unterminated `/*` swallows code and
     Doxygen mis-parses the rest of the file);
  3. `///` and `///<` comments use only known Doxygen commands (catches
     typos like `@parma` that Doxygen would silently drop);
  4. `//!` style is not used (the repo standardizes on `///`);
  5. `///<` trailing comments follow code, never start a line.

Exit status 0 and a one-line summary when clean; nonzero with one
`file:line: message` per finding otherwise.
"""

import re
import sys
from pathlib import Path

KNOWN_COMMANDS = {
    "file", "brief", "param", "tparam", "return", "returns", "retval",
    "note", "warning", "see", "sa", "code", "endcode", "throws", "throw",
    "exception", "pre", "post", "copydoc", "defgroup", "ingroup", "name",
    "p", "c", "e", "em", "b", "n", "f", "ref", "anchor", "section",
    "subsection", "verbatim", "endverbatim", "li", "todo", "deprecated",
}

COMMAND_RE = re.compile(r"[@\\]([A-Za-z]+)")


def lint_file(path: Path) -> list:
    findings = []
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()

    # (1) file-top /// @file block with a real description under it.
    first_idx, first = next(
        ((i, ln) for i, ln in enumerate(lines) if ln.strip()), (0, ""))
    if not first.startswith("/// @file"):
        findings.append((1, "header must start with a '/// @file' block"))
    else:
        after = lines[first_idx + 1] if first_idx + 1 < len(lines) else ""
        body = after.strip()
        if not (body.startswith("///") and body.lstrip("/").strip()):
            findings.append(
                (first_idx + 2,
                 "'/// @file' must be followed by a '///' description line"))

    in_block = False
    block_open_line = 0
    for i, line in enumerate(lines, 1):
        # (2) balanced block comments, tracked line by line.
        rest = line
        while rest:
            if not in_block:
                # Ignore markers inside line comments.
                cut = rest.find("//")
                opener = rest.find("/*")
                if opener == -1 or (cut != -1 and cut < opener):
                    break
                in_block = True
                block_open_line = i
                rest = rest[opener + 2:]
            else:
                closer = rest.find("*/")
                if closer == -1:
                    break
                in_block = False
                rest = rest[closer + 2:]

        stripped = line.strip()
        # (4) no //! style.
        if stripped.startswith("//!"):
            findings.append((i, "use '///' doc comments, not '//!'"))
        # (5) ///< must trail code.
        if stripped.startswith("///<"):
            findings.append((i, "'///<' is a trailing comment; use '///'"))
        # (3) known commands only, inside doc comments.
        marker = line.find("///")
        if marker != -1:
            for match in COMMAND_RE.finditer(line[marker:]):
                cmd = match.group(1)
                if cmd not in KNOWN_COMMANDS and not cmd.isupper():
                    findings.append(
                        (i, f"unknown documentation command '{match.group(0)}'"))
    if in_block:
        findings.append((block_open_line, "unterminated block comment"))
    return findings


def main(argv: list) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(".")
    headers = sorted(root.glob("src/*/include/**/*.hpp"))
    if not headers:
        print(f"doc-lint: no headers found under {root}/src", file=sys.stderr)
        return 2
    total = 0
    for header in headers:
        for line, message in lint_file(header):
            print(f"{header}:{line}: {message}", file=sys.stderr)
            total += 1
    if total:
        print(f"doc-lint: {total} problem(s) in {len(headers)} headers",
              file=sys.stderr)
        return 1
    print(f"doc-lint: {len(headers)} headers clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
