#!/usr/bin/env python3
"""Compare two bench metrics snapshots and fail on regression.

The bench binaries (run with LE_METRICS=1) emit one machine-readable line

    metrics-json <bench-id> {"counters":{...},"gauges":{...},"histograms":{...}}

per run (bench/report.hpp::emit_metrics).  This tool diffs two such
snapshots — given either as raw JSON files (e.g. a saved BENCH_E9.json) or
as full bench stdout logs the line is grepped out of — and exits nonzero
when a named metric regresses past its threshold, so the perf trajectory
of the repo is machine-checkable:

    ./build/bench/bench_serving > old.log   # on main
    ./build/bench/bench_serving > new.log   # on the branch
    tools/bench_compare.py old.log new.log \
        --check histograms.serve.batch_latency.p99:20 \
        --check +counters.dispatch.surrogate_answers

Metric names are flattened dotted paths: ``counters.<name>``,
``gauges.<name>`` and ``histograms.<name>.<field>`` with fields
count/sum/mean/min/max/p50/p95/p99.  A check is ``NAME[:MAX_PCT]``; the
threshold defaults to --default-max-pct.  Lower is better by default
(latencies, error rates); prefix the name with ``+`` for higher-is-better
metrics (throughput, hit counts), which fail when the candidate *drops*
by more than the threshold.

``--self-test`` runs the built-in unit checks (used by the
``bench-compare`` CMake target) and needs no input files.
"""

import argparse
import json
import re
import sys

METRICS_JSON_RE = re.compile(r"^metrics-json\s+(\S+)\s+(\{.*\})\s*$")
HISTOGRAM_FIELDS = ("count", "sum", "mean", "min", "max", "p50", "p95", "p99")


def load_snapshot(path, bench_id=None):
    """Returns the snapshot dict from a raw JSON file or a bench log."""
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return json.loads(stripped)
    found = {}
    for line in text.splitlines():
        m = METRICS_JSON_RE.match(line.strip())
        if m:
            found[m.group(1)] = json.loads(m.group(2))
    if not found:
        raise SystemExit(
            f"{path}: neither raw JSON nor any 'metrics-json <id> {{...}}' line")
    if bench_id is not None:
        if bench_id not in found:
            raise SystemExit(
                f"{path}: no metrics-json line for id '{bench_id}' "
                f"(have: {', '.join(sorted(found))})")
        return found[bench_id]
    if len(found) > 1:
        raise SystemExit(
            f"{path}: multiple metrics-json ids ({', '.join(sorted(found))}); "
            "disambiguate with --id")
    return next(iter(found.values()))


def flatten(snapshot):
    """Flattens a snapshot into {dotted-name: float}."""
    flat = {}
    for name, value in snapshot.get("counters", {}).items():
        flat[f"counters.{name}"] = float(value)
    for name, value in snapshot.get("gauges", {}).items():
        flat[f"gauges.{name}"] = float(value)
    for name, hist in snapshot.get("histograms", {}).items():
        for field in HISTOGRAM_FIELDS:
            if field in hist:
                flat[f"histograms.{name}.{field}"] = float(hist[field])
    return flat


def parse_check(spec, default_max_pct):
    """'NAME[:MAX_PCT]' with optional '+' prefix -> (name, max_pct, higher)."""
    higher_is_better = spec.startswith("+")
    if higher_is_better:
        spec = spec[1:]
    name, sep, pct = spec.partition(":")
    if not name:
        raise SystemExit(f"--check '{spec}': empty metric name")
    if sep:
        try:
            max_pct = float(pct)
        except ValueError:
            raise SystemExit(f"--check '{spec}': bad threshold '{pct}'")
    else:
        max_pct = default_max_pct
    if max_pct < 0:
        raise SystemExit(f"--check '{spec}': negative threshold")
    return name, max_pct, higher_is_better


def change_pct(base, cand):
    """Signed percent change, with 0 -> 0 and 0 -> x treated as +inf."""
    if base == 0.0:
        return 0.0 if cand == 0.0 else float("inf")
    return 100.0 * (cand - base) / abs(base)


def evaluate(base_flat, cand_flat, checks):
    """Returns (report_rows, failures) for the named checks."""
    rows, failures = [], []
    for name, max_pct, higher in checks:
        if name not in base_flat or name not in cand_flat:
            missing = "baseline" if name not in base_flat else "candidate"
            failures.append(f"{name}: missing from {missing} snapshot")
            rows.append((name, None, None, None, "MISSING"))
            continue
        base, cand = base_flat[name], cand_flat[name]
        pct = change_pct(base, cand)
        regressed = (-pct if higher else pct) > max_pct
        verdict = "FAIL" if regressed else "ok"
        rows.append((name, base, cand, pct, verdict))
        if regressed:
            direction = "dropped" if higher else "rose"
            failures.append(
                f"{name}: {direction} {abs(pct):.2f}% "
                f"({base:.6g} -> {cand:.6g}, limit {max_pct:g}%)")
    return rows, failures


def print_report(rows, extra_common):
    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'metric':<{width}}  {'baseline':>14}  {'candidate':>14}  "
          f"{'change':>9}  verdict")
    for name, base, cand, pct, verdict in rows:
        if base is None:
            print(f"{name:<{width}}  {'-':>14}  {'-':>14}  {'-':>9}  {verdict}")
        else:
            pct_s = "+inf%" if pct == float("inf") else f"{pct:+.2f}%"
            print(f"{name:<{width}}  {base:>14.6g}  {cand:>14.6g}  "
                  f"{pct_s:>9}  {verdict}")
    if extra_common:
        print(f"({extra_common} shared metrics not under a --check; "
              "add them to guard more of the surface)")


def self_test():
    log = """header noise
metrics-json E9 {"counters":{"dispatch.surrogate_answers":900},
"gauges":{"speedup.live":21.5},
"histograms":{"serve.batch_latency":{"count":900,"sum":0.9,"mean":0.001,
"min":0.0005,"max":0.004,"p50":0.0009,"p95":0.002,"p99":0.003}}}
trailer noise""".replace("\n", " ").replace("header noise ", "header\n") \
        .replace(" trailer noise", "\ntrailer")
    base = {
        "counters": {"hits": 100.0, "zero": 0.0},
        "gauges": {"speedup": 20.0},
        "histograms": {"lat": {"count": 10, "mean": 1.0, "p99": 2.0}},
    }

    failures = []

    def check(ok, what):
        if not ok:
            failures.append(what)

    # metrics-json extraction from a log (written to a temp-free buffer by
    # round-tripping through the regex the same way load_snapshot does).
    m = METRICS_JSON_RE.match(
        [l for l in log.splitlines() if l.startswith("metrics-json")][0])
    check(m is not None and m.group(1) == "E9", "metrics-json line parses")
    snap = json.loads(m.group(2))
    flat = flatten(snap)
    check(flat["counters.dispatch.surrogate_answers"] == 900.0,
          "counter flattens")
    check(flat["histograms.serve.batch_latency.p99"] == 0.003,
          "histogram p99 flattens")
    check("histograms.serve.batch_latency.min" in flat, "histogram min kept")

    # check parsing
    check(parse_check("a.b:5", 10.0) == ("a.b", 5.0, False), "explicit pct")
    check(parse_check("+a.b", 10.0) == ("a.b", 10.0, True), "higher-better")

    # regression math, both directions plus the zero-baseline edge
    flat_base = flatten(base)
    worse = {
        "counters": {"hits": 80.0, "zero": 3.0},
        "gauges": {"speedup": 25.0},
        "histograms": {"lat": {"count": 10, "mean": 1.3, "p99": 2.05}},
    }
    rows, fails = evaluate(flat_base, flatten(worse), [
        ("histograms.lat.mean", 10.0, False),   # +30% -> FAIL
        ("histograms.lat.p99", 10.0, False),    # +2.5% -> ok
        ("counters.hits", 10.0, True),          # -20% higher-better -> FAIL
        ("gauges.speedup", 10.0, True),         # +25% higher-better -> ok
        ("counters.zero", 10.0, False),         # 0 -> 3 = +inf -> FAIL
        ("counters.absent", 10.0, False),       # missing -> FAIL
    ])
    verdicts = {r[0]: r[4] for r in rows}
    check(verdicts["histograms.lat.mean"] == "FAIL", "mean regression fails")
    check(verdicts["histograms.lat.p99"] == "ok", "within-threshold passes")
    check(verdicts["counters.hits"] == "FAIL", "throughput drop fails")
    check(verdicts["gauges.speedup"] == "ok", "speedup gain passes")
    check(verdicts["counters.zero"] == "FAIL", "zero->nonzero fails")
    check(verdicts["counters.absent"] == "MISSING", "absent metric flagged")
    check(len(fails) == 4, f"expected 4 failures, got {len(fails)}")

    # identical snapshots never regress
    _, clean = evaluate(flat_base, dict(flat_base),
                        [(n, 0.0, False) for n in flat_base])
    check(not clean, "identical snapshots pass at 0% threshold")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}")
        return 1
    print("bench_compare self-test: all checks passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", nargs="?",
                        help="baseline snapshot: raw JSON or bench log")
    parser.add_argument("candidate", nargs="?",
                        help="candidate snapshot: raw JSON or bench log")
    parser.add_argument("--id", help="bench id when a log holds several "
                        "metrics-json lines (e.g. E9)")
    parser.add_argument("--check", action="append", default=[],
                        metavar="NAME[:MAX_PCT]",
                        help="metric to guard; '+' prefix = higher is better; "
                        "repeatable")
    parser.add_argument("--default-max-pct", type=float, default=10.0,
                        help="threshold for checks without an explicit one "
                        "(default: %(default)s%%)")
    parser.add_argument("--self-test", action="store_true",
                        help="run built-in unit checks and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate files are required "
                     "(or use --self-test)")
    if not args.check:
        parser.error("at least one --check NAME[:MAX_PCT] is required")

    base_flat = flatten(load_snapshot(args.baseline, args.id))
    cand_flat = flatten(load_snapshot(args.candidate, args.id))
    checks = [parse_check(c, args.default_max_pct) for c in args.check]

    rows, fails = evaluate(base_flat, cand_flat, checks)
    checked = {c[0] for c in checks}
    shared = set(base_flat) & set(cand_flat)
    print_report(rows, len(shared - checked))

    if fails:
        print(f"\nREGRESSION: {len(fails)} check(s) failed")
        for f in fails:
            print(f"  {f}")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
