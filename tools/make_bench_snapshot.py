#!/usr/bin/env python3
"""Run a bench binary and save its metrics snapshot as tracked JSON.

The bench binaries, run with LE_METRICS=1, emit one machine-readable line

    metrics-json <bench-id> {"counters":{...},"gauges":{...},"histograms":{...}}

(bench/report.hpp::emit_metrics).  This tool runs the binary with metrics
enabled, greps that line out, and writes the snapshot as pretty-printed
JSON — the format bench_compare.py accepts as a raw baseline.  The tracked
trajectory files (bench/BENCH_health.json, bench/BENCH_retrain.json) are
produced with it and re-validated by the `bench-compare` CMake target:

    tools/make_bench_snapshot.py build/bench/bench_health --id E14 \
        -o bench/BENCH_health.json

The bench's own verdict gates the snapshot: a FAILing bench (nonzero exit)
writes nothing, so a tracked baseline is always from a passing run.
"""

import argparse
import json
import os
import re
import subprocess
import sys

METRICS_JSON_RE = re.compile(r"^metrics-json\s+(\S+)\s+(\{.*\})\s*$")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("binary", help="bench executable to run")
    parser.add_argument("--id", dest="bench_id", default=None,
                        help="bench id to extract when the run emits several")
    parser.add_argument("-o", "--output", required=True,
                        help="path to write the snapshot JSON to")
    args = parser.parse_args()

    env = dict(os.environ, LE_METRICS="1")
    proc = subprocess.run([args.binary], env=env, capture_output=True,
                          text=True)
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        raise SystemExit(
            f"{args.binary}: exited {proc.returncode}; refusing to snapshot "
            "a failing bench")

    found = {}
    for line in proc.stdout.splitlines():
        m = METRICS_JSON_RE.match(line.strip())
        if m:
            found[m.group(1)] = json.loads(m.group(2))
    if not found:
        raise SystemExit(
            f"{args.binary}: no 'metrics-json <id> {{...}}' line in its "
            "output (is the bench wired through bench::emit_metrics?)")
    if args.bench_id is not None:
        if args.bench_id not in found:
            raise SystemExit(
                f"{args.binary}: no metrics-json line for id "
                f"'{args.bench_id}' (have: {', '.join(sorted(found))})")
        snapshot = found[args.bench_id]
    elif len(found) > 1:
        raise SystemExit(
            f"{args.binary}: multiple metrics-json ids "
            f"({', '.join(sorted(found))}); disambiguate with --id")
    else:
        snapshot = next(iter(found.values()))

    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(snapshot, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"snapshot written to {args.output}")


if __name__ == "__main__":
    main()
